//! Facade/engine parity: a `vcaml::api::Monitor` must reproduce, window
//! for window, what a directly-driven `QoeEstimator` produces for the
//! same packets — for all four methods, on realistic simulated traffic,
//! through both the pre-parsed and the raw-datagram ingestion paths.

// Test target: panicking is the idiomatic failure mode.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use vcaml_suite::datasets::{inlab_corpus, to_core_trace, CorpusConfig};
use vcaml_suite::netpkt::FlowKey;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::api::build_engine;
use vcaml_suite::vcaml::{
    EngineConfig, EstimationMethod, Method, MonitorBuilder, QoeEvent, Trace, WindowReport,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn corpus(vca: VcaKind, seed: u64, n: usize) -> Vec<Trace> {
    inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: n,
            min_secs: 15,
            max_secs: 25,
            seed,
        },
    )
}

fn flow_key() -> FlowKey {
    FlowKey::canonical(
        "203.0.113.1".parse().unwrap(),
        3478,
        "10.0.0.1".parse().unwrap(),
        50_000,
        17,
    )
    .0
}

/// Every finalized window a finished monitor produced, by index.
fn monitor_windows(events: Vec<QoeEvent>) -> BTreeMap<u64, WindowReport> {
    let mut out = BTreeMap::new();
    for event in events {
        for report in event.final_reports() {
            assert!(
                out.insert(report.window, report.clone()).is_none(),
                "duplicate final window"
            );
        }
    }
    out
}

fn assert_reports_equal(got: &BTreeMap<u64, WindowReport>, want: &[WindowReport], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: window count");
    for w in want {
        let g = got.get(&w.window).unwrap_or_else(|| {
            panic!("{ctx}: missing window {}", w.window);
        });
        assert_eq!(g.method, w.method, "{ctx}: window {}", w.window);
        assert_eq!(g.estimate, w.estimate, "{ctx}: window {}", w.window);
        assert_eq!(g.features, w.features, "{ctx}: window {}", w.window);
        assert_eq!(
            g.video_packets, w.video_packets,
            "{ctx}: window {}",
            w.window
        );
    }
}

/// The facade's event stream must equal a direct engine drive for every
/// method — same windows, same estimates, same feature vectors.
#[test]
fn monitor_matches_direct_engine_for_all_methods() {
    for vca in VcaKind::ALL {
        let config = EngineConfig::paper(vca);
        for trace in &corpus(vca, 23, 2) {
            for method in Method::ALL {
                let mut engine = build_engine(method, config, trace.payload_map, None);
                let mut want = Vec::new();
                for p in &trace.packets {
                    want.extend(engine.push(p));
                }
                want.extend(engine.finish());

                let mut monitor = MonitorBuilder::new(vca)
                    .method(EstimationMethod::Fixed(method))
                    .payload_map(trace.payload_map)
                    .build();
                let flow = flow_key();
                for p in &trace.packets {
                    monitor.ingest_packet(flow, *p);
                }
                let got = monitor_windows(monitor.finish());
                assert_reports_equal(&got, &want, &format!("{vca} {method:?}"));
            }
        }
    }
}

/// The raw-datagram path (RTP parse-attempt included) must agree with the
/// pre-parsed path: ingesting a session's captured wire datagrams yields
/// the same windows as replaying its decoded trace through an engine.
#[test]
fn raw_ingestion_matches_preparsed_trace() {
    let vca = VcaKind::Teams;
    let profile = VcaProfile::lab(vca);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: vcaml_suite::netem::synth_ndt_schedule(5, 20),
        duration_secs: 20,
        seed: 5,
        link: vcaml_suite::netem::LinkConfig::default(),
    })
    .run();
    let trace = to_core_trace(&session, profile.payload_map);
    let captured = session.to_captured();
    let config = EngineConfig::paper(vca);

    for method in Method::ALL {
        let mut engine = build_engine(method, config, trace.payload_map, None);
        let mut want = Vec::new();
        for p in &trace.packets {
            want.extend(engine.push(p));
        }
        want.extend(engine.finish());

        let mut monitor = MonitorBuilder::new(vca)
            .method(EstimationMethod::Fixed(method))
            .payload_map(trace.payload_map)
            .build();
        for cap in &captured {
            monitor.ingest_captured(cap);
        }
        assert_eq!(monitor.stats().parse_drops, 0, "{method:?}: clean feed");
        let got = monitor_windows(monitor.finish());
        assert_reports_equal(&got, &want, &format!("raw {method:?}"));
    }
}

/// Auto selection must not change the numbers, only the method: a flow
/// resolved to its RTP variant reports the same windows as a fixed RTP
/// monitor fed the same packets.
#[test]
fn auto_selection_preserves_window_exactness() {
    let vca = VcaKind::Meet;
    let trace = &corpus(vca, 31, 1)[0];
    let run = |method: EstimationMethod| {
        let mut monitor = MonitorBuilder::new(vca)
            .method(method)
            .payload_map(trace.payload_map)
            .build();
        let flow = flow_key();
        for p in &trace.packets {
            monitor.ingest_packet(flow, *p);
        }
        monitor_windows(monitor.finish())
    };
    let auto = run(EstimationMethod::AutoHeuristic);
    let resolved_method = auto.values().next().expect("windows emitted").method;
    let fixed = run(EstimationMethod::Fixed(resolved_method));
    assert_eq!(auto.len(), fixed.len());
    for (w, r) in &auto {
        assert_eq!(r.estimate, fixed[w].estimate, "window {w}");
    }
}
