//! I/O-layer invariants: `Tee` fan-out delivers byte-identical event
//! sequences to every sink, a multi-source `MonitorRunner` is
//! window-exact against sequential single-source ingest for all four
//! methods, the pcap source round-trips written captures (property
//! test), and the per-flow shed accounting survives the whole pipeline.

use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::{Arc, Mutex};
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::netpkt::{FlowKey, LinkType, PcapWriter, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::source::{PacketSource, PcapFileSource, SourcePacket};
use vcaml_suite::vcaml::{
    AlertSink, ChannelSink, EstimationMethod, JsonLinesSink, Method, MonitorBuilder, MonitorRunner,
    OverflowPolicy, QoeEvent, ReplaySource, SummarySink, SyntheticSource, Tee, Trace, TracePacket,
    WindowReport,
};

/// A `Write` handle tests can keep after handing a sink ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("buf poisoned").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn flow_key(n: u16) -> FlowKey {
    let client = IpAddr::V4(Ipv4Addr::new(10, 0, (n / 250) as u8, (n % 250) as u8 + 1));
    let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
    FlowKey::canonical(server, 3478, client, 40_000 + n, 17).0
}

/// One flow per trace, interleaved in global arrival order.
fn mixed_feed(traces: &[Trace], calls: impl Iterator<Item = usize>) -> Vec<(FlowKey, TracePacket)> {
    let mut feed: Vec<(FlowKey, TracePacket)> = Vec::new();
    for call in calls {
        let key = flow_key(call as u16);
        feed.extend(traces[call].packets.iter().map(|p| (key, *p)));
    }
    feed.sort_by_key(|(_, p)| p.ts);
    feed
}

/// Every finalized window per flow from a (shared) event stream.
fn final_windows(
    events: impl Iterator<Item = Arc<QoeEvent>>,
) -> HashMap<FlowKey, BTreeMap<u64, WindowReport>> {
    let mut out: HashMap<FlowKey, BTreeMap<u64, WindowReport>> = HashMap::new();
    for event in events {
        let Some(flow) = event.flow() else { continue };
        for report in event.final_reports() {
            let dup = out
                .entry(flow)
                .or_default()
                .insert(report.window, report.clone());
            assert!(dup.is_none(), "duplicate final window {}", report.window);
        }
    }
    out
}

/// The tentpole parity criterion: N sources on N ingest threads feeding
/// one monitor must produce exactly the windows sequential single-source
/// ingest produces, for every method — multi-ingest changes wall-clock,
/// never numbers.
#[test]
fn multi_source_runner_matches_sequential_ingest_for_all_methods() {
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 6,
            min_secs: 8,
            max_secs: 14,
            seed: 57,
        },
    );
    let payload_map = traces[0].payload_map;
    let run = |method: Method, feeds: Vec<Vec<(FlowKey, TracePacket)>>, threads: usize| {
        let (subscriber, rx) = ChannelSink::bounded(1 << 20);
        let mut runner = MonitorRunner::new(
            MonitorBuilder::new(vca)
                .method(EstimationMethod::Fixed(method))
                .payload_map(payload_map)
                .threads(threads),
        )
        .sink(subscriber);
        for feed in feeds {
            runner = runner.source(ReplaySource::from_packets(feed));
        }
        runner.run();
        final_windows(rx.try_iter())
    };
    // Split the fleet across two "taps" by call parity — flows are
    // disjoint across sources, as the runner contract requires.
    let tap_a = mixed_feed(&traces, (0..traces.len()).filter(|c| c % 2 == 0));
    let tap_b = mixed_feed(&traces, (0..traces.len()).filter(|c| c % 2 == 1));
    let everything = mixed_feed(&traces, 0..traces.len());
    for method in Method::ALL {
        let sequential = run(method, vec![everything.clone()], 1);
        let parallel = run(method, vec![tap_a.clone(), tap_b.clone()], 2);
        assert_eq!(
            sequential.len(),
            parallel.len(),
            "{method:?}: flow count differs"
        );
        for (flow, want) in &sequential {
            let got = parallel
                .get(flow)
                .unwrap_or_else(|| panic!("{method:?}: flow {flow} missing from multi-source run"));
            assert_eq!(got.len(), want.len(), "{method:?} {flow}: window count");
            for (w, want_r) in want {
                let got_r = &got[w];
                assert_eq!(got_r.method, want_r.method, "{method:?} window {w}");
                assert_eq!(got_r.estimate, want_r.estimate, "{method:?} window {w}");
                assert_eq!(got_r.features, want_r.features, "{method:?} window {w}");
                assert_eq!(
                    got_r.video_packets, want_r.video_packets,
                    "{method:?} window {w}"
                );
            }
        }
    }
}

/// `Tee` fan-out: every child sink observes the byte-identical event
/// sequence, whether the children hang off one tee or off the runner's
/// own sink list.
#[test]
fn tee_delivers_byte_identical_sequences_to_every_sink() {
    let bufs: Vec<SharedBuf> = (0..3).map(|_| SharedBuf::default()).collect();
    let direct = SharedBuf::default();
    let tee = Tee::new()
        .with(JsonLinesSink::new(bufs[0].clone()))
        .with(JsonLinesSink::new(bufs[1].clone()))
        .with(JsonLinesSink::new(bufs[2].clone()));
    let report = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2),
    )
    .source(SyntheticSource::new(VcaKind::Teams, 3, 2, 5))
    .sink(tee)
    .sink(JsonLinesSink::new(direct.clone()))
    .run();
    assert!(report.events > 0, "the run produced events");
    let want = direct.bytes();
    assert!(!want.is_empty());
    assert_eq!(
        want.iter().filter(|b| **b == b'\n').count() as u64,
        report.events,
        "one JSON line per delivered event"
    );
    for (i, buf) in bufs.iter().enumerate() {
        assert_eq!(buf.bytes(), want, "tee child {i} diverged");
    }
}

/// Per-flow shed accounting survives the whole pipeline: what the
/// `Dropped` markers attribute to each flow is what `MonitorStats`
/// reports, and the `SummarySink` rollup surfaces it.
#[test]
fn per_flow_shed_accounting_reaches_summary_and_stats() {
    let table = SharedBuf::default();
    let (subscriber, rx) = ChannelSink::bounded(1 << 20);
    let report = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2)
            .queue_capacity(4)
            .overflow(OverflowPolicy::DropOldest),
    )
    .source(SyntheticSource::new(VcaKind::Teams, 6, 3, 9))
    .sink(SummarySink::new(table.clone()))
    .sink(subscriber)
    // A deliberately slow consumer: the drain loop is the queue's only
    // consumer, so stalling it mid-run is what makes the 4-event
    // DropOldest queue shed (a fast drain would keep it empty).
    .sink(vcaml_suite::vcaml::CallbackSink::new(|_| {
        std::thread::sleep(std::time::Duration::from_millis(2))
    }))
    .run();
    let mut marker_total = 0u64;
    let mut marker_by_flow: BTreeMap<FlowKey, u64> = BTreeMap::new();
    for event in rx.try_iter() {
        if let QoeEvent::Dropped { count, per_flow } = &*event {
            marker_total += count;
            for (flow, n) in per_flow {
                *marker_by_flow.entry(*flow).or_insert(0) += n;
            }
        }
    }
    assert!(marker_total > 0, "a 4-event queue must shed mid-stream");
    assert_eq!(report.stats.events_dropped, marker_total);
    let stats_by_flow: BTreeMap<FlowKey, u64> =
        report.stats.dropped_by_flow.iter().copied().collect();
    assert_eq!(stats_by_flow, marker_by_flow, "stats match the markers");
    let rendered = String::from_utf8(table.bytes()).expect("utf8");
    assert!(
        rendered.contains(&format!("{marker_total} events shed")),
        "summary surfaces the shed total: {rendered}"
    );
}

/// Alerts compose as sinks: a threshold above every achievable frame
/// rate alerts on every finalized window that carries a signal.
#[test]
fn alert_sink_fires_below_threshold() {
    let alerts = SharedBuf::default();
    let report = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams).method(EstimationMethod::Fixed(Method::IpUdpHeuristic)),
    )
    .source(SyntheticSource::new(VcaKind::Teams, 3, 1, 21))
    .sink(AlertSink::new(alerts.clone(), 1_000.0))
    .run();
    assert!(report.stats.window_reports > 0);
    let text = String::from_utf8(alerts.bytes()).expect("utf8");
    assert_eq!(
        text.lines().count() as u64,
        report.stats.window_reports,
        "every finalized window alerts under an unreachable threshold"
    );
    assert!(text.lines().all(|l| l.contains("\"type\":\"alert\"")));
}

proptest! {
    // A pcap capture written by `PcapWriter` comes back record-exact
    // through `PcapFileSource`: same count, timestamps, lengths, bytes.
    #[test]
    fn pcap_source_roundtrips_written_captures(
        records in proptest::collection::vec(
            (0i64..4_000_000_000i64, proptest::collection::vec(any::<u8>(), 0..200)),
            1..40,
        )
    ) {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("header");
        for (us, data) in &records {
            w.write_packet(Timestamp::from_micros(*us), data).expect("record");
        }
        let bytes = w.finish().expect("flush");
        let mut source = PcapFileSource::new(std::io::Cursor::new(bytes)).expect("open");
        let mut got = Vec::new();
        while let Some(pkt) = source.next_packet().expect("read") {
            let SourcePacket::Record { link, record } = pkt else {
                panic!("pcap sources yield raw records");
            };
            prop_assert_eq!(link, LinkType::Ethernet);
            prop_assert_eq!(record.orig_len as usize, record.data.len());
            got.push((record.ts.as_micros(), record.data.to_vec()));
        }
        prop_assert_eq!(got, records);
    }
}
