//! Control-plane invariants for `MonitorHandle` / `RunningMonitor`:
//!
//! * a graceful `stop()` mid-ingest is **prefix-exact** — the windows
//!   delivered equal a run-to-completion over exactly the packets
//!   ingested before the stop took effect, for inline and threaded
//!   monitors;
//! * `evict_flow` seals just the requested flow and surfaces its tail
//!   windows as a `FlowEvicted { reason: Requested }` event;
//! * `force_flush` produces provisional snapshots on demand without
//!   disturbing the finalized stream;
//! * `stats_snapshot` totals obey the DropOldest conservation law
//!   (delivered + dropped == the unbounded run's event count) and the
//!   per-shard depth accounting settles to zero;
//! * `stop()` + drop is deadlock-free under both overflow policies.

use std::collections::HashMap;
use std::sync::Arc;
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::netpkt::{Error as NetError, FlowKey, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::source::{PacketSource, SourcePacket};
use vcaml_suite::vcaml::{
    CallbackSink, ChannelSink, EstimationMethod, EvictReason, Method, MonitorBuilder,
    MonitorHandle, MonitorRunner, OverflowPolicy, QoeEvent, SyntheticSource, Trace, TracePacket,
    WindowReport,
};

fn flow_key(n: u16) -> FlowKey {
    let client = std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, n as u8 + 1));
    let server = std::net::IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 1));
    FlowKey::canonical(server, 3478, client, 40_000 + n, 17).0
}

fn corpus_feed(seed: u64, n_calls: usize) -> Vec<(FlowKey, TracePacket)> {
    let traces: Vec<Trace> = inlab_corpus(
        VcaKind::Teams,
        &CorpusConfig {
            n_calls,
            min_secs: 6,
            max_secs: 10,
            seed,
        },
    );
    let mut feed = Vec::new();
    for (call, trace) in traces.iter().enumerate() {
        feed.extend(trace.packets.iter().map(|p| (flow_key(call as u16), *p)));
    }
    feed.sort_by_key(|(_, p)| p.ts);
    feed
}

/// A synthetic 30 fps video flow: two ~1.1 kB packets per frame.
fn video_feed(flow: FlowKey, secs: i64) -> Vec<(FlowKey, TracePacket)> {
    let mut out = Vec::new();
    for f in 0..secs * 30 {
        let t0 = f * 33_333;
        for i in 0..2i64 {
            out.push((
                flow,
                TracePacket {
                    ts: Timestamp::from_micros(t0 + i * 300),
                    size: 1_000 + ((f % 9) * 13) as u16,
                    rtp: None,
                    truth_media: None,
                },
            ));
        }
    }
    out
}

/// Finalized windows per flow from an owned event stream.
fn windows_of(events: impl IntoIterator<Item = QoeEvent>) -> HashMap<FlowKey, Vec<WindowReport>> {
    let mut out: HashMap<FlowKey, Vec<WindowReport>> = HashMap::new();
    for event in events {
        if let Some(flow) = event.flow() {
            out.entry(flow)
                .or_default()
                .extend_from_slice(event.final_reports());
        }
    }
    for reports in out.values_mut() {
        reports.sort_by_key(|r| r.window);
    }
    out
}

/// A replay source that requests a graceful stop through the handle as
/// it yields its `stop_at`-th packet — the runner checks the flag
/// before every pull, so exactly `stop_at` packets are ingested.
struct StopAfter {
    items: std::vec::IntoIter<(FlowKey, TracePacket)>,
    yielded: usize,
    stop_at: usize,
    handle: MonitorHandle,
}

impl PacketSource for StopAfter {
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError> {
        let Some((flow, packet)) = self.items.next() else {
            return Ok(None);
        };
        self.yielded += 1;
        if self.yielded == self.stop_at {
            self.handle.stop();
        }
        Ok(Some(SourcePacket::Parsed { flow, packet }))
    }
}

/// The stop() acceptance criterion: windows delivered by a stopped run
/// equal a run-to-completion over exactly the ingested prefix — no
/// sealed window is lost, none is invented, for inline and threaded
/// monitors.
#[test]
fn graceful_stop_mid_ingest_is_prefix_exact() {
    let feed = corpus_feed(91, 4);
    let stop_at = feed.len() / 2;

    // Reference: the prefix, run to completion on an inline monitor.
    let mut reference = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .build();
    for (flow, pkt) in &feed[..stop_at] {
        reference.ingest_packet(*flow, *pkt);
    }
    let want = windows_of(reference.finish());

    for threads in [1usize, 3] {
        let runner = MonitorRunner::new(
            MonitorBuilder::new(VcaKind::Teams)
                .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
                .threads(threads),
        );
        let handle = runner.handle();
        let (subscriber, rx) = ChannelSink::bounded(1 << 20);
        let report = runner
            .source(StopAfter {
                items: feed.clone().into_iter(),
                yielded: 0,
                stop_at,
                handle,
            })
            .sink(subscriber)
            .run();
        assert_eq!(
            report.sources[0].packets, stop_at as u64,
            "threads={threads}: the stop lands at the next packet boundary"
        );
        let got = windows_of(rx.try_iter().map(|e| (*e).clone()));
        assert_eq!(got.len(), want.len(), "threads={threads}: flow count");
        for (flow, want_reports) in &want {
            let got_reports = &got[flow];
            assert_eq!(
                got_reports.len(),
                want_reports.len(),
                "threads={threads} {flow}: window count"
            );
            for (g, w) in got_reports.iter().zip(want_reports) {
                assert_eq!(g.window, w.window, "threads={threads} {flow}");
                assert_eq!(
                    g.estimate, w.estimate,
                    "threads={threads} {flow} window {}",
                    g.window
                );
            }
        }
    }
}

/// `evict_flow` seals exactly the requested flow, now, with its tail
/// windows on the eviction event — and the end-of-stream seal neither
/// repeats it nor misses the others.
#[test]
fn evict_flow_surfaces_tail_windows_inline() {
    let a = flow_key(1);
    let b = flow_key(2);
    let mut monitor = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .build();
    let mut feed = video_feed(a, 3);
    feed.extend(video_feed(b, 3));
    feed.sort_by_key(|(_, p)| p.ts);
    for (flow, pkt) in feed {
        monitor.ingest_packet(flow, pkt);
    }
    let handle = monitor.handle();
    handle.evict_flow(a);
    let mid: Vec<QoeEvent> = monitor.drain_events().collect();
    let evicted: Vec<_> = mid
        .iter()
        .filter_map(|e| match e {
            QoeEvent::FlowEvicted {
                flow,
                reason,
                final_reports,
            } => Some((*flow, *reason, final_reports.len())),
            _ => None,
        })
        .collect();
    assert_eq!(evicted.len(), 1, "only the requested flow seals");
    assert_eq!(evicted[0].0, a);
    assert_eq!(evicted[0].1, EvictReason::Requested);
    assert!(evicted[0].2 > 0, "tail windows ride on the eviction event");

    // The other flow still seals at end of stream, exactly once.
    let tail = monitor.finish();
    let sealed: Vec<_> = tail
        .iter()
        .filter_map(|e| match e {
            QoeEvent::FlowEvicted { flow, reason, .. } => Some((*flow, *reason)),
            _ => None,
        })
        .collect();
    assert_eq!(sealed, vec![(b, EvictReason::EndOfStream)]);
}

/// The threaded path: an eviction request is applied by the owning
/// shard worker within its poll tick, without any new packet arriving.
#[test]
fn evict_flow_applies_on_idle_threaded_workers() {
    let a = flow_key(1);
    let mut monitor = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .threads(2)
        .build();
    for (flow, pkt) in video_feed(a, 3) {
        monitor.ingest_packet(flow, pkt);
    }
    // Push what's batched to the workers, then request the eviction.
    let _: Vec<QoeEvent> = monitor.drain_events().collect();
    let handle = monitor.handle();
    handle.evict_flow(a);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut sealed = Vec::new();
    while sealed.is_empty() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
        sealed.extend(monitor.drain_events().filter_map(|e| match e {
            QoeEvent::FlowEvicted {
                flow,
                reason,
                final_reports,
            } => Some((flow, reason, final_reports.len())),
            _ => None,
        }));
    }
    assert_eq!(sealed.len(), 1, "idle worker applies the request");
    assert_eq!(sealed[0].0, a);
    assert_eq!(sealed[0].1, EvictReason::Requested);
    assert!(sealed[0].2 > 0);
    monitor.finish();
}

/// `force_flush` produces provisional snapshots on demand; the
/// finalized stream (what `final_reports` sums) is untouched.
#[test]
fn force_flush_emits_provisional_snapshots() {
    let flow = flow_key(1);
    let mut monitor = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .build();
    // Half a second in: nothing finalized yet.
    for (flow, pkt) in video_feed(flow, 3).into_iter().take(30) {
        monitor.ingest_packet(flow, pkt);
    }
    let baseline: Vec<QoeEvent> = monitor.drain_events().collect();
    assert!(
        baseline.iter().all(|e| e.final_reports().is_empty()),
        "nothing finalized this early"
    );
    let handle = monitor.handle();
    handle.force_flush();
    let flushed: Vec<QoeEvent> = monitor.drain_events().collect();
    let provisional = flushed
        .iter()
        .filter(|e| {
            matches!(
                e,
                QoeEvent::WindowReport {
                    provisional: true,
                    ..
                }
            )
        })
        .count();
    assert!(provisional > 0, "forced flush yields provisional windows");
    assert!(
        flushed.iter().all(|e| e.final_reports().is_empty()),
        "provisional snapshots never enter the finalized stream"
    );
    assert_eq!(monitor.stats().provisional_reports, provisional as u64);
}

/// The DropOldest conservation law, read through the handle: delivered
/// non-marker events + the snapshot's `events_dropped` equal the
/// unbounded run's event count — and the per-shard depth accounting
/// settles to zero once the run is finished.
#[test]
fn stats_snapshot_obeys_drop_oldest_conservation() {
    let feed = corpus_feed(17, 4);

    // Reference: unbounded event count over the same feed.
    let mut unbounded = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .build();
    for (flow, pkt) in &feed {
        unbounded.ingest_packet(*flow, *pkt);
    }
    let total = unbounded.finish().len();

    let mut monitor = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .threads(2)
        .queue_capacity(16)
        .overflow(OverflowPolicy::DropOldest)
        .build();
    let handle = monitor.handle();
    for (flow, pkt) in &feed {
        monitor.ingest_packet(*flow, *pkt);
    }
    let mut delivered = 0usize;
    let mut marker_count = 0u64;
    for event in monitor.finish() {
        match event {
            QoeEvent::Dropped { count, .. } => marker_count += count,
            _ => delivered += 1,
        }
    }
    assert!(marker_count > 0, "a 16-event queue must shed");

    // The handle outlives the monitor; its snapshot is now settled.
    let snapshot = handle.stats_snapshot();
    assert_eq!(snapshot.stats.events_dropped, marker_count);
    assert_eq!(
        delivered as u64 + snapshot.stats.events_dropped,
        total as u64,
        "delivered + dropped == every event the run produced"
    );
    assert_eq!(snapshot.flows_live, 0, "everything sealed");
    assert!(
        snapshot.shard_depths.iter().all(|d| *d == 0),
        "ingest-depth accounting settles to zero: {:?}",
        snapshot.shard_depths
    );
    assert_eq!(snapshot.pending_events, 0);
}

/// `stop()` (and dropping the monitor without finishing) is
/// deadlock-free under both overflow policies, with a slow subscriber
/// and a tiny queue — the worst case for wedging.
#[test]
fn stop_and_drop_are_deadlock_free_under_both_policies() {
    for policy in [OverflowPolicy::Block, OverflowPolicy::DropOldest] {
        let running = MonitorRunner::new(
            MonitorBuilder::new(VcaKind::Teams)
                .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
                .threads(2)
                .queue_capacity(8)
                .overflow(policy),
        )
        .source(SyntheticSource::new(VcaKind::Teams, 6, 3, 5))
        .sink(CallbackSink::new(|_| {
            std::thread::sleep(std::time::Duration::from_micros(200))
        }))
        .spawn();
        // Let some packets flow, then stop: join must return.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let report = running.stop();
        assert!(report.stats.packets > 0, "{policy:?}: ingest started");

        // Dropping an unfinished threaded monitor must reap its workers
        // without wedging either.
        let mut monitor = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2)
            .queue_capacity(8)
            .overflow(policy)
            .build();
        for (flow, pkt) in video_feed(flow_key(3), 2) {
            monitor.ingest_packet(flow, pkt);
        }
        let handle = monitor.handle();
        handle.stop();
        drop(monitor);
        assert!(handle.stop_requested());
    }
}

/// Alert-threshold retuning through the handle is live: the same event
/// stream classifies differently before and after `set_alert_fps`.
#[test]
fn alert_threshold_retunes_live() {
    let runner = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams).method(EstimationMethod::Fixed(Method::IpUdpHeuristic)),
    );
    let handle = runner.handle();
    assert_eq!(handle.alert_fps(), None);
    handle.set_alert_fps(1_000.0);
    assert_eq!(handle.alert_fps(), Some(1_000.0));

    let degraded = Arc::new(std::sync::Mutex::new(0u64));
    let counter = Arc::clone(&degraded);
    let (full, rx) = ChannelSink::bounded(1 << 20);
    let report = runner
        .source(SyntheticSource::new(VcaKind::Teams, 3, 1, 21))
        .sink(full)
        .subscribe(
            vcaml_suite::vcaml::EventFilter::all()
                .min_severity(vcaml_suite::vcaml::Severity::Warning),
            CallbackSink::new(move |_| *counter.lock().unwrap() += 1),
        )
        .run();
    // Under an unreachable bar, every event carrying a finalized window
    // (the heuristic always reports a frame rate) is degraded.
    let expect = rx
        .try_iter()
        .filter(|e| !e.final_reports().is_empty())
        .count() as u64;
    assert!(report.stats.window_reports > 0);
    assert!(expect > 0);
    assert_eq!(*degraded.lock().unwrap(), expect);
}

/// Force-flush also reaches threaded workers and `stats_snapshot`
/// reflects per-shard depths live (a smoke for BTreeMap ordering of the
/// snapshot surface more than timing, which the idle tick guarantees).
#[test]
fn force_flush_reaches_threaded_workers() {
    let mut monitor = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .threads(2)
        .build();
    // Two flows, mid-window: nothing finalized yet.
    let mut feed = video_feed(flow_key(1), 1);
    feed.extend(video_feed(flow_key(2), 1));
    feed.sort_by_key(|(_, p)| p.ts);
    for (flow, pkt) in feed.into_iter().take(40) {
        monitor.ingest_packet(flow, pkt);
    }
    let _: Vec<QoeEvent> = monitor.drain_events().collect();
    let handle = monitor.handle();
    handle.force_flush();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut provisional = 0usize;
    while provisional == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
        provisional += monitor
            .drain_events()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::WindowReport {
                        provisional: true,
                        ..
                    }
                )
            })
            .count();
    }
    assert!(provisional > 0, "idle workers apply the forced flush");
    let snapshot = handle.stats_snapshot();
    assert_eq!(snapshot.shard_depths.len(), 2, "one depth cell per worker");
    monitor.finish();
}

/// `bytes_per_flow` in a stats snapshot reflects each method's per-flow
/// memory footprint: heuristics keep frame rings in the low kilobytes,
/// the IP/UDP ML accumulator carries an 8 KiB inter-arrival histogram,
/// and everything stays bounded (O(1) per flow) — the §7 "system
/// considerations" answer in one observable number.
#[test]
fn bytes_per_flow_is_pinned_per_method() {
    let trace: Trace = inlab_corpus(
        VcaKind::Teams,
        &CorpusConfig {
            n_calls: 1,
            min_secs: 8,
            max_secs: 8,
            seed: 21,
        },
    )
    .remove(0);
    let flow = flow_key(0);

    let footprint = |method: Method| -> u64 {
        let mut monitor = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(method))
            .payload_map(trace.payload_map)
            .build();
        let handle = monitor.handle();
        for p in &trace.packets {
            monitor.ingest_packet(flow, *p);
        }
        // The footprint is published by the 1 Hz eviction sweep, so an
        // 8 s single-flow trace has refreshed it several times by now.
        handle.stats_snapshot().bytes_per_flow
    };

    let ipudp_h = footprint(Method::IpUdpHeuristic);
    let rtp_h = footprint(Method::RtpHeuristic);
    let ipudp_ml = footprint(Method::IpUdpMl);
    let rtp_ml = footprint(Method::RtpMl);

    for (label, bytes) in [
        ("IpUdpHeuristic", ipudp_h),
        ("RtpHeuristic", rtp_h),
        ("IpUdpMl", ipudp_ml),
        ("RtpMl", rtp_ml),
    ] {
        assert!(
            (1_024..65_536).contains(&bytes),
            "{label}: {bytes} bytes/flow outside the sane O(1) band"
        );
    }
    assert!(
        ipudp_ml >= 8_192,
        "IpUdpMl carries a 1024-bucket u64 IAT histogram: {ipudp_ml}"
    );
    assert!(
        ipudp_ml > ipudp_h && rtp_ml > rtp_h,
        "ML accumulators outweigh heuristic frame rings: \
         ml {ipudp_ml}/{rtp_ml} vs heuristic {ipudp_h}/{rtp_h}"
    );

    // No live flows (nothing ingested) → no footprint, not a division
    // artifact.
    let idle = MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .build();
    assert_eq!(idle.handle().stats_snapshot().bytes_per_flow, 0);
}
