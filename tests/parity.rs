//! Batch/streaming parity: replaying a trace packet-by-packet through the
//! unified incremental engine must reproduce the batch pipeline's
//! per-window features and heuristic QoE estimates for **all four
//! methods**, on realistic simulated traffic — and the sharded `FlowTable`
//! must keep interleaved concurrent calls perfectly separated.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::features::{ipudp_features, windows_by_second, PktObs, StatsMode};
use vcaml_suite::netpkt::{FlowKey, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::engine::{
    replay, FlowTable, IpUdpHeuristicEngine, IpUdpMlEngine, RtpHeuristicEngine, RtpMlEngine,
};
use vcaml_suite::vcaml::{
    build_samples, estimate_windows, qoe::QoeWindower, rtp_heuristic, EngineConfig, IpUdpHeuristic,
    MediaClassifier, Method, PipelineOpts, QoeEstimator, Trace, TracePacket, WindowReport,
};

fn corpus(vca: VcaKind, seed: u64, n: usize) -> Vec<Trace> {
    inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: n,
            min_secs: 20,
            max_secs: 30,
            seed,
        },
    )
}

fn stream<E: QoeEstimator>(engine: &mut E, trace: &Trace) -> Vec<WindowReport> {
    let mut out = Vec::new();
    for p in &trace.packets {
        out.extend(engine.push(p));
    }
    out.extend(engine.finish());
    out
}

/// The IP/UDP Heuristic engine must equal the batch path (whole-trace
/// frame assembly + end-time windowing) window for window, exactly.
#[test]
fn ipudp_heuristic_streaming_equals_batch() {
    for vca in VcaKind::ALL {
        let config = EngineConfig::paper(vca);
        for trace in &corpus(vca, 11, 3) {
            let n_windows = trace.duration_secs as usize;
            let video: Vec<(Timestamp, u16)> = trace
                .packets
                .iter()
                .filter(|p| MediaClassifier::new(config.vmin).is_video(p))
                .map(|p| (p.ts, p.size))
                .collect();
            let (frames, _) = IpUdpHeuristic::new(config.heuristic).assemble(&video);
            let batch = estimate_windows(&frames, n_windows, 1);

            let reports = replay(&mut IpUdpHeuristicEngine::new(config), trace, 1);
            assert_eq!(reports.len(), batch.len());
            for (r, b) in reports.iter().zip(&batch) {
                assert_eq!(r.estimate.unwrap(), *b, "{vca}: window {}", r.window);
            }
        }
    }
}

/// The RTP Heuristic engine must equal the batch RTP frame assembly +
/// windowing, exactly.
#[test]
fn rtp_heuristic_streaming_equals_batch() {
    for vca in VcaKind::ALL {
        let config = EngineConfig::paper(vca);
        for trace in &corpus(vca, 12, 3) {
            let n_windows = trace.duration_secs as usize;
            let frames = rtp_heuristic::assemble(trace);
            let batch = estimate_windows(&frames, n_windows, 1);
            let reports = replay(
                &mut RtpHeuristicEngine::new(config, trace.payload_map),
                trace,
                1,
            );
            assert_eq!(reports.len(), batch.len());
            for (r, b) in reports.iter().zip(&batch) {
                assert_eq!(r.estimate.unwrap(), *b, "{vca}: window {}", r.window);
            }
        }
    }
}

/// The IP/UDP ML engine's per-window features must equal the batch slice
/// formula on every window.
#[test]
fn ipudp_ml_features_streaming_equals_batch() {
    let config = EngineConfig::paper(VcaKind::Teams);
    for trace in &corpus(VcaKind::Teams, 13, 3) {
        let video: Vec<PktObs> = trace
            .packets
            .iter()
            .filter(|p| MediaClassifier::new(config.vmin).is_video(p))
            .map(|p| PktObs {
                ts: p.ts,
                size: p.size,
            })
            .collect();
        let windows = windows_by_second(&video, trace.duration_secs, 1);
        let reports = replay(&mut IpUdpMlEngine::new(config), trace, 1);
        for r in &reports {
            let empty = Vec::new();
            let slice = windows.get(r.window as usize).unwrap_or(&empty);
            let batch = ipudp_features(slice, 1.0, config.theta_iat_us);
            assert_eq!(
                r.features.as_deref().unwrap(),
                &batch[..],
                "window {}",
                r.window
            );
        }
    }
}

/// The RTP ML engine's per-window features must equal an independent
/// batch reconstruction: flow features over `windows_by_second` slices of
/// PT-video packets plus `RtpWindow::features` with the session lag
/// anchor — not a comparison of the engine against itself.
#[test]
fn rtp_ml_features_streaming_equals_batch() {
    use vcaml_suite::features::rtp_feats::LagReference;
    use vcaml_suite::features::{flow_features, RtpWindow};

    let vca = VcaKind::Teams;
    let config = EngineConfig::paper(vca);
    for trace in &corpus(vca, 18, 2) {
        let video: Vec<_> = trace
            .packets
            .iter()
            .filter(|p| {
                p.rtp.is_some_and(|h| {
                    trace.payload_map.classify(h.payload_type)
                        == Some(vcaml_suite::rtp::MediaKind::Video)
                })
            })
            .collect();
        let rtx: Vec<_> = trace
            .packets
            .iter()
            .filter(|p| {
                p.rtp.is_some_and(|h| {
                    trace.payload_map.classify(h.payload_type)
                        == Some(vcaml_suite::rtp::MediaKind::VideoRtx)
                })
            })
            .collect();
        let lag_ref = video.first().map(|p| LagReference {
            t0: p.ts,
            ts0: p.rtp.unwrap().timestamp,
        });
        let flow_pkts: Vec<PktObs> = video
            .iter()
            .map(|p| PktObs {
                ts: p.ts,
                size: p.size,
            })
            .collect();
        let flow_windows = windows_by_second(&flow_pkts, trace.duration_secs, 1);

        let reports = replay(&mut RtpMlEngine::new(config, trace.payload_map), trace, 1);
        for r in &reports {
            let wi = r.window as usize;
            let lo = wi as i64 * 1_000_000;
            let hi = lo + 1_000_000;
            let in_win = |t: Timestamp| t.as_micros() >= lo && t.as_micros() < hi;
            let rtp_win = RtpWindow {
                video: video
                    .iter()
                    .filter(|p| in_win(p.ts))
                    .map(|p| (p.ts, p.rtp.unwrap()))
                    .collect(),
                rtx: rtx
                    .iter()
                    .filter(|p| in_win(p.ts))
                    .map(|p| (p.ts, p.rtp.unwrap()))
                    .collect(),
            };
            let empty = Vec::new();
            let mut batch = flow_features(flow_windows.get(wi).unwrap_or(&empty), 1.0);
            batch.extend(rtp_win.features(lag_ref));
            assert_eq!(r.features.as_deref().unwrap(), &batch[..], "window {wi}");
        }
    }
}

/// All four methods at once: `build_samples` (which replays the engines)
/// must produce windows that a second, independent streaming pass
/// reproduces feature-for-feature and estimate-for-estimate.
#[test]
fn build_samples_windows_reproducible_by_streaming() {
    let vca = VcaKind::Meet;
    let opts = PipelineOpts::paper(vca);
    let traces = corpus(vca, 14, 2);
    let set = build_samples(&traces, &opts);
    assert!(set.samples.len() > 30);

    let config = opts.engine_config();
    for (trace_id, trace) in traces.iter().enumerate() {
        let heur = stream(&mut IpUdpHeuristicEngine::new(config), trace);
        let ip_ml = stream(&mut IpUdpMlEngine::new(config), trace);
        let rtp_heur = stream(
            &mut RtpHeuristicEngine::new(config, trace.payload_map),
            trace,
        );
        let rtp_ml = stream(&mut RtpMlEngine::new(config, trace.payload_map), trace);
        for s in set.samples.iter().filter(|s| s.trace_id == trace_id) {
            let wi = s.truth.second as usize;
            assert_eq!(
                s.heur,
                heur[wi].estimate.unwrap(),
                "trace {trace_id} window {wi}"
            );
            assert_eq!(
                s.rtp_heur,
                rtp_heur[wi].estimate.unwrap(),
                "trace {trace_id} window {wi}"
            );
            assert_eq!(
                &s.ipudp_features[..],
                ip_ml[wi].features.as_deref().unwrap(),
                "trace {trace_id} window {wi}"
            );
            assert_eq!(
                &s.rtp_features[..],
                rtp_ml[wi].features.as_deref().unwrap(),
                "trace {trace_id} window {wi}"
            );
        }
    }
    let _ = Method::ALL; // the four methods above are exactly Method::ALL
}

/// Sketch mode (strict O(1) state) must stay within bounded error of the
/// exact features: identical everywhere except the two P²-estimated
/// medians.
#[test]
fn sketch_mode_bounded_deviation_from_exact() {
    let vca = VcaKind::Webex;
    let trace = &corpus(vca, 15, 1)[0];
    let exact_cfg = EngineConfig::paper(vca);
    let sketch_cfg = EngineConfig {
        stats: StatsMode::Sketch,
        ..exact_cfg
    };
    let exact = replay(&mut IpUdpMlEngine::new(exact_cfg), trace, 1);
    let sketch = replay(&mut IpUdpMlEngine::new(sketch_cfg), trace, 1);
    for (e, s) in exact.iter().zip(&sketch) {
        let (ef, sf) = (
            e.features.as_deref().unwrap(),
            s.features.as_deref().unwrap(),
        );
        for i in 0..ef.len() {
            match i {
                // Medians come from the P² sketch. Per-window IAT
                // distributions are strongly bimodal (sub-ms intra-burst
                // gaps vs ~30 ms inter-frame gaps), where P²'s guarantee
                // is containment in the observed range, not a relative
                // error bound.
                4 | 9 => {
                    let (lo, hi) = (ef[i + 1], ef[i + 2]); // matching min/max
                    assert!(
                        sf[i] >= lo - 1e-9 && sf[i] <= hi + 1e-9,
                        "window {} feature {i}: sketch median {} outside [{lo}, {hi}]",
                        e.window,
                        sf[i]
                    );
                }
                // Stdevs use Welford instead of the two-pass formula.
                3 | 8 => {
                    let tol = 1e-6 * ef[i].abs().max(1.0);
                    assert!(
                        (ef[i] - sf[i]).abs() <= tol,
                        "window {} feature {i}: exact {} vs sketch {}",
                        e.window,
                        ef[i],
                        sf[i]
                    );
                }
                _ => {
                    let tol = 1e-9 * ef[i].abs().max(1.0);
                    assert!(
                        (ef[i] - sf[i]).abs() <= tol,
                        "window {} feature {i}: exact {} vs sketch {}",
                        e.window,
                        ef[i],
                        sf[i]
                    );
                }
            }
        }
    }
}

/// A FlowTable fed three interleaved calls must reproduce, per flow, the
/// exact windows of a dedicated single-flow engine.
#[test]
fn flow_table_separates_interleaved_calls() {
    let vca = VcaKind::Teams;
    let config = EngineConfig::paper(vca);
    let traces = corpus(vca, 16, 3);

    let key_of = |i: usize| {
        let client = IpAddr::V4(Ipv4Addr::new(10, 7, 0, i as u8 + 1));
        let relay = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 4));
        FlowKey::canonical(relay, 3478, client, 52_000 + i as u16, 17).0
    };

    // One global arrival-ordered feed, as a tap would deliver it.
    let mut feed = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        feed.extend(t.packets.iter().map(|p| (key_of(i), *p)));
    }
    feed.sort_by_key(|(_, p)| p.ts);

    let mut table = FlowTable::new(4, Timestamp::from_secs(120), move |_: &FlowKey| {
        IpUdpHeuristicEngine::new(config)
    });
    let mut got: HashMap<FlowKey, Vec<WindowReport>> = HashMap::new();
    for (key, p) in &feed {
        got.entry(*key).or_default().extend(table.push(*key, p));
    }
    assert_eq!(table.len(), 3);
    assert!(table.shard_loads().iter().sum::<usize>() == 3);
    for (key, rest) in table.finish_all() {
        got.entry(key).or_default().extend(rest);
    }

    for (i, trace) in traces.iter().enumerate() {
        let solo = stream(&mut IpUdpHeuristicEngine::new(config), trace);
        let flow = &got[&key_of(i)];
        assert_eq!(flow.len(), solo.len(), "flow {i}");
        for (f, s) in flow.iter().zip(&solo) {
            assert_eq!(f.window, s.window);
            assert_eq!(
                f.estimate.unwrap(),
                s.estimate.unwrap(),
                "flow {i} window {}",
                f.window
            );
            assert_eq!(f.video_packets, s.video_packets);
        }
    }
}

/// The QoE windower and `estimate_windows` agree on frame bucketing.
#[test]
fn qoe_windower_agrees_with_estimate_windows() {
    let vca = VcaKind::Webex;
    let trace = &corpus(vca, 17, 1)[0];
    let frames = rtp_heuristic::assemble(trace);
    let n = trace.duration_secs as usize;
    let batch = estimate_windows(&frames, n, 1);
    let mut windower = QoeWindower::new(1);
    for (id, f) in frames.iter().enumerate() {
        if windower
            .window_of(f.end_ts)
            .is_some_and(|w| (w as usize) < n)
        {
            windower.offer(id as u64, f);
        }
    }
    let streamed = windower.drain_until(n as u64);
    assert_eq!(streamed.len(), batch.len());
    for ((_, s), b) in streamed.iter().zip(&batch) {
        assert_eq!(s, b);
    }
}

/// Forced slot recycling in the open-addressed table: flows evicted idle
/// and re-opened under the *same keys* land in recycled slab slots
/// (swap-remove + backward-shift deletion), and both lives stay
/// window-exact against dedicated single-flow engines.
#[test]
fn recycled_slots_stay_window_exact() {
    let vca = VcaKind::Teams;
    let config = EngineConfig::paper(vca);
    let trace = &corpus(vca, 18, 1)[0];
    const FLOWS: usize = 8;
    let key_of = |i: usize| {
        let client = IpAddr::V4(Ipv4Addr::new(10, 9, 0, i as u8 + 1));
        let relay = IpAddr::V4(Ipv4Addr::new(198, 51, 100, 7));
        FlowKey::canonical(relay, 3478, client, 53_000 + i as u16, 17).0
    };

    // The second life starts well past the idle timeout so one sweep
    // between the lives reclaims every slot.
    let gap_us = (trace.duration_secs as i64 + 30) * 1_000_000;
    let shifted: Vec<TracePacket> = trace
        .packets
        .iter()
        .map(|p| {
            let mut q = *p;
            q.ts = Timestamp::from_micros(p.ts.as_micros() + gap_us);
            q
        })
        .collect();

    let mut table = FlowTable::new(2, Timestamp::from_secs(5), move |_: &FlowKey| {
        IpUdpHeuristicEngine::new(config)
    });

    let mut life1: HashMap<FlowKey, Vec<WindowReport>> = HashMap::new();
    for p in &trace.packets {
        for i in 0..FLOWS {
            life1
                .entry(key_of(i))
                .or_default()
                .extend(table.push(key_of(i), p));
        }
    }
    assert_eq!(table.len(), FLOWS);
    let evicted = table.evict_idle(Timestamp::from_micros(gap_us));
    assert_eq!(evicted.len(), FLOWS, "one sweep reclaims every slot");
    assert!(table.is_empty());
    for (key, tail) in evicted {
        life1
            .get_mut(&key)
            .expect("evicted key was fed")
            .extend(tail);
    }

    // Same keys again: fresh engines in recycled slots.
    let mut life2: HashMap<FlowKey, Vec<WindowReport>> = HashMap::new();
    for p in &shifted {
        for i in 0..FLOWS {
            life2
                .entry(key_of(i))
                .or_default()
                .extend(table.push(key_of(i), p));
        }
    }
    assert_eq!(table.len(), FLOWS);
    for (key, tail) in table.drain_finish_all() {
        life2
            .get_mut(&key)
            .expect("reopened key was fed")
            .extend(tail);
    }

    let want1 = stream(&mut IpUdpHeuristicEngine::new(config), trace);
    let mut solo2 = IpUdpHeuristicEngine::new(config);
    let mut want2 = Vec::new();
    for p in &shifted {
        want2.extend(solo2.push(p));
    }
    want2.extend(solo2.finish());

    for i in 0..FLOWS {
        let key = key_of(i);
        for (label, got, want) in [
            ("first life", &life1[&key], &want1),
            ("second life", &life2[&key], &want2),
        ] {
            assert_eq!(got.len(), want.len(), "flow {i} {label}: window count");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.window, w.window, "flow {i} {label}");
                assert_eq!(
                    g.estimate, w.estimate,
                    "flow {i} {label} window {}",
                    w.window
                );
                assert_eq!(g.video_packets, w.video_packets, "flow {i} {label}");
            }
        }
    }
}
