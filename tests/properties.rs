//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace.

use proptest::prelude::*;
use vcaml_suite::features::{microbursts, unique_sizes, windows_by_second, PktObs};
use vcaml_suite::mlcore::{percentile, ConfusionMatrix};
use vcaml_suite::netpkt::checksum::{checksum, verify, Checksum};
use vcaml_suite::netpkt::{
    Ipv4Packet, Ipv4Repr, LinkType, PcapReader, PcapWriter, Timestamp, UdpPacket, UdpRepr,
};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::rtp::{seq_distance, seq_greater, RtpHeader, SequenceTracker};
use vcaml_suite::vcaml::{EstimationMethod, Method, MonitorBuilder, QoeEvent};
use vcaml_suite::vcaml::{HeuristicParams, IpUdpHeuristic};
use vcaml_suite::vcasim::{packetize, FragmentPolicy};

proptest! {
    // ---------------- netpkt ----------------

    #[test]
    fn checksum_of_patched_buffer_verifies(data in proptest::collection::vec(any::<u8>(), 12..256)) {
        let mut buf = data;
        buf[10] = 0;
        buf[11] = 0;
        let ck = checksum(&buf);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
        prop_assert!(verify(&buf));
    }

    #[test]
    fn checksum_order_independent(a in proptest::collection::vec(any::<u8>(), 0..64),
                                  b in proptest::collection::vec(any::<u8>(), 0..64)) {
        // One's-complement addition commutes across even-length chunks.
        let mut c1 = Checksum::new();
        let mut even_a = a.clone();
        if even_a.len() % 2 == 1 { even_a.push(0); }
        let mut even_b = b.clone();
        if even_b.len() % 2 == 1 { even_b.push(0); }
        c1.add_bytes(&even_a);
        c1.add_bytes(&even_b);
        let mut c2 = Checksum::new();
        c2.add_bytes(&even_b);
        c2.add_bytes(&even_a);
        prop_assert_eq!(c1.finish(), c2.finish());
    }

    #[test]
    fn ipv4_roundtrip(src in any::<[u8; 4]>(), dst in any::<[u8; 4]>(),
                      ttl in 1u8..=255, ident in any::<u16>(),
                      payload_len in 0usize..1400) {
        let repr = Ipv4Repr { src, dst, protocol: 17, payload_len, ttl, ident };
        let mut buf = vec![0u8; 20 + payload_len];
        repr.emit(&mut buf);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum());
        prop_assert_eq!(Ipv4Repr::parse(&pkt), repr);
    }

    #[test]
    fn udp_roundtrip_detects_any_single_flip(payload in proptest::collection::vec(any::<u8>(), 1..512),
                                             flip in any::<usize>()) {
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];
        let mut buf = vec![0u8; 8 + payload.len()];
        buf[8..].copy_from_slice(&payload);
        UdpRepr { src_port: 1000, dst_port: 2000 }.emit_v4(&mut buf, payload.len(), src, dst);
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        prop_assert!(pkt.verify_checksum_v4(src, dst));
        // Flip one payload bit: checksum must catch it (one's complement
        // detects all single-bit errors).
        let pos = 8 + flip % payload.len();
        let mut bad = buf.clone();
        bad[pos] ^= 0x01;
        let pkt = UdpPacket::new_checked(&bad[..]).unwrap();
        prop_assert!(!pkt.verify_checksum_v4(src, dst));
    }

    #[test]
    fn pcap_roundtrip(packets in proptest::collection::vec(
        (0i64..2_000_000_000, proptest::collection::vec(any::<u8>(), 0..200)), 0..20)) {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for (us, data) in &packets {
            w.write_packet(Timestamp(*us), data).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(std::io::Cursor::new(bytes)).unwrap();
        let recs = r.read_all().unwrap();
        prop_assert_eq!(recs.len(), packets.len());
        for (rec, (us, data)) in recs.iter().zip(&packets) {
            prop_assert_eq!(rec.ts.0, *us);
            prop_assert_eq!(&rec.data, data);
        }
    }

    // ---------------- rtp ----------------

    #[test]
    fn rtp_header_roundtrip(pt in 0u8..=127, seq in any::<u16>(), ts in any::<u32>(),
                            ssrc in any::<u32>(), marker in any::<bool>(),
                            payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let h = RtpHeader::basic(pt, seq, ts, ssrc, marker);
        let mut buf = vec![0u8; 12 + payload.len()];
        h.emit(&mut buf);
        buf[12..].copy_from_slice(&payload);
        let parsed = RtpHeader::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(parsed.payload(&buf).unwrap(), &payload[..]);
    }

    #[test]
    fn seq_arithmetic_antisymmetric(a in any::<u16>(), b in any::<u16>()) {
        if a != b {
            prop_assert_ne!(seq_greater(a, b), seq_greater(b, a));
            prop_assert_eq!(seq_distance(a, b), -seq_distance(b, a));
        } else {
            prop_assert_eq!(seq_distance(a, b), 0);
        }
    }

    #[test]
    fn seq_tracker_in_order_run_has_no_events(start in any::<u16>(), len in 1usize..500) {
        let mut t = SequenceTracker::new();
        let mut prev_ext = None;
        for i in 0..len {
            let ext = t.observe(start.wrapping_add(i as u16));
            if let Some(p) = prev_ext {
                prop_assert_eq!(ext, p + 1);
            }
            prev_ext = Some(ext);
        }
        prop_assert_eq!(t.reordered, 0);
        prop_assert_eq!(t.gap_packets, 0);
        prop_assert_eq!(t.received, len as u64);
    }

    // ---------------- vcasim ----------------

    #[test]
    fn packetize_preserves_total(frame in 1usize..60_000, policy in any::<bool>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let policy = if policy { FragmentPolicy::Unequal } else { FragmentPolicy::Equal };
        let parts = packetize(frame, 1160, policy, &mut rng);
        prop_assert_eq!(parts.iter().sum::<usize>(), frame);
        prop_assert!(parts.iter().all(|&p| p > 0 && p <= 1160));
    }

    #[test]
    fn equal_packetize_spread_at_most_one(frame in 1usize..60_000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let parts = packetize(frame, 1160, FragmentPolicy::Equal, &mut rng);
        let min = parts.iter().min().unwrap();
        let max = parts.iter().max().unwrap();
        prop_assert!(max - min <= 1);
        // Packet count is minimal.
        prop_assert_eq!(parts.len(), frame.div_ceil(1160));
    }

    // ---------------- features ----------------

    #[test]
    fn windows_partition_all_in_range_packets(
        pkts in proptest::collection::vec((0i64..30_000_000, 40u16..1500), 0..300),
        w in 1u32..5) {
        let mut obs: Vec<PktObs> = pkts
            .iter()
            .map(|&(us, size)| PktObs { ts: Timestamp(us), size })
            .collect();
        obs.sort_by_key(|p| p.ts);
        let windows = windows_by_second(&obs, 30, w);
        let total: usize = windows.iter().map(Vec::len).sum();
        prop_assert_eq!(total, obs.len());
        // Every packet is in the window matching its timestamp.
        for (i, win) in windows.iter().enumerate() {
            for p in win {
                let sec = p.ts.as_micros() / 1_000_000;
                prop_assert_eq!((sec / i64::from(w)) as usize, i);
            }
        }
    }

    #[test]
    fn microburst_count_bounded_by_packets(
        pkts in proptest::collection::vec((0i64..1_000_000, 40u16..1500), 0..100)) {
        let mut obs: Vec<PktObs> =
            pkts.iter().map(|&(us, s)| PktObs { ts: Timestamp(us), size: s }).collect();
        obs.sort_by_key(|p| p.ts);
        let b = microbursts(&obs, 3_000);
        prop_assert!(b <= obs.len() as f64);
        prop_assert!(unique_sizes(&obs) <= obs.len() as f64);
        if !obs.is_empty() {
            prop_assert!(b >= 1.0);
        }
    }

    // ---------------- core heuristic ----------------

    #[test]
    fn heuristic_conserves_packets(
        sizes in proptest::collection::vec(450u16..1500, 0..200),
        lookback in 1usize..6) {
        let pkts: Vec<(Timestamp, u16)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (Timestamp::from_millis(i as i64), s))
            .collect();
        let params = HeuristicParams { delta_max_size: 2, lookback };
        let (frames, asg) = IpUdpHeuristic::new(params).assemble(&pkts);
        prop_assert_eq!(asg.len(), pkts.len());
        let total: u32 = frames.iter().map(|f| f.n_packets).sum();
        prop_assert_eq!(total as usize, pkts.len());
        // Frames ordered by end time; every frame non-empty.
        for w in frames.windows(2) {
            prop_assert!(w[0].end_ts <= w[1].end_ts);
        }
        prop_assert!(frames.iter().all(|f| f.n_packets >= 1 && f.size_bytes >= 1));
    }

    #[test]
    fn deeper_lookback_never_increases_frame_count(
        sizes in proptest::collection::vec(450u16..1500, 1..150)) {
        let pkts: Vec<(Timestamp, u16)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (Timestamp::from_millis(i as i64), s))
            .collect();
        let count = |lb: usize| {
            let params = HeuristicParams { delta_max_size: 2, lookback: lb };
            IpUdpHeuristic::new(params).assemble(&pkts).0.len()
        };
        prop_assert!(count(4) <= count(1));
    }

    // ---------------- mlcore ----------------

    #[test]
    fn percentile_within_range(values in proptest::collection::vec(-1e6f64..1e6, 1..100),
                               q in 0.0f64..=100.0) {
        let p = percentile(&values, q);
        let lo = values.iter().cloned().fold(f64::MAX, f64::min);
        let hi = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(p >= lo && p <= hi);
    }

    #[test]
    fn confusion_rows_sum_to_100(obs in proptest::collection::vec((0usize..3, 0usize..3), 1..200)) {
        let mut m = ConfusionMatrix::new(vec!["a".into(), "b".into(), "c".into()]);
        for (actual, pred) in &obs {
            m.record(*actual, *pred);
        }
        for a in 0..3 {
            if m.row_total(a) > 0 {
                let sum: f64 = (0..3).map(|p| m.percent(a, p)).sum();
                prop_assert!((sum - 100.0).abs() < 1e-9);
            }
        }
    }

    // ---------------- api facade ----------------

    #[test]
    fn monitor_ingests_arbitrary_garbage_without_panicking(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..30)) {
        // Pure fuzz: whatever bytes arrive, every packet is either routed
        // to a flow or classified as a drop — never lost, never a panic.
        let mut monitor = MonitorBuilder::new(VcaKind::Teams).build();
        for (i, frame) in frames.iter().enumerate() {
            monitor.ingest_frame(Timestamp::from_millis(i as i64), frame);
        }
        let stats = monitor.stats();
        prop_assert_eq!(stats.packets + stats.parse_drops, frames.len() as u64);
        let classified = monitor
            .finish()
            .iter()
            .filter(|e| matches!(e, QoeEvent::ParseDrop { .. }))
            .count();
        prop_assert_eq!(classified as u64, stats.parse_drops);
    }

    #[test]
    fn monitor_classifies_mutated_real_frames(
        payload_len in 12usize..160,
        cut in any::<usize>(),
        ihl in 0u8..16,
        udp_len in any::<u16>(),
        mutation in 0usize..4) {
        // Start from a well-formed Ethernet/IPv4/UDP frame whose payload
        // looks RTP-ish (version bits = 2), then break it the ways real
        // captures do: truncation, a bad IHL, a lying UDP length.
        use vcaml_suite::netpkt::{EtherType, EthernetRepr, Ipv4Repr, MacAddr, UdpRepr};
        let mut payload = vec![0u8; payload_len];
        payload[0] = 0x80; // RTP version 2, no padding/extension/CSRC
        payload[1] = 102;
        let mut frame = vec![0u8; 14 + 20 + 8 + payload.len()];
        EthernetRepr {
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
        }
        .emit(&mut frame);
        Ipv4Repr {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            protocol: 17,
            payload_len: 8 + payload.len(),
            ttl: 64,
            ident: 1,
        }
        .emit(&mut frame[14..]);
        frame[42..].copy_from_slice(&payload);
        UdpRepr { src_port: 4000, dst_port: 5000 }
            .emit_v4(&mut frame[34..], payload.len(), [10, 0, 0, 1], [10, 0, 0, 2]);

        match mutation {
            0 => frame.truncate(cut % frame.len()),          // truncated anywhere
            1 => frame[14] = 0x40 | (ihl & 0x0f),            // bad IHL nibble
            2 => frame[38..40].copy_from_slice(&udp_len.to_be_bytes()), // lying UDP length
            _ => {}                                          // pristine control case
        }

        let mut monitor = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::RtpHeuristic))
            .build();
        monitor.ingest_frame(Timestamp::from_millis(1), &frame);
        let stats = monitor.stats();
        prop_assert_eq!(stats.packets + stats.parse_drops, 1);
        for event in monitor.finish() {
            if let QoeEvent::ParseDrop { reason, .. } = event {
                prop_assert!(!reason.tag().is_empty());
            }
        }
    }
}
