//! Parallel-monitor invariants: a threaded `vcaml::api::Monitor` must be
//! *window-exact* against its sequential self for all four methods, must
//! preserve per-flow event ordering across shard workers, and must
//! account precisely for everything a bounded `DropOldest` queue sheds.

use std::collections::{BTreeMap, HashMap};
use std::net::{IpAddr, Ipv4Addr};
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::netpkt::FlowKey;
use vcaml_suite::netpkt::Timestamp;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    EstimationMethod, EvictReason, Method, MonitorBuilder, OverflowPolicy, QoeEvent, Trace,
    TracePacket, WindowReport,
};

fn flow_key(n: u16) -> FlowKey {
    let client = IpAddr::V4(Ipv4Addr::new(10, 0, (n / 250) as u8, (n % 250) as u8 + 1));
    let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
    FlowKey::canonical(server, 3478, client, 40_000 + n, 17).0
}

/// A mixed multi-call feed in global arrival order: each trace of the
/// corpus becomes one flow, as a tap would deliver them.
fn mixed_feed(traces: &[Trace]) -> Vec<(FlowKey, TracePacket)> {
    let mut feed: Vec<(FlowKey, TracePacket)> = Vec::new();
    for (call, trace) in traces.iter().enumerate() {
        let key = flow_key(call as u16);
        feed.extend(trace.packets.iter().map(|p| (key, *p)));
    }
    feed.sort_by_key(|(_, p)| p.ts);
    feed
}

/// Every finalized window per flow, in window order, from a finished
/// monitor's event stream.
fn final_windows(events: &[QoeEvent]) -> HashMap<FlowKey, BTreeMap<u64, WindowReport>> {
    let mut out: HashMap<FlowKey, BTreeMap<u64, WindowReport>> = HashMap::new();
    for event in events {
        let Some(flow) = event.flow() else { continue };
        for report in event.final_reports() {
            let dup = out
                .entry(flow)
                .or_default()
                .insert(report.window, report.clone());
            assert!(dup.is_none(), "duplicate final window {}", report.window);
        }
    }
    out
}

fn run_monitor(
    vca: VcaKind,
    method: Method,
    payload_map: vcaml_suite::rtp::PayloadMap,
    threads: usize,
    feed: &[(FlowKey, TracePacket)],
) -> Vec<QoeEvent> {
    let mut monitor = MonitorBuilder::new(vca)
        .method(EstimationMethod::Fixed(method))
        .payload_map(payload_map)
        .threads(threads)
        .build();
    for (flow, pkt) in feed {
        monitor.ingest_packet(*flow, *pkt);
    }
    monitor.finish()
}

/// The tentpole invariant: hashing flows across shard workers must not
/// change a single window of a single flow, for any of the four
/// methods — estimates, feature vectors, and packet attribution all
/// bit-identical to the sequential monitor.
#[test]
fn parallel_matches_sequential_for_all_methods() {
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 6,
            min_secs: 10,
            max_secs: 16,
            seed: 77,
        },
    );
    let payload_map = traces[0].payload_map;
    let feed = mixed_feed(&traces);
    for method in Method::ALL {
        let sequential = final_windows(&run_monitor(vca, method, payload_map, 1, &feed));
        let parallel = final_windows(&run_monitor(vca, method, payload_map, 4, &feed));
        assert_eq!(
            sequential.len(),
            parallel.len(),
            "{method:?}: flow count differs"
        );
        for (flow, want) in &sequential {
            let got = parallel.get(flow).unwrap_or_else(|| {
                panic!("{method:?}: flow {flow} missing from parallel run");
            });
            assert_eq!(got.len(), want.len(), "{method:?} {flow}: window count");
            for (w, want_r) in want {
                let got_r = &got[w];
                assert_eq!(got_r.method, want_r.method, "{method:?} window {w}");
                assert_eq!(got_r.estimate, want_r.estimate, "{method:?} window {w}");
                assert_eq!(got_r.features, want_r.features, "{method:?} window {w}");
                assert_eq!(
                    got_r.video_packets, want_r.video_packets,
                    "{method:?} window {w}"
                );
            }
        }
    }
}

/// Per-flow event ordering survives the cross-shard merge: opened before
/// any report, reports in strictly increasing window order, sealed last
/// — even when events are drained incrementally mid-stream.
#[test]
fn per_flow_event_order_holds_across_shards() {
    let vca = VcaKind::Meet;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 8,
            min_secs: 8,
            max_secs: 12,
            seed: 9,
        },
    );
    let feed = mixed_feed(&traces);
    let mut monitor = MonitorBuilder::new(vca)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .payload_map(traces[0].payload_map)
        .threads(3)
        .build();
    let mut events = Vec::new();
    for (i, (flow, pkt)) in feed.iter().enumerate() {
        monitor.ingest_packet(*flow, *pkt);
        // Interleave draining with ingestion, like a live consumer.
        if i % 1000 == 0 {
            events.extend(monitor.drain_events());
        }
    }
    events.extend(monitor.finish());

    let mut opened: HashMap<FlowKey, bool> = HashMap::new();
    let mut last_final: HashMap<FlowKey, u64> = HashMap::new();
    let mut sealed: HashMap<FlowKey, bool> = HashMap::new();
    for event in &events {
        match event {
            QoeEvent::FlowOpened { flow, .. } => {
                assert!(opened.insert(*flow, true).is_none(), "duplicate open");
            }
            QoeEvent::WindowReport {
                flow,
                report,
                provisional: false,
            } => {
                assert!(opened.contains_key(flow), "report before open");
                assert!(!sealed.contains_key(flow), "report after seal");
                if let Some(prev) = last_final.get(flow) {
                    assert!(
                        report.window > *prev,
                        "flow {flow}: window {} after {}",
                        report.window,
                        prev
                    );
                }
                last_final.insert(*flow, report.window);
            }
            QoeEvent::FlowEvicted { flow, .. } => {
                assert!(opened.contains_key(flow), "evict before open");
                assert!(sealed.insert(*flow, true).is_none(), "duplicate seal");
            }
            _ => {}
        }
    }
    assert_eq!(opened.len(), traces.len());
    assert_eq!(sealed.len(), traces.len(), "every flow sealed");
}

/// `DropOldest` sheds exactly what it reports: dropped + delivered ==
/// the unbounded run's event count, on both sequential and threaded
/// monitors.
#[test]
fn drop_oldest_counts_are_exact() {
    let vca = VcaKind::Webex;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 4,
            min_secs: 8,
            max_secs: 12,
            seed: 41,
        },
    );
    let feed = mixed_feed(&traces);
    let total = run_monitor(vca, Method::IpUdpHeuristic, traces[0].payload_map, 1, &feed).len();

    for threads in [1usize, 3] {
        let mut monitor = MonitorBuilder::new(vca)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .payload_map(traces[0].payload_map)
            .threads(threads)
            .queue_capacity(16)
            .overflow(OverflowPolicy::DropOldest)
            .build();
        for (flow, pkt) in &feed {
            monitor.ingest_packet(*flow, *pkt);
        }
        let mut delivered = 0usize;
        let mut dropped = 0u64;
        // Drain everything the monitor has; finish() flushes the rest
        // unbounded, so the conservation law must hold exactly.
        let stats_dropped;
        {
            for event in monitor.drain_events() {
                match event {
                    QoeEvent::Dropped { count, .. } => dropped += count,
                    _ => delivered += 1,
                }
            }
            stats_dropped = monitor.stats().events_dropped;
            for event in monitor.finish() {
                match event {
                    QoeEvent::Dropped { count, .. } => dropped += count,
                    _ => delivered += 1,
                }
            }
        }
        assert!(dropped > 0, "threads={threads}: feed must overflow cap 16");
        assert_eq!(
            delivered as u64 + dropped,
            total as u64,
            "threads={threads}: dropped + delivered == every event"
        );
        assert!(
            stats_dropped <= dropped,
            "threads={threads}: stats never overcount"
        );
    }
}

/// The end-of-stream flush is lossless even under `DropOldest`: mid-
/// stream events may be shed (with an exact marker), but `finish()`
/// lifts the bound before the workers seal their flows, so every flow's
/// `FlowEvicted` tail windows survive.
#[test]
fn finish_under_drop_oldest_keeps_every_tail() {
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 5,
            min_secs: 8,
            max_secs: 12,
            seed: 63,
        },
    );
    let feed = mixed_feed(&traces);
    let mut monitor = MonitorBuilder::new(vca)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .payload_map(traces[0].payload_map)
        .threads(2)
        .queue_capacity(8)
        .overflow(OverflowPolicy::DropOldest)
        .build();
    // Never drain mid-stream: the bounded queue sheds continuously.
    for (flow, pkt) in &feed {
        monitor.ingest_packet(*flow, *pkt);
    }
    let events = monitor.finish();
    let dropped: u64 = events
        .iter()
        .filter_map(|e| match e {
            QoeEvent::Dropped { count, .. } => Some(*count),
            _ => None,
        })
        .sum();
    assert!(dropped > 0, "mid-stream events were shed");
    let sealed: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            QoeEvent::FlowEvicted {
                flow,
                final_reports,
                ..
            } => Some((flow, final_reports)),
            _ => None,
        })
        .collect();
    assert_eq!(sealed.len(), traces.len(), "every flow's seal survives");
    assert!(
        sealed.iter().all(|(_, reports)| !reports.is_empty()),
        "sealed tail windows are never shed"
    );
}

/// Deadlock regression: tiny queue + tiny ingest channels under `Block`,
/// with a consumer that never drains mid-stream. The dispatcher must
/// stage ready events while waiting for channel space instead of
/// wedging against a worker parked on the full event queue — and the
/// conservation law still holds at the end.
#[test]
fn block_policy_with_tiny_bounds_never_deadlocks() {
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 4,
            min_secs: 6,
            max_secs: 10,
            seed: 29,
        },
    );
    let feed = mixed_feed(&traces);
    let total = run_monitor(vca, Method::IpUdpHeuristic, traces[0].payload_map, 1, &feed).len();

    let mut monitor = MonitorBuilder::new(vca)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .payload_map(traces[0].payload_map)
        .threads(2)
        .queue_capacity(8) // also shrinks the ingest channels to 1 batch
        .overflow(OverflowPolicy::Block)
        .build();
    for (flow, pkt) in &feed {
        monitor.ingest_packet(*flow, *pkt); // must never wedge
    }
    let mut got = monitor.drain_events().count();
    got += monitor.finish().len();
    assert_eq!(got, total, "Block loses nothing");
}

/// Backpressure end to end: a threaded monitor under `Block` must not
/// lose a single event when the consumer drains slowly, and ingestion
/// must complete (no deadlock) as long as the consumer keeps draining.
#[test]
fn block_policy_delivers_everything_under_slow_draining() {
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 4,
            min_secs: 6,
            max_secs: 10,
            seed: 13,
        },
    );
    let feed = mixed_feed(&traces);
    let total = run_monitor(vca, Method::IpUdpHeuristic, traces[0].payload_map, 1, &feed).len();

    let mut monitor = MonitorBuilder::new(vca)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .payload_map(traces[0].payload_map)
        .threads(2)
        .queue_capacity(8)
        .overflow(OverflowPolicy::Block)
        .build();
    let mut got = 0usize;
    for (flow, pkt) in &feed {
        monitor.ingest_packet(*flow, *pkt);
        // The drain between ingests is what keeps Block from wedging:
        // it models a consumer that is slow but alive.
        got += monitor.drain_events().count();
    }
    assert_eq!(monitor.stats().events_dropped, 0, "Block never drops");
    got += monitor.finish().len();
    assert_eq!(got, total, "every event delivered exactly once");
}

/// A steady synthetic video flow (two ~1 kB packets per 30 fps frame)
/// between `from`..`to` seconds, used to keep a shard worker's clock
/// advancing through another flow's quiet period.
fn steady_feed(flow: FlowKey, from: i64, to: i64) -> Vec<(FlowKey, TracePacket)> {
    let mut out = Vec::new();
    for f in from * 30..to * 30 {
        let t0 = f * 33_333;
        for i in 0..2i64 {
            out.push((
                flow,
                TracePacket {
                    ts: Timestamp::from_micros(t0 + i * 300),
                    size: 1_000 + ((f % 9) * 13) as u16,
                    rtp: None,
                    truth_media: None,
                },
            ));
        }
    }
    out
}

/// Slot recycling under the parallel monitor: four corpus flows go
/// quiet for far longer than the idle timeout, get evicted mid-run, and
/// then the very same keys re-open into recycled open-addressed slots.
/// Long-lived "clock driver" flows — chosen so every shard worker owns
/// at least two — keep each worker's clock advancing smoothly through
/// the quiet period, so the evict/reopen cycle is deterministic and
/// threaded runs must stay window-exact against sequential ones for all
/// four methods, across both flow lives.
#[test]
fn parallel_matches_sequential_across_slot_recycling() {
    const THREADS: usize = 4;
    let vca = VcaKind::Teams;
    let traces = inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 4,
            min_secs: 6,
            max_secs: 6,
            seed: 78,
        },
    );
    let payload_map = traces[0].payload_map;

    // Clock drivers: at least two steady flows hashed onto every one of
    // the THREADS shard workers (the router picks `hash64() % workers`),
    // so no worker's clock ever stalls during the corpus flows' silence.
    let mut per_worker = [0usize; THREADS];
    let mut drivers = Vec::new();
    for n in 1000u16.. {
        let key = flow_key(n);
        let worker = (key.hash64() % THREADS as u64) as usize;
        if per_worker[worker] < 2 {
            per_worker[worker] += 1;
            drivers.push(key);
        }
        if per_worker.iter().all(|c| *c == 2) {
            break;
        }
    }

    // First life 0..~6 s, silence, second life 20..~26 s: idle well past
    // the 5 s timeout, with every eviction settled before the re-open.
    let phase1 = mixed_feed(&traces);
    let mut feed = phase1.clone();
    feed.extend(phase1.iter().map(|(k, p)| {
        let mut q = *p;
        q.ts = Timestamp::from_micros(p.ts.as_micros() + 20_000_000);
        (*k, q)
    }));
    for key in &drivers {
        feed.extend(steady_feed(*key, 0, 27));
    }
    feed.sort_by_key(|(_, p)| p.ts);

    let run = |method: Method, threads: usize| -> Vec<QoeEvent> {
        let mut monitor = MonitorBuilder::new(vca)
            .method(EstimationMethod::Fixed(method))
            .payload_map(payload_map)
            .threads(threads)
            .idle_timeout(Timestamp::from_secs(5))
            .build();
        for (flow, pkt) in &feed {
            monitor.ingest_packet(*flow, *pkt);
        }
        monitor.finish()
    };

    for method in Method::ALL {
        let seq_events = run(method, 1);
        let idle_evictions = seq_events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::FlowEvicted {
                        reason: EvictReason::Idle,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(
            idle_evictions,
            traces.len(),
            "{method:?}: exactly the corpus flows must be evicted idle"
        );
        let reopened = seq_events
            .iter()
            .filter(|e| matches!(e, QoeEvent::FlowOpened { .. }))
            .count();
        assert_eq!(
            reopened,
            drivers.len() + 2 * traces.len(),
            "{method:?}: every corpus flow must open a second life"
        );

        let sequential = final_windows(&seq_events);
        let parallel = final_windows(&run(method, THREADS));
        assert_eq!(sequential.len(), parallel.len(), "{method:?}: flow count");
        for (flow, want) in &sequential {
            // Both lives land in one map: absolute window indices keep a
            // reborn flow's windows disjoint from its first life's.
            let got = parallel.get(flow).unwrap_or_else(|| {
                panic!("{method:?}: flow {flow} missing from parallel run");
            });
            assert_eq!(got.len(), want.len(), "{method:?} {flow}: window count");
            for (w, want_r) in want {
                let got_r = &got[w];
                assert_eq!(got_r.estimate, want_r.estimate, "{method:?} window {w}");
                assert_eq!(got_r.features, want_r.features, "{method:?} window {w}");
                assert_eq!(
                    got_r.video_packets, want_r.video_packets,
                    "{method:?} window {w}"
                );
            }
        }
    }
}
