//! The event bus's zero-copy contract, enforced end to end: an
//! 8-subscriber fan-out (channel subscribers, JSON lines, a filtered
//! alert counter) over a threaded multi-source run performs **zero**
//! `QoeEvent` deep copies — every delivery clones an `Arc`, never the
//! event. The crate counts deep copies in `QoeEvent`'s `Clone` impl;
//! this file holds exactly one test so no unrelated consumer in the
//! same process can disturb the counter.

use std::io::Write;
use std::sync::{Arc, Mutex};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::api::qoe_event_clone_count;
use vcaml_suite::vcaml::{
    ChannelSink, CountingSink, EstimationMethod, EventFilter, JsonLinesSink, Method,
    MonitorBuilder, MonitorRunner, Severity, SyntheticSource,
};

/// A `Write` handle tests can keep after handing a sink ownership.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buf poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn eight_subscriber_fanout_never_clones_an_event() {
    let before = qoe_event_clone_count();

    // Two synthetic taps on two ingest threads, two shard workers, and
    // an 8-subscriber bus: 8 bounded channels + a JSON-lines writer + a
    // min-severity subscription. Every delivery path the crate owns is
    // exercised: shard emission → bounded queue → runner drain → bus
    // fan-out → channel hand-off and serialization.
    let mut runner = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2),
    )
    .source(SyntheticSource::new(VcaKind::Teams, 4, 2, 11))
    .source(SyntheticSource::new(VcaKind::Teams, 4, 2, 12))
    .sink(JsonLinesSink::new(SharedBuf::default()))
    .subscribe(
        EventFilter::all().min_severity(Severity::Warning),
        CountingSink::default(),
    );
    let mut receivers = Vec::new();
    for _ in 0..8 {
        let (sink, rx) = ChannelSink::bounded(1 << 20);
        runner = runner.sink(sink);
        receivers.push(rx);
    }
    let report = runner.spawn().join();
    assert!(report.events > 0, "the run produced events");

    // Every channel subscriber observed the full stream — and consuming
    // it (including re-serializing) still needs no deep copy.
    for rx in &receivers {
        let events: Vec<_> = rx.try_iter().collect();
        assert_eq!(events.len() as u64, report.events, "full fan-out");
        for event in &events {
            assert!(!event.to_json_line().is_empty());
        }
    }

    assert_eq!(
        qoe_event_clone_count() - before,
        0,
        "no per-event delivery path may deep-copy a QoeEvent"
    );
}
