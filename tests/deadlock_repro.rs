use std::net::{IpAddr, Ipv4Addr};
use vcaml::{EstimationMethod, Method, MonitorBuilder, OverflowPolicy, TracePacket};
use vcaml_netpkt::{FlowKey, Timestamp};

#[test]
fn parse_drop_on_full_queue_threaded_block() {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut m = MonitorBuilder::new(vcaml_rtp::VcaKind::Meet)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .threads(2)
            .queue_capacity(1)
            .overflow(OverflowPolicy::Block)
            .build();
        let (flow, _) = FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            5001,
            17,
        );
        // >512 packets so a batch flushes to the worker, which emits
        // events and parks on the size-1 queue.
        for i in 0..2000i64 {
            let p = TracePacket {
                ts: Timestamp::from_micros(i * 40_000),
                size: 1200,
                rtp: None,
                truth_media: None,
            };
            m.ingest_packet(flow, p);
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        // Queue is now full; a parse drop must not hang the caller.
        let p = TracePacket {
            ts: Timestamp::from_micros(-1),
            size: 100,
            rtp: None,
            truth_media: None,
        };
        m.ingest_packet(flow, p);
        drop(m);
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(5))
        .expect("monitor deadlocked on parse drop with full Block queue");
}
