//! Cross-crate integration tests: simulator → datasets → feature
//! extraction → heuristics/ML → evaluation, plus wire-format round trips.

use vcaml_suite::datasets::{inlab_corpus, realworld_corpus, to_core_trace, CorpusConfig};
use vcaml_suite::mlcore::{mae, RandomForestParams};
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::netpkt::{LinkType, PcapReader, PcapWriter, UdpDatagram};
use vcaml_suite::rtp::{MediaKind, RtpHeader, VcaKind};
use vcaml_suite::vcaml::{
    build_samples, eval_heuristic, eval_ml_regression, eval_ml_resolution, transfer_regression,
    MediaClassifier, Method, PipelineOpts, Target,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

fn small_opts(vca: VcaKind) -> PipelineOpts {
    let mut o = PipelineOpts::paper(vca);
    o.forest = RandomForestParams {
        n_trees: 10,
        seed: 1,
        ..Default::default()
    };
    o
}

fn small_corpus(vca: VcaKind, seed: u64) -> Vec<vcaml_suite::vcaml::Trace> {
    inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 6,
            min_secs: 25,
            max_secs: 35,
            seed,
        },
    )
}

#[test]
fn end_to_end_all_methods_reasonable_on_webex() {
    let vca = VcaKind::Webex;
    let opts = small_opts(vca);
    let set = build_samples(&small_corpus(vca, 1), &opts);
    assert!(set.samples.len() > 100);

    for method in Method::ALL {
        let (p, t) = if method.is_ml() {
            eval_ml_regression(&set, method, Target::FrameRate, &opts)
        } else {
            eval_heuristic(&set, method, Target::FrameRate)
        };
        let m = mae(&p, &t);
        assert!(m < 5.0, "{} frame-rate MAE {m}", method.name());
    }
}

#[test]
fn ipudp_ml_close_to_rtp_ml() {
    // The paper's headline: IP/UDP features are nearly as good as RTP.
    let vca = VcaKind::Teams;
    let opts = small_opts(vca);
    let set = build_samples(&small_corpus(vca, 2), &opts);
    let (ip_p, ip_t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
    let (rt_p, rt_t) = eval_ml_regression(&set, Method::RtpMl, Target::FrameRate, &opts);
    let gap = mae(&ip_p, &ip_t) - mae(&rt_p, &rt_t);
    assert!(gap < 2.5, "IP/UDP ML trails RTP ML by {gap} FPS");
}

#[test]
fn media_classification_high_accuracy_all_vcas() {
    for vca in VcaKind::ALL {
        let traces = small_corpus(vca, 3);
        let classifier = MediaClassifier::default();
        let mut correct = 0u64;
        let mut total = 0u64;
        for t in &traces {
            let m = classifier.evaluate(t, 304);
            correct += m.count(0, 0) + m.count(1, 1);
            total += m.row_total(0) + m.row_total(1);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.97, "{vca}: media accuracy {acc}");
    }
}

#[test]
fn resolution_classification_works_for_teams() {
    let vca = VcaKind::Teams;
    let opts = small_opts(vca);
    let set = build_samples(&small_corpus(vca, 4), &opts);
    let (m, acc) = eval_ml_resolution(&set, Method::IpUdpMl, &opts).expect("classifiable");
    assert!(acc > 0.6, "resolution accuracy {acc}");
    assert_eq!(m.labels(), &["Low", "Medium", "High"]);
}

#[test]
fn lab_model_transfers_to_real_world() {
    let vca = VcaKind::Webex;
    let opts = small_opts(vca);
    let train = build_samples(&small_corpus(vca, 5), &opts);
    let rw = realworld_corpus(
        vca,
        &CorpusConfig {
            n_calls: 8,
            min_secs: 15,
            max_secs: 20,
            seed: 6,
        },
    );
    let test = build_samples(&rw, &opts);
    let (p, t) = transfer_regression(&train, &test, Method::IpUdpMl, Target::FrameRate, &opts);
    let m = mae(&p, &t);
    assert!(m < 6.0, "transfer MAE {m}");
}

#[test]
fn captured_bytes_roundtrip_through_pcap() {
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(9, 10),
        duration_secs: 10,
        seed: 9,
        link: LinkConfig::default(),
    })
    .run();
    let captured = session.to_captured();

    // Raw-IP pcap: write IPv4 packets, read them back, re-parse.
    let mut w = PcapWriter::new(Vec::new(), LinkType::RawIp).unwrap();
    for cap in &captured {
        // Rebuild the IPv4 packet bytes from the datagram.
        let payload = &cap.datagram.payload;
        let mut buf = vec![0u8; 20 + 8 + payload.len()];
        vcaml_suite::netpkt::Ipv4Repr {
            src: [203, 0, 113, 10],
            dst: [192, 168, 1, 100],
            protocol: vcaml_suite::netpkt::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            ttl: 58,
            ident: 0,
        }
        .emit(&mut buf);
        buf[28..].copy_from_slice(payload);
        vcaml_suite::netpkt::UdpRepr {
            src_port: 3478,
            dst_port: 51820,
        }
        .emit_v4(
            &mut buf[20..],
            payload.len(),
            [203, 0, 113, 10],
            [192, 168, 1, 100],
        );
        w.write_packet(cap.ts, &buf).unwrap();
    }
    let bytes = w.finish().unwrap();

    let mut r = PcapReader::new(std::io::Cursor::new(bytes)).unwrap();
    assert_eq!(r.link_type(), LinkType::RawIp);
    let mut n = 0usize;
    while let Some(rec) = r.next_record().unwrap() {
        let dg = UdpDatagram::parse_ipv4(&rec.data).unwrap().expect("udp");
        assert_eq!(dg.ip_total_len, captured[n].size());
        assert_eq!(rec.ts, captured[n].ts);
        n += 1;
    }
    assert_eq!(n, captured.len());
}

#[test]
fn rtp_headers_in_captured_bytes_match_simulation() {
    let profile = VcaProfile::lab(VcaKind::Meet);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(10, 8),
        duration_secs: 8,
        seed: 10,
        link: LinkConfig::default(),
    })
    .run();
    let trace = to_core_trace(&session, profile.payload_map);
    // PT classification must agree with simulator truth for RTP packets.
    for p in &trace.packets {
        if let Some(h) = p.rtp {
            let classified = profile.payload_map.classify(h.payload_type);
            match p.truth_media.unwrap() {
                MediaKind::Video => assert_eq!(classified, Some(MediaKind::Video)),
                MediaKind::Audio => assert_eq!(classified, Some(MediaKind::Audio)),
                MediaKind::VideoRtx => assert_eq!(classified, Some(MediaKind::VideoRtx)),
                MediaKind::Control => panic!("control packet with RTP header"),
            }
        }
    }
    // And the emitted wire bytes parse back to the same header.
    let captured = session.to_captured();
    for (cap, sim) in captured.iter().zip(&session.packets) {
        match sim.rtp {
            Some(h) => assert_eq!(RtpHeader::parse(&cap.datagram.payload).unwrap(), h),
            None => assert!(RtpHeader::parse(&cap.datagram.payload).is_err()),
        }
    }
}

#[test]
fn corpora_are_deterministic_across_processes() {
    // Same seeds -> identical window counts and truth series.
    let a = small_corpus(VcaKind::Meet, 11);
    let b = small_corpus(VcaKind::Meet, 11);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.packets.len(), y.packets.len());
        assert_eq!(x.truth.len(), y.truth.len());
        for (tx, ty) in x.truth.iter().zip(&y.truth) {
            assert_eq!(tx.fps, ty.fps);
            assert_eq!(tx.bitrate_kbps, ty.bitrate_kbps);
        }
    }
}

#[test]
fn window_sweep_reduces_ml_error() {
    // Fig 12's trend: larger windows -> easier prediction.
    let vca = VcaKind::Webex;
    let traces = small_corpus(vca, 12);
    let mut maes = Vec::new();
    for w in [1u32, 5] {
        let mut opts = small_opts(vca);
        opts.window_secs = w;
        let set = build_samples(&traces, &opts);
        let (p, t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
        maes.push(mae(&p, &t));
    }
    assert!(maes[1] < maes[0], "window sweep: {maes:?}");
}
