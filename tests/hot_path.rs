//! Allocation discipline on the steady-state per-packet path.
//!
//! A counting global allocator meters every heap allocation made by the
//! current thread. After a warmup phase (first half of a trace) has grown
//! every scratch buffer, ring, and accumulator to its steady-state
//! capacity, pushing a packet that does **not** seal a window must make
//! zero heap allocations — for all four estimation methods. Packets that
//! do seal a window are exempt: a sealed [`WindowReport`] legitimately
//! owns a fresh feature vector.
//!
//! ML engines run in [`StatsMode::Sketch`], the strict-O(1) configuration
//! (exact mode keeps unbounded per-window sets by design).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::features::StatsMode;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::engine::{
    IpUdpHeuristicEngine, IpUdpMlEngine, RtpHeuristicEngine, RtpMlEngine,
};
use vcaml_suite::vcaml::{EngineConfig, QoeEstimator, Trace, WindowReport};

/// Wraps the system allocator with a per-thread allocation counter. The
/// counter only advances while the owning thread has armed it, so
/// parallel test threads never pollute each other's measurements.
struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn count_if_armed() {
    if ARMED.with(Cell::get) {
        ALLOCS.with(|a| a.set(a.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_armed();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_armed();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with the counter armed and returns how many heap allocations
/// it made on this thread.
fn metered<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    ARMED.with(|c| c.set(true));
    let out = f();
    ARMED.with(|c| c.set(false));
    (ALLOCS.with(Cell::get) - before, out)
}

fn trace(vca: VcaKind) -> Trace {
    inlab_corpus(
        vca,
        &CorpusConfig {
            n_calls: 1,
            min_secs: 20,
            max_secs: 20,
            seed: 0x607_9a7,
        },
    )
    .remove(0)
}

/// Warm an engine on the first half of a trace, then assert that every
/// non-sealing push in the second half allocates nothing.
fn assert_alloc_free_steady_state<E: QoeEstimator>(mut engine: E, trace: &Trace, label: &str) {
    let mid = trace.packets.len() / 2;
    let mut out: Vec<WindowReport> = Vec::with_capacity(64);
    for p in &trace.packets[..mid] {
        engine.push_into(p, &mut out);
        out.clear();
    }

    let mut steady = 0usize;
    let mut dirty = Vec::new();
    for (i, p) in trace.packets[mid..].iter().enumerate() {
        let (allocs, ()) = metered(|| engine.push_into(p, &mut out));
        if out.is_empty() {
            // No window sealed: the pure per-packet path must be heap-silent.
            steady += 1;
            if allocs > 0 {
                dirty.push((mid + i, allocs));
            }
        }
        out.clear();
    }

    assert!(
        steady > 100,
        "{label}: trace too short to exercise the steady state ({steady} packets)"
    );
    assert!(
        dirty.is_empty(),
        "{label}: {} of {steady} steady-state packets allocated: {:?}",
        dirty.len(),
        &dirty[..dirty.len().min(8)]
    );
}

fn sketch_config(vca: VcaKind) -> EngineConfig {
    EngineConfig {
        stats: StatsMode::Sketch,
        ..EngineConfig::paper(vca)
    }
}

/// The meter itself must see allocations, or every test above is vacuous.
#[test]
fn allocation_meter_detects_heap_traffic() {
    let (allocs, v) = metered(|| Vec::<u64>::with_capacity(32));
    assert!(allocs >= 1, "counting allocator missed a Vec allocation");
    drop(v);
    let (quiet, ()) = metered(|| ());
    assert_eq!(quiet, 0, "counter advanced with no allocation");
}

#[test]
fn ipudp_heuristic_steady_state_is_alloc_free() {
    let t = trace(VcaKind::Meet);
    let engine = IpUdpHeuristicEngine::new(sketch_config(VcaKind::Meet));
    assert_alloc_free_steady_state(engine, &t, "IpUdpHeuristic");
}

#[test]
fn rtp_heuristic_steady_state_is_alloc_free() {
    let t = trace(VcaKind::Meet);
    let engine = RtpHeuristicEngine::new(sketch_config(VcaKind::Meet), t.payload_map);
    assert_alloc_free_steady_state(engine, &t, "RtpHeuristic");
}

#[test]
fn ipudp_ml_steady_state_is_alloc_free() {
    let t = trace(VcaKind::Teams);
    let engine = IpUdpMlEngine::new(sketch_config(VcaKind::Teams));
    assert_alloc_free_steady_state(engine, &t, "IpUdpMl");
}

#[test]
fn rtp_ml_steady_state_is_alloc_free() {
    let t = trace(VcaKind::Teams);
    let engine = RtpMlEngine::new(sketch_config(VcaKind::Teams), t.payload_map);
    assert_alloc_free_steady_state(engine, &t, "RtpMl");
}
