//! Integration tests for the `vcaml::daemon` operational surface:
//!
//! * the control grammar is **total** — arbitrary bytes parse to a
//!   typed request or a typed error, never a panic, and a live control
//!   socket survives any garbage a client throws at it;
//! * every verb (`STATS`/`FLUSH`/`EVICT`/`SET`/`SUBSCRIBE`/`STOP`)
//!   round-trips against a live threaded monitor, with its side effect
//!   observable through the same `MonitorHandle` the daemon wraps;
//! * the OpenMetrics exporter emits a self-consistent document — every
//!   sample belongs to a `# TYPE`-annotated family, labels are
//!   well-formed, the body ends in `# EOF`, and `_total` counters are
//!   monotone across two scrapes taken mid-ingest.

use proptest::prelude::*;
use rand::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use vcaml_suite::netpkt::{FlowKey, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::daemon::{
    parse_request, BoundControl, ControlEndpoint, Daemon, DaemonConfig, Request, MAX_LINE_BYTES,
};
use vcaml_suite::vcaml::{
    EstimationMethod, Method, MonitorBuilder, MonitorRunner, Paced, ReplaySource, TracePacket,
};
use vcaml_suite::vcasim::VcaProfile;

fn flow_key(n: u16) -> FlowKey {
    let client = std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, n as u8 + 1));
    let server = std::net::IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 1));
    FlowKey::canonical(server, 3478, client, 40_000 + n, 17).0
}

/// A synthetic 30 fps video flow: two ~1 kB packets per frame.
fn video_feed(flow: FlowKey, secs: i64) -> Vec<(FlowKey, TracePacket)> {
    let mut out = Vec::new();
    for f in 0..secs * 30 {
        let t0 = f * 33_333;
        for i in 0..2i64 {
            out.push((
                flow,
                TracePacket {
                    ts: Timestamp::from_micros(t0 + i * 300),
                    size: 1_000 + ((f % 9) * 13) as u16,
                    rtp: None,
                    truth_media: None,
                },
            ));
        }
    }
    out
}

fn merged_feed(flows: u16, secs: i64) -> Vec<(FlowKey, TracePacket)> {
    let mut feed = Vec::new();
    for n in 0..flows {
        feed.extend(video_feed(flow_key(n), secs));
    }
    feed.sort_by_key(|(_, p)| p.ts);
    feed
}

fn builder() -> MonitorBuilder {
    MonitorBuilder::new(VcaKind::Teams)
        .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
        .shards(2)
        .threads(2)
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .expect("set read timeout");
    stream
}

fn tcp_control_addr(daemon: &Daemon) -> SocketAddr {
    match daemon.control_addr() {
        Some(BoundControl::Tcp(addr)) => *addr,
        other => panic!("expected TCP control endpoint, got {other:?}"),
    }
}

/// One request/reply exchange on an already-open control connection.
fn exchange(control: &mut BufReader<TcpStream>, line: &str) -> String {
    control
        .get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("write control line");
    let mut reply = String::new();
    control.read_line(&mut reply).expect("read control reply");
    reply.trim_end().to_string()
}

/// One full HTTP/1.0 scrape; returns the body only.
fn scrape(addr: SocketAddr) -> String {
    let mut stream = connect(addr);
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write scrape request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    assert!(
        response.starts_with("HTTP/1.0 200 OK\r\n"),
        "scrape status line: {response:.60}"
    );
    assert!(
        response.contains("Content-Type: application/openmetrics-text"),
        "scrape content type missing"
    );
    let (_head, body) = response
        .split_once("\r\n\r\n")
        .expect("scrape response has a header/body split");
    body.to_string()
}

proptest! {
    // The grammar is total: any byte soup, split on newlines the way
    // the wire would, parses without panicking, and every error turns
    // into a single-line printable `ERR <code> ...` reply.
    #[test]
    fn parse_request_is_total_over_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let text = String::from_utf8_lossy(&data);
        for line in text.split('\n') {
            if let Err(err) = parse_request(line) {
                let reply = err.to_reply();
                prop_assert!(reply.starts_with("ERR "), "reply {reply:?}");
                prop_assert!(!reply.contains('\n'));
                prop_assert!(reply.chars().all(|c| !c.is_control()));
                prop_assert!(!err.code().is_empty());
            }
        }
    }

    // Valid verbs with random argument tails still never panic, and a
    // bare well-formed verb still parses.
    #[test]
    fn verb_prefixes_with_random_tails_stay_typed(
        verb in 0usize..6,
        tail in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        let verbs = ["STATS", "FLUSH", "EVICT", "SET", "SUBSCRIBE", "STOP"];
        let tail = String::from_utf8_lossy(&tail).replace(['\n', '\r'], " ");
        let _ = parse_request(&format!("{} {tail}", verbs[verb]));
        prop_assert!(parse_request(verbs[0]).is_ok());
        prop_assert_eq!(parse_request("stop"), Ok(Request::Stop));
    }
}

/// A live control socket shrugs off garbage: random blobs (plus a few
/// hand-picked hostile lines) never kill the daemon — a fresh `STATS`
/// afterwards always answers `OK`.
#[test]
fn garbage_on_the_wire_never_kills_the_daemon() {
    let mut runner = MonitorRunner::new(builder());
    let handle = runner.handle();
    let bus = runner.bus_handle();
    let daemon = Daemon::start(
        handle.clone(),
        bus,
        DaemonConfig::new()
            .metrics_addr("127.0.0.1:0")
            .control(ControlEndpoint::Tcp("127.0.0.1:0".into())),
    )
    .expect("daemon binds ephemeral ports");
    // A short run that completes immediately; the daemon keeps serving
    // snapshots from the handle after the run is over.
    runner = runner.source(ReplaySource::from_packets(video_feed(flow_key(0), 2)));
    runner.spawn().join();

    let control_addr = tcp_control_addr(&daemon);
    let mut rng = StdRng::seed_from_u64(42);
    let hostile: Vec<Vec<u8>> = vec![
        b"EVICT banana\n".to_vec(),
        b"SET alert_fps NaN\n".to_vec(),
        b"SET alert_fps\n".to_vec(),
        b"SET brightness 11\n".to_vec(),
        b"SUBSCRIBE kinds=nonsense\n".to_vec(),
        b"STATS extra args\n".to_vec(),
        b"\xff\xfe\xfd\n".to_vec(),
        vec![b'A'; MAX_LINE_BYTES + 100],
    ];
    for case in 0..48 {
        let blob = if case < hostile.len() {
            hostile[case].clone()
        } else {
            let len = (rng.next_u64() % 400) as usize;
            (0..len).map(|_| rng.next_u64() as u8).collect()
        };
        let mut stream = connect(control_addr);
        let _ = stream.write_all(&blob);
        let _ = stream.write_all(b"\n");
        drop(stream);

        // The daemon must still be standing.
        let mut control = BufReader::new(connect(control_addr));
        let reply = exchange(&mut control, "STATS");
        assert!(
            reply.starts_with("OK {"),
            "daemon died after blob {case}: {reply:?}"
        );
    }

    // The hostile-but-structured lines come back as the right codes.
    let mut control = BufReader::new(connect(control_addr));
    assert!(exchange(&mut control, "EVICT banana").starts_with("ERR bad_flow"));
    assert!(exchange(&mut control, "SET alert_fps nope").starts_with("ERR bad_number"));
    assert!(exchange(&mut control, "SET brightness 11").starts_with("ERR unknown_setting"));
    assert!(exchange(&mut control, "BOGOVERB").starts_with("ERR unknown_verb"));
    daemon.shutdown();
}

/// Golden round-trip: every verb against a live, real-time-paced
/// monitor, each side effect confirmed through the handle.
#[test]
fn every_verb_round_trips_against_a_live_monitor() {
    let mut runner = MonitorRunner::new(builder());
    let handle = runner.handle();
    let bus = runner.bus_handle();
    let daemon = Daemon::start(
        handle.clone(),
        bus,
        DaemonConfig::new()
            .ladder(VcaProfile::lab(VcaKind::Teams))
            .metrics_addr("127.0.0.1:0")
            .control(ControlEndpoint::Tcp("127.0.0.1:0".into())),
    )
    .expect("daemon binds ephemeral ports");
    // A long paced feed so the run is still live while we drive verbs;
    // the trailing STOP (not feed exhaustion) is what ends it.
    runner = runner.source(
        Paced::new(ReplaySource::from_packets(merged_feed(2, 120))).with_stop(handle.stop_token()),
    );
    let running = runner.spawn();

    let control_addr = tcp_control_addr(&daemon);

    // SUBSCRIBE on its own connection: it upgrades to a one-way stream.
    let mut subscriber = BufReader::new(connect(control_addr));
    let reply = exchange(&mut subscriber, "SUBSCRIBE kinds=window_report");
    assert_eq!(reply, "OK subscribed");

    let mut control = BufReader::new(connect(control_addr));

    // STATS: the reply payload is the handle's own snapshot serializer
    // (exact bytes race against the live counters, so compare shape).
    let stats = exchange(&mut control, "STATS");
    assert!(stats.starts_with("OK {"), "STATS reply: {stats:?}");
    let local = handle.stats_snapshot().to_json_line();
    for key in [
        "\"packets\"",
        "\"events_by_severity\"",
        "\"windows_by_method\"",
        "\"flows_live\"",
    ] {
        assert!(stats.contains(key), "STATS reply missing {key}: {stats:?}");
        assert!(
            local.contains(key),
            "local snapshot missing {key}: {local:?}"
        );
    }

    // SET all three alert floors, each observable through the handle.
    assert_eq!(exchange(&mut control, "SET alert_fps 24"), "OK");
    assert_eq!(handle.alert_fps(), Some(24.0));
    assert_eq!(exchange(&mut control, "SET alert_min_kbps 300"), "OK");
    assert_eq!(handle.alert_min_kbps(), Some(300.0));
    assert_eq!(
        exchange(&mut control, "SET alert_resolution_floor 360"),
        "OK"
    );
    assert_eq!(handle.alert_resolution_floor(), Some(360));

    // FLUSH forces provisional snapshots into the event stream.
    assert_eq!(exchange(&mut control, "FLUSH"), "OK");

    // EVICT seals one live flow; the eviction shows up in the stats.
    let evicted_flow = flow_key(1);
    assert_eq!(
        exchange(&mut control, &format!("EVICT {}", evicted_flow.to_wire())),
        "OK"
    );

    // The subscriber stream delivers JSON-lines window reports from the
    // live run (windows are one second, so this arrives within seconds).
    let mut event_line = String::new();
    subscriber
        .read_line(&mut event_line)
        .expect("subscriber stream delivers");
    assert!(
        event_line.starts_with('{') && event_line.contains("window_report"),
        "subscriber line: {event_line:?}"
    );

    // STOP requests a graceful stop; the paced source aborts its sleep
    // and the run drains to a clean join.
    assert_eq!(exchange(&mut control, "STOP"), "OK stopping");
    let report = running.join();
    assert!(report.stats.packets > 0, "run ingested before the stop");
    assert!(
        report.stats.flows_evicted >= 1,
        "EVICT sealed a flow: {:?}",
        report.stats
    );
    daemon.shutdown();
}

/// Two scrapes mid-ingest: both documents are well-formed (typed
/// families, well-formed labels, `# EOF` terminator) and every counter
/// family is monotone between them.
#[test]
fn metrics_scrapes_are_wellformed_and_monotone_mid_ingest() {
    let mut runner = MonitorRunner::new(builder());
    let handle = runner.handle();
    let bus = runner.bus_handle();
    let daemon = Daemon::start(
        handle.clone(),
        bus,
        DaemonConfig::new()
            .metrics_addr("127.0.0.1:0")
            .control(ControlEndpoint::Tcp("127.0.0.1:0".into())),
    )
    .expect("daemon binds ephemeral ports");
    runner = runner.source(
        Paced::new(ReplaySource::from_packets(merged_feed(4, 60))).with_stop(handle.stop_token()),
    );
    let running = runner.spawn();
    let metrics_addr = daemon.metrics_addr().expect("metrics exporter bound");

    std::thread::sleep(Duration::from_millis(400));
    let first = scrape(metrics_addr);
    std::thread::sleep(Duration::from_millis(700));
    let second = scrape(metrics_addr);

    handle.stop();
    running.join();
    daemon.shutdown();

    for (which, body) in [("first", &first), ("second", &second)] {
        assert_wellformed(which, body);
    }
    let (c1, c2) = (counter_samples(&first), counter_samples(&second));
    assert!(
        c2["vcaml_packets_total"] > c1["vcaml_packets_total"],
        "packets counter advanced between scrapes: {} -> {}",
        c1["vcaml_packets_total"],
        c2["vcaml_packets_total"]
    );
    for (name, v1) in &c1 {
        let v2 = c2
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} vanished from the second scrape"));
        assert!(v2 >= v1, "counter {name} went backwards: {v1} -> {v2}");
    }
}

/// Structural checks over one scrape body.
fn assert_wellformed(which: &str, body: &str) {
    assert!(body.ends_with("# EOF\n"), "{which}: missing # EOF");
    let mut typed: HashMap<String, String> = HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("family kind").to_string();
            assert!(
                kind == "counter" || kind == "gauge",
                "{which}: family {name} has kind {kind}"
            );
            typed.insert(name, kind);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(value.parse::<f64>().is_ok(), "{which}: value {value:?}");
        let name = series.split('{').next().expect("sample name");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "{which}: bad family name {name:?}"
        );
        assert!(typed.contains_key(name), "{which}: {name} precedes # TYPE");
        if let Some(labels) = series.strip_prefix(name) {
            if !labels.is_empty() {
                let inner = labels
                    .strip_prefix('{')
                    .and_then(|l| l.strip_suffix('}'))
                    .unwrap_or_else(|| panic!("{which}: bad label braces {series:?}"));
                for pair in inner.split(',') {
                    let (key, val) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("{which}: bad label pair {pair:?}"));
                    assert!(
                        !key.is_empty()
                            && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    );
                    assert!(
                        val.starts_with('"') && val.ends_with('"'),
                        "{which}: {val:?}"
                    );
                }
            }
        }
        if name.ends_with("_total") {
            assert_eq!(typed[name], "counter", "{which}: {name} must be a counter");
        }
    }
}

/// `family{labels} value` samples of every counter family, keyed by the
/// full series (name + labels).
fn counter_samples(body: &str) -> HashMap<String, f64> {
    let mut counters = std::collections::HashSet::new();
    let mut out = HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some("counter")) = (parts.next(), parts.next()) {
                counters.insert(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((series, value)) = line.rsplit_once(' ') {
            let name = series.split('{').next().unwrap_or_default();
            if counters.contains(name) {
                out.insert(series.to_string(), value.parse::<f64>().unwrap_or(f64::NAN));
            }
        }
    }
    out
}

/// The Unix-socket control endpoint round-trips and cleans up its
/// socket file on shutdown.
#[cfg(unix)]
#[test]
fn unix_socket_control_round_trips_and_cleans_up() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("vcaml-daemon-test-{}.sock", std::process::id()));
    let mut runner = MonitorRunner::new(builder());
    let handle = runner.handle();
    let bus = runner.bus_handle();
    let daemon = Daemon::start(
        handle.clone(),
        bus,
        DaemonConfig::new()
            .metrics_addr("127.0.0.1:0")
            .control(ControlEndpoint::Unix(path.clone())),
    )
    .expect("daemon binds the unix socket");
    runner = runner.source(ReplaySource::from_packets(video_feed(flow_key(0), 2)));
    runner.spawn().join();

    match daemon.control_addr() {
        Some(BoundControl::Unix(bound)) => assert_eq!(bound, &path),
        other => panic!("expected unix control endpoint, got {other:?}"),
    }
    let stream = UnixStream::connect(&path).expect("connect unix control socket");
    stream
        .set_read_timeout(Some(Duration::from_secs(15)))
        .expect("set read timeout");
    let mut control = BufReader::new(stream);
    control
        .get_mut()
        .write_all(b"STATS\n")
        .expect("write STATS");
    let mut reply = String::new();
    control.read_line(&mut reply).expect("read STATS reply");
    assert!(reply.starts_with("OK {"), "unix STATS reply: {reply:?}");
    drop(control);

    daemon.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}
