//! Event-bus subscription invariants, property-tested: for **any**
//! random `EventFilter` (random kind subset × random flow subset ×
//! random min-severity × random alert bar), the events a filtered
//! subscription delivers are exactly the full stream filtered post-hoc
//! with the same predicate — same events, same order, nothing
//! duplicated, nothing invented — for all four estimation methods.

use proptest::prelude::*;
use std::sync::OnceLock;
use vcaml_suite::datasets::{inlab_corpus, CorpusConfig};
use vcaml_suite::netpkt::FlowKey;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    AlertThresholds, ChannelSink, EstimationMethod, EventFilter, EventKind, Method, MonitorBuilder,
    MonitorRunner, ReplaySource, Severity, TracePacket,
};

const FLOWS: usize = 3;

fn flow_key(n: usize) -> FlowKey {
    let client = std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 1, n as u8 + 1));
    let server = std::net::IpAddr::V4(std::net::Ipv4Addr::new(203, 0, 113, 1));
    FlowKey::canonical(server, 3478, client, 42_000 + n as u16, 17).0
}

/// One small multi-flow feed (with RTP headers, so the RTP methods see
/// real media), generated once for all 96 proptest cases.
fn feed() -> &'static Vec<(FlowKey, TracePacket)> {
    static FEED: OnceLock<Vec<(FlowKey, TracePacket)>> = OnceLock::new();
    FEED.get_or_init(|| {
        let traces = inlab_corpus(
            VcaKind::Teams,
            &CorpusConfig {
                n_calls: FLOWS,
                min_secs: 4,
                max_secs: 6,
                seed: 33,
            },
        );
        let mut feed = Vec::new();
        for (call, trace) in traces.iter().enumerate() {
            feed.extend(trace.packets.iter().map(|p| (flow_key(call), *p)));
        }
        feed.sort_by_key(|(_, p)| p.ts);
        feed
    })
}

/// Builds a filter from random masks. Bit i of `kind_mask` admits
/// `EventKind::ALL[i]`; bit j of `flow_mask` admits `flow_key(j)`;
/// `sev` of 1..=3 maps onto the three severities.
fn filter_of(kind_mask: Option<u8>, flow_mask: Option<u8>, sev: Option<Severity>) -> EventFilter {
    let mut filter = EventFilter::all();
    if let Some(mask) = kind_mask {
        filter = filter.kinds(
            EventKind::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, k)| k),
        );
    }
    if let Some(mask) = flow_mask {
        filter = filter.flows((0..FLOWS).filter(|i| mask & (1 << i) != 0).map(flow_key));
    }
    if let Some(min) = sev {
        filter = filter.min_severity(min);
    }
    filter
}

proptest! {
    #[test]
    fn filtered_subscription_equals_posthoc_filter(
        use_kinds in any::<bool>(),
        kind_mask in 0u8..32,
        use_flows in any::<bool>(),
        flow_mask in 0u8..8,
        sev_pick in 0u8..4,
        alert_pick in 0u8..3,
    ) {
        let sev = match sev_pick {
            0 => None,
            1 => Some(Severity::Info),
            2 => Some(Severity::Warning),
            _ => Some(Severity::Critical),
        };
        let alert_fps = match alert_pick {
            0 => None,
            1 => Some(18.0),
            _ => Some(1_000.0),
        };
        let filter = filter_of(
            use_kinds.then_some(kind_mask),
            use_flows.then_some(flow_mask),
            sev,
        );

        for method in Method::ALL {
            let runner = MonitorRunner::new(
                MonitorBuilder::new(VcaKind::Teams)
                    .method(EstimationMethod::Fixed(method)),
            );
            let handle = runner.handle();
            if let Some(fps) = alert_fps {
                handle.set_alert_fps(fps);
            }
            let (full_sink, full_rx) = ChannelSink::bounded(1 << 20);
            let (filtered_sink, filtered_rx) = ChannelSink::bounded(1 << 20);
            runner
                .source(ReplaySource::from_packets(feed().clone()))
                .sink(full_sink)
                .subscribe(filter.clone(), filtered_sink)
                .run();

            // Post-hoc: the full stream through the same predicate,
            // with severity classified exactly as the bus does it.
            let bar = AlertThresholds::with_fps(alert_fps.unwrap_or(f64::NEG_INFINITY)).bar();
            let want: Vec<String> = full_rx
                .try_iter()
                .filter(|e| filter.matches(e, Severity::of(e, &bar)))
                .map(|e| e.to_json_line())
                .collect();
            let got: Vec<String> = filtered_rx
                .try_iter()
                .map(|e| e.to_json_line())
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}
