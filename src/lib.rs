//! # vcaml-suite — umbrella crate
//!
//! Re-exports the whole workspace so examples and integration tests can use
//! a single dependency. See the individual crates for documentation:
//! [`netpkt`], [`rtp`], [`netem`], [`vcasim`], [`mlcore`], [`features`],
//! [`vcaml`] (the paper's contribution), and [`datasets`].

pub use vcaml;
pub use vcaml_datasets as datasets;
pub use vcaml_features as features;
pub use vcaml_mlcore as mlcore;
pub use vcaml_netem as netem;
pub use vcaml_netpkt as netpkt;
pub use vcaml_rtp as rtp;
pub use vcaml_vcasim as vcasim;
