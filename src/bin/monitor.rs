//! `monitor` — passive VCA QoE monitoring as a command-line tool.
//!
//! Reads packets from a pcap file (`--pcap <file>`) or from a synthetic
//! multi-call feed (`--synthetic <secs>`), runs them through the
//! `vcaml::api::Monitor` facade, and prints one JSON event per line:
//! flow lifecycle, per-window QoE reports, classified parse drops, and
//! `alert` lines whenever an inferred frame rate falls below the
//! threshold.
//!
//! ```sh
//! cargo run --release --bin monitor -- --synthetic 10 --calls 3
//! cargo run --release --bin monitor -- --pcap capture.pcap --vca meet
//! cargo run --release --bin monitor -- --synthetic 10 --alert-fps 24
//! # Parallel ingestion with bounded backpressure:
//! cargo run --release --bin monitor -- --synthetic 30 --calls 16 \
//!     --threads 4 --queue-cap 4096 --overflow drop-oldest
//! ```

use std::io::Write;
use std::net::{IpAddr, Ipv4Addr};
use vcaml_suite::netem::{synth_ndt_schedule, LinkConfig};
use vcaml_suite::netpkt::{PcapReader, Timestamp};
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::{
    EstimationMethod, Method, Monitor, MonitorBuilder, OverflowPolicy, QoeEvent, WindowReport,
};
use vcaml_suite::vcasim::{Session, SessionConfig, VcaProfile};

struct Args {
    pcap: Option<String>,
    synthetic_secs: Option<u32>,
    calls: usize,
    vca: VcaKind,
    method: EstimationMethod,
    window_secs: u32,
    idle_timeout_secs: i64,
    alert_fps: Option<f64>,
    flush_after: Option<u32>,
    threads: usize,
    queue_cap: Option<usize>,
    overflow: OverflowPolicy,
}

fn usage() -> ! {
    eprintln!(
        "usage: monitor (--pcap <file> | --synthetic <secs>) [options]\n\
         \n\
         options:\n\
           --calls <n>          synthetic concurrent calls (default 2)\n\
           --vca <teams|meet|webex>      (default teams)\n\
           --method <auto|auto-ml|ipudp-heuristic|ipudp-ml|rtp-heuristic|rtp-ml>\n\
                                (default auto)\n\
           --window <secs>      prediction window length (default 1)\n\
           --idle-timeout <secs> evict flows idle this long (default 60)\n\
           --flush-after <pkts> emit provisional windows after this many\n\
                                packets without a final one (default off)\n\
           --alert-fps <fps>    emit an alert line when a window's frame\n\
                                rate falls below this\n\
           --threads <n>        shard worker threads (default 1 = inline)\n\
           --queue-cap <n>      bound on the event queue and per-shard\n\
                                ingest channels, in events (default 65536)\n\
           --overflow <block|drop-oldest>\n\
                                full-queue policy: block producers, or\n\
                                drop the oldest events and report them\n\
                                with a dropped marker (default block)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        pcap: None,
        synthetic_secs: None,
        calls: 2,
        vca: VcaKind::Teams,
        method: EstimationMethod::AutoHeuristic,
        window_secs: 1,
        idle_timeout_secs: 60,
        alert_fps: None,
        flush_after: None,
        threads: 1,
        queue_cap: None,
        overflow: OverflowPolicy::Block,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--pcap" => args.pcap = Some(value()),
            "--synthetic" => {
                args.synthetic_secs = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--calls" => args.calls = value().parse().unwrap_or_else(|_| usage()),
            "--vca" => {
                args.vca = match value().as_str() {
                    "teams" => VcaKind::Teams,
                    "meet" => VcaKind::Meet,
                    "webex" => VcaKind::Webex,
                    _ => usage(),
                }
            }
            "--method" => {
                args.method = match value().as_str() {
                    "auto" => EstimationMethod::AutoHeuristic,
                    "auto-ml" => EstimationMethod::AutoMl,
                    "ipudp-heuristic" => EstimationMethod::Fixed(Method::IpUdpHeuristic),
                    "ipudp-ml" => EstimationMethod::Fixed(Method::IpUdpMl),
                    "rtp-heuristic" => EstimationMethod::Fixed(Method::RtpHeuristic),
                    "rtp-ml" => EstimationMethod::Fixed(Method::RtpMl),
                    _ => usage(),
                }
            }
            "--window" => args.window_secs = value().parse().unwrap_or_else(|_| usage()),
            "--idle-timeout" => {
                args.idle_timeout_secs = value().parse().unwrap_or_else(|_| usage())
            }
            "--alert-fps" => args.alert_fps = Some(value().parse().unwrap_or_else(|_| usage())),
            "--flush-after" => args.flush_after = Some(value().parse().unwrap_or_else(|_| usage())),
            "--threads" => args.threads = value().parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => args.queue_cap = Some(value().parse().unwrap_or_else(|_| usage())),
            "--overflow" => {
                args.overflow = match value().as_str() {
                    "block" => OverflowPolicy::Block,
                    "drop-oldest" => OverflowPolicy::DropOldest,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.pcap.is_none() == args.synthetic_secs.is_none() {
        usage();
    }
    // The builder asserts on these; fail with usage, not a panic.
    if args.window_secs == 0
        || args.flush_after == Some(0)
        || args.idle_timeout_secs <= 0
        || args.threads == 0
        || args.queue_cap == Some(0)
    {
        usage();
    }
    args
}

/// Frame rate of a report: heuristic estimate or model prediction.
/// `None` for feature-only reports (ML methods without an attached
/// model carry no rate signal, so `--alert-fps` cannot fire for them).
fn fps_of(report: &WindowReport) -> Option<f64> {
    report.estimate.map(|e| e.fps).or(report.model_fps)
}

fn print_event(out: &mut impl Write, event: &QoeEvent, alert_fps: Option<f64>) {
    writeln!(out, "{}", event.to_json_line()).expect("stdout");
    let Some(threshold) = alert_fps else { return };
    let Some(flow) = event.flow() else { return };
    // final_reports() excludes provisional (max-lag flush) snapshots,
    // which are documented lower bounds: alerting on them would flag
    // healthy flows mid-window.
    for report in event.final_reports() {
        if let Some(fps) = fps_of(report) {
            if fps < threshold {
                writeln!(
                    out,
                    "{{\"type\":\"alert\",\"flow\":\"{flow}\",\"window\":{},\"fps\":{fps:.1},\"threshold\":{threshold}}}",
                    report.window
                )
                .expect("stdout");
            }
        }
    }
}

/// Builds an interleaved synthetic feed: `calls` concurrent sessions,
/// each rewritten onto its own client address so the monitor demuxes
/// them like a real tap's mixed traffic.
fn synthetic_feed(
    vca: VcaKind,
    secs: u32,
    calls: usize,
) -> Vec<vcaml_suite::netpkt::CapturedPacket> {
    let mut feed = Vec::new();
    for call in 0..calls {
        let profile = VcaProfile::lab(vca);
        let session = Session::new(SessionConfig {
            profile: profile.clone(),
            schedule: synth_ndt_schedule(41 + call as u64, secs as usize),
            duration_secs: secs,
            seed: 1000 + call as u64,
            link: LinkConfig::default(),
        })
        .run();
        for mut cap in session.to_captured() {
            cap.datagram.dst = IpAddr::V4(Ipv4Addr::new(192, 168, 1, 100 + call as u8));
            cap.datagram.dst_port = 51_820 + call as u16;
            feed.push(cap);
        }
    }
    feed.sort_by_key(|c| c.ts);
    feed
}

fn main() {
    let args = parse_args();
    let mut builder = MonitorBuilder::new(args.vca)
        .method(args.method)
        .window_secs(args.window_secs)
        .threads(args.threads)
        .overflow(args.overflow)
        .idle_timeout(Timestamp::from_secs(args.idle_timeout_secs));
    if let Some(cap) = args.queue_cap {
        builder = builder.queue_capacity(cap);
    }
    if let Some(k) = args.flush_after {
        builder = builder.flush_after_packets(k);
    }
    let mut monitor: Monitor = builder.build();

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if let Some(path) = &args.pcap {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("monitor: cannot open {path}: {e}");
            std::process::exit(1);
        });
        let mut reader = PcapReader::new(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("monitor: {path} is not a pcap file: {e}");
            std::process::exit(1);
        });
        let link = reader.link_type();
        loop {
            match reader.next_record() {
                Ok(Some(rec)) => {
                    monitor.ingest_pcap_record(link, &rec);
                    for event in monitor.drain_events().collect::<Vec<_>>() {
                        print_event(&mut out, &event, args.alert_fps);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("monitor: read error: {e}");
                    break;
                }
            }
        }
    } else {
        let secs = args.synthetic_secs.expect("validated in parse_args");
        eprintln!(
            "monitor: synthesizing {} concurrent {} call(s), {secs} s",
            args.calls, args.vca
        );
        for cap in synthetic_feed(args.vca, secs, args.calls) {
            monitor.ingest_captured(&cap);
            for event in monitor.drain_events().collect::<Vec<_>>() {
                print_event(&mut out, &event, args.alert_fps);
            }
        }
    }

    // `stats` predates finish(), so add every finalized report finish()
    // emits (probation replays and sealed tails alike).
    let stats = monitor.stats();
    let mut finish_reports = 0usize;
    for event in monitor.finish() {
        finish_reports += event.final_reports().len();
        print_event(&mut out, &event, args.alert_fps);
    }
    out.flush().expect("stdout");
    eprintln!(
        "monitor: {} packets, {} drops, {} flows, {} window reports",
        stats.packets,
        stats.parse_drops,
        stats.flows_opened,
        stats.window_reports as usize + finish_reports
    );
}
