//! `monitor` — passive VCA QoE monitoring as a command-line tool.
//!
//! A thin shell over the crate's pluggable I/O layer and control plane:
//! the feed is a `PacketSource` (pcap file or synthetic multi-call
//! generator), the output is a composition of `EventSink` subscribers
//! (JSON lines, frame-rate alerts, end-of-run per-flow summary) on the
//! runner's event bus, and `MonitorRunner::spawn` supervises the run in
//! the background while the main thread watches it through a
//! `MonitorHandle` (periodic `--stats-every` snapshots to stderr,
//! Ctrl-C-style graceful stop readiness).
//!
//! ```sh
//! cargo run --release --bin monitor -- --synthetic 10 --calls 3
//! cargo run --release --bin monitor -- --pcap capture.pcap --vca meet
//! cargo run --release --bin monitor -- --synthetic 10 --alert-fps 24
//! # Parallel ingestion with bounded backpressure:
//! cargo run --release --bin monitor -- --synthetic 30 --calls 16 \
//!     --threads auto --queue-cap 4096 --overflow drop-oldest
//! # Alerts and a per-flow rollup only, no per-window JSON, with a live
//! # stats snapshot to stderr every 2 seconds:
//! cargo run --release --bin monitor -- --synthetic 10 --quiet \
//!     --alert-fps 24 --summary --stats-every 2
//! # Long-running service: real-time paced feed, OpenMetrics exporter,
//! # line-protocol control socket (STATS/FLUSH/EVICT/SET/SUBSCRIBE/STOP):
//! cargo run --release --bin monitor -- --synthetic 600 --pace 1 --quiet \
//!     --daemon --metrics-addr 127.0.0.1:9464 --control-socket /tmp/vcaml.sock
//! ```

use std::io::{BufWriter, Stdout, Write};
use std::sync::{Arc, Mutex};
use vcaml_suite::netpkt::Timestamp;
use vcaml_suite::rtp::VcaKind;
use vcaml_suite::vcaml::daemon::{BoundControl, ControlEndpoint, Daemon, DaemonConfig};
use vcaml_suite::vcaml::{
    AlertSink, EstimationMethod, JsonLinesSink, Method, MonitorBuilder, MonitorRunner,
    OverflowPolicy, Paced, PcapFileSource, SummarySink, SyntheticSource,
};
use vcaml_suite::vcasim::VcaProfile;

/// One block-buffered stdout shared by every sink. Subscribers run on
/// the runner's drain thread — which `spawn()` moves to the supervisor
/// thread — so the handle must be `Send`; the mutex is uncontended
/// (one drain thread) and the block buffering is what saves the
/// per-line flush.
#[derive(Clone)]
struct SharedStdout(Arc<Mutex<BufWriter<Stdout>>>);

impl SharedStdout {
    fn new() -> Self {
        SharedStdout(Arc::new(Mutex::new(BufWriter::new(std::io::stdout()))))
    }
}

impl Write for SharedStdout {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("stdout poisoned").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("stdout poisoned").flush()
    }
}

/// SIGINT/SIGTERM → graceful-stop bridge. The handler does the only
/// async-signal-safe thing — one atomic store — and the watch loop in
/// `main` turns the flag into `MonitorHandle::stop()`: ingest ports
/// stop at the next packet boundary, in-flight packets flush, flows
/// seal, and every event produced before the stop still reaches the
/// sinks (a prefix-exact run, not a torn one). Raw `signal(2)` via an
/// `extern` declaration: the workspace is dependency-free by policy,
/// so no `libc`/`signal-hook` crate.
#[cfg(unix)]
mod signal_bridge {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }

    pub fn stop_requested() -> bool {
        STOP.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod signal_bridge {
    pub fn install() {}

    pub fn stop_requested() -> bool {
        false
    }
}

struct Args {
    pcap: Option<String>,
    synthetic_secs: Option<u32>,
    calls: usize,
    vca: VcaKind,
    method: EstimationMethod,
    window_secs: u32,
    idle_timeout_secs: i64,
    alert_fps: Option<f64>,
    flush_after: Option<u32>,
    /// `None` = auto (`--threads auto`, sized from the machine).
    threads: Option<usize>,
    queue_cap: Option<usize>,
    overflow: OverflowPolicy,
    quiet: bool,
    summary: bool,
    /// Print a `MonitorHandle` stats snapshot to stderr this often.
    stats_every: Option<u64>,
    /// Run as a service: bind the metrics exporter and control socket.
    daemon: bool,
    /// Exporter bind address (daemon mode; default 127.0.0.1:9464).
    metrics_addr: Option<String>,
    /// Control socket as a Unix path (daemon mode; preferred).
    control_socket: Option<String>,
    /// Control socket as a TCP address (daemon mode fallback;
    /// default 127.0.0.1:9465 when no Unix path is given).
    control_addr: Option<String>,
    /// Replay the feed in real time at this speed multiple (e.g. 1 =
    /// wall clock, 10 = 10x). Off = as fast as possible.
    pace: Option<f64>,
}

/// One `{group, id, ns_per_iter, rate_per_sec?}` measurement from a
/// `VCAML_BENCH_JSON` trajectory file.
struct BenchEntry {
    group: String,
    id: String,
    ns: u128,
    rate: Option<f64>,
}

/// Parses a bench trajectory file. The writer (the criterion shim)
/// emits one measurement object per line, so a line-oriented field
/// extractor is exact for files it produced.
fn parse_baseline(path: &str) -> Vec<BenchEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("monitor: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.split(&format!("\"{key}\":")).nth(1)?;
        let rest = rest.trim_start();
        Some(if let Some(s) = rest.strip_prefix('"') {
            s.split('"').next().unwrap_or_default().to_string()
        } else {
            rest.split([',', '}'])
                .next()
                .unwrap_or_default()
                .to_string()
        })
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(group), Some(id), Some(ns)) = (
            field(line, "group"),
            field(line, "id"),
            field(line, "ns_per_iter"),
        ) else {
            continue;
        };
        let Ok(ns) = ns.parse::<u128>() else { continue };
        out.push(BenchEntry {
            group,
            id,
            ns,
            rate: field(line, "rate_per_sec").and_then(|r| r.parse().ok()),
        });
    }
    if out.is_empty() {
        eprintln!("monitor: no measurements in {path}");
        std::process::exit(2);
    }
    out
}

fn fmt_rate(rate: Option<f64>) -> String {
    match rate {
        Some(r) if r >= 1e9 => format!("{:.2}G/s", r / 1e9),
        Some(r) if r >= 1e6 => format!("{:.2}M/s", r / 1e6),
        Some(r) if r >= 1e3 => format!("{:.1}k/s", r / 1e3),
        Some(r) => format!("{r:.0}/s"),
        None => "-".to_string(),
    }
}

/// `--bench-summary <old> <new> [--gate g1,g2] [--max-regress pct]`:
/// pretty-prints per-benchmark ns/iter deltas between two trajectory
/// files and, when `--gate` names groups, exits nonzero if any gated
/// benchmark regressed by more than the allowance. CI runs this against
/// the committed baseline so a hot-path regression fails the build with
/// a readable table instead of a raw diff.
fn bench_summary(args: &[String]) -> ! {
    let mut files = Vec::new();
    let mut gate: Vec<String> = Vec::new();
    let mut max_regress = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => {
                let v = it.next().unwrap_or_else(|| usage());
                gate.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--max-regress" => {
                max_regress = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            f => files.push(f.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        usage();
    };
    let old = parse_baseline(old_path);
    let new = parse_baseline(new_path);

    println!(
        "{:<44} {:>14} {:>14} {:>8}  {:>10} -> {:>10}",
        "benchmark", "old ns/iter", "new ns/iter", "delta", "old rate", "new rate"
    );
    let mut offenders = Vec::new();
    for n in &new {
        let name = format!("{}/{}", n.group, n.id);
        let Some(o) = old.iter().find(|o| o.group == n.group && o.id == n.id) else {
            println!(
                "{:<44} {:>14} {:>14} {:>8}  {:>10} -> {:>10}",
                name,
                "(new)",
                n.ns,
                "-",
                "-",
                fmt_rate(n.rate)
            );
            continue;
        };
        let delta = (n.ns as f64 - o.ns as f64) / (o.ns as f64) * 100.0;
        let gated = gate.contains(&n.group);
        let flag = if gated && delta > max_regress {
            offenders.push((name.clone(), delta));
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<44} {:>14} {:>14} {:>+7.1}%  {:>10} -> {:>10}{flag}",
            name,
            o.ns,
            n.ns,
            delta,
            fmt_rate(o.rate),
            fmt_rate(n.rate)
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.group == o.group && n.id == o.id) {
            println!(
                "{:<44} {:>14} {:>14} {:>8}",
                format!("{}/{}", o.group, o.id),
                o.ns,
                "(gone)",
                "-"
            );
        }
    }
    if !offenders.is_empty() {
        eprintln!(
            "monitor: {} gated benchmark(s) regressed more than {max_regress:.0}%:",
            offenders.len()
        );
        for (name, delta) in &offenders {
            eprintln!("  {name}: +{delta:.1}% ns/iter");
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

fn usage() -> ! {
    eprintln!(
        "usage: monitor (--pcap <file> | --synthetic <secs>) [options]\n\
         \u{20}      monitor --bench-summary <old.json> <new.json>\n\
         \u{20}              [--gate <group,...>] [--max-regress <pct>]\n\
         \n\
         options:\n\
           --calls <n>          synthetic concurrent calls (default 2)\n\
           --vca <teams|meet|webex>      (default teams)\n\
           --method <auto|auto-ml|ipudp-heuristic|ipudp-ml|rtp-heuristic|rtp-ml>\n\
                                (default auto)\n\
           --window <secs>      prediction window length (default 1)\n\
           --idle-timeout <secs> evict flows idle this long (default 60)\n\
           --flush-after <pkts> emit provisional windows after this many\n\
                                packets without a final one (default off)\n\
           --alert-fps <fps>    emit an alert line when a window's frame\n\
                                rate falls below this\n\
           --threads <n|auto>   shard worker threads (default 1 = inline;\n\
                                auto = one per available core)\n\
           --queue-cap <n>      bound on the event queue and per-shard\n\
                                ingest channels, in events (default 65536)\n\
           --overflow <block|drop-oldest>\n\
                                full-queue policy: block producers, or\n\
                                drop the oldest events and report them\n\
                                with a dropped marker (default block)\n\
           --quiet              suppress per-event JSON lines (alerts and\n\
                                the summary still print)\n\
           --summary            print an end-of-run per-flow rollup table\n\
           --stats-every <secs> print a live stats snapshot (JSON, type\n\
                                \"stats\") to stderr every <secs> seconds\n\
                                while the run is supervised\n\
           --pace <speed>       replay the feed in real time at this\n\
                                speed multiple (1 = wall clock)\n\
         \n\
         daemon mode (long-running service):\n\
           --daemon             bind the operational surface: an\n\
                                OpenMetrics exporter and a line-protocol\n\
                                control socket (STATS/FLUSH/EVICT/SET/\n\
                                SUBSCRIBE/STOP); exits nonzero if a\n\
                                worker dies\n\
           --metrics-addr <a>   exporter bind address\n\
                                (default 127.0.0.1:9464)\n\
           --control-socket <p> control socket as a Unix path (preferred)\n\
           --control-addr <a>   control socket as a TCP address\n\
                                (default 127.0.0.1:9465 when no Unix\n\
                                path is given)\n\
         \n\
         accuracy (as opposed to perf) regressions are gated by the\n\
         impairment-grid harness: see `vcaml-scenario --help`"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        pcap: None,
        synthetic_secs: None,
        calls: 2,
        vca: VcaKind::Teams,
        method: EstimationMethod::AutoHeuristic,
        window_secs: 1,
        idle_timeout_secs: 60,
        alert_fps: None,
        flush_after: None,
        threads: Some(1),
        queue_cap: None,
        overflow: OverflowPolicy::Block,
        quiet: false,
        summary: false,
        stats_every: None,
        daemon: false,
        metrics_addr: None,
        control_socket: None,
        control_addr: None,
        pace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--pcap" => args.pcap = Some(value()),
            "--synthetic" => {
                args.synthetic_secs = Some(value().parse().unwrap_or_else(|_| usage()))
            }
            "--calls" => args.calls = value().parse().unwrap_or_else(|_| usage()),
            "--vca" => {
                args.vca = match value().as_str() {
                    "teams" => VcaKind::Teams,
                    "meet" => VcaKind::Meet,
                    "webex" => VcaKind::Webex,
                    _ => usage(),
                }
            }
            "--method" => {
                args.method = match value().as_str() {
                    "auto" => EstimationMethod::AutoHeuristic,
                    "auto-ml" => EstimationMethod::AutoMl,
                    "ipudp-heuristic" => EstimationMethod::Fixed(Method::IpUdpHeuristic),
                    "ipudp-ml" => EstimationMethod::Fixed(Method::IpUdpMl),
                    "rtp-heuristic" => EstimationMethod::Fixed(Method::RtpHeuristic),
                    "rtp-ml" => EstimationMethod::Fixed(Method::RtpMl),
                    _ => usage(),
                }
            }
            "--window" => args.window_secs = value().parse().unwrap_or_else(|_| usage()),
            "--idle-timeout" => {
                args.idle_timeout_secs = value().parse().unwrap_or_else(|_| usage())
            }
            "--alert-fps" => args.alert_fps = Some(value().parse().unwrap_or_else(|_| usage())),
            "--flush-after" => args.flush_after = Some(value().parse().unwrap_or_else(|_| usage())),
            "--threads" => {
                args.threads = match value().as_str() {
                    "auto" => None,
                    n => Some(n.parse().unwrap_or_else(|_| usage())),
                }
            }
            "--queue-cap" => args.queue_cap = Some(value().parse().unwrap_or_else(|_| usage())),
            "--overflow" => {
                args.overflow = match value().as_str() {
                    "block" => OverflowPolicy::Block,
                    "drop-oldest" => OverflowPolicy::DropOldest,
                    _ => usage(),
                }
            }
            "--stats-every" => args.stats_every = Some(value().parse().unwrap_or_else(|_| usage())),
            "--daemon" => args.daemon = true,
            "--metrics-addr" => args.metrics_addr = Some(value()),
            "--control-socket" => args.control_socket = Some(value()),
            "--control-addr" => args.control_addr = Some(value()),
            "--pace" => args.pace = Some(value().parse().unwrap_or_else(|_| usage())),
            "--quiet" => args.quiet = true,
            "--summary" => args.summary = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.pcap.is_none() == args.synthetic_secs.is_none() {
        usage();
    }
    // The builder asserts on these; fail with usage, not a panic.
    if args.window_secs == 0
        || args.flush_after == Some(0)
        || args.idle_timeout_secs <= 0
        || args.threads == Some(0)
        || args.queue_cap == Some(0)
        || args.stats_every == Some(0)
        || args.pace.is_some_and(|p| !p.is_finite() || p <= 0.0)
    {
        usage();
    }
    // The endpoint flags only mean something in daemon mode.
    if !args.daemon
        && (args.metrics_addr.is_some()
            || args.control_socket.is_some()
            || args.control_addr.is_some())
    {
        usage();
    }
    args
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--bench-summary") {
        bench_summary(&raw[1..]);
    }
    let args = parse_args();
    let mut builder = MonitorBuilder::new(args.vca)
        .method(args.method)
        .window_secs(args.window_secs)
        .threads(args.threads.unwrap_or(0)) // 0 = auto-size from cores
        .overflow(args.overflow)
        .idle_timeout(Timestamp::from_secs(args.idle_timeout_secs));
    if let Some(cap) = args.queue_cap {
        builder = builder.queue_capacity(cap);
    }
    if let Some(k) = args.flush_after {
        builder = builder.flush_after_packets(k);
    }

    // The output is a subscriber composition on the runner's event bus:
    // per-event JSON lines (unless --quiet), threshold alerts, and the
    // end-of-run rollup, all observing one shared event stream in order
    // through one buffered stdout.
    // Catch SIGINT/SIGTERM before any heavy setup (a long synthetic
    // feed is simulated eagerly in the source constructor): a Ctrl-C
    // during setup is then honored at the first watch-loop poll instead
    // of killing the process mid-build.
    signal_bridge::install();
    let out = SharedStdout::new();
    let mut runner = MonitorRunner::new(builder);
    let handle = runner.handle();
    if !args.quiet {
        runner = runner.sink(JsonLinesSink::new(out.clone()));
    }
    if let Some(threshold) = args.alert_fps {
        // The bar lives in the monitor's shared thresholds, so a future
        // control surface can retune it mid-run through the handle.
        handle.set_alert_fps(threshold);
        runner = runner.sink(AlertSink::with_thresholds(
            out.clone(),
            handle.alert_thresholds(),
        ));
    }
    if args.summary {
        runner = runner.sink(SummarySink::new(out.clone()));
    }

    // The feed is a packet source: a pcap capture or synthetic calls,
    // optionally paced to the wall clock (daemon deployments want a
    // live-shaped feed, not a burst).
    if let Some(path) = &args.pcap {
        let source = PcapFileSource::open(path).unwrap_or_else(|e| {
            eprintln!("monitor: cannot read {path}: {e}");
            std::process::exit(1);
        });
        runner = match args.pace {
            Some(speed) => {
                runner.source(Paced::with_speed(source, speed).with_stop(handle.stop_token()))
            }
            None => runner.source(source),
        };
    } else {
        let secs = args.synthetic_secs.expect("validated in parse_args");
        eprintln!(
            "monitor: synthesizing {} concurrent {} call(s), {secs} s",
            args.calls, args.vca
        );
        let source = SyntheticSource::new(args.vca, secs, args.calls, 41);
        runner = match args.pace {
            Some(speed) => {
                runner.source(Paced::with_speed(source, speed).with_stop(handle.stop_token()))
            }
            None => runner.source(source),
        };
    }

    // Daemon mode: bind the operational surface before the run starts,
    // so the first scrape can't race the bind. The bus handle must be
    // taken pre-spawn (SUBSCRIBE attaches live subscribers through it).
    let daemon = if args.daemon {
        let mut config = DaemonConfig::new()
            .ladder(VcaProfile::lab(args.vca))
            .metrics_addr(args.metrics_addr.as_deref().unwrap_or("127.0.0.1:9464"));
        config = match (&args.control_socket, &args.control_addr) {
            (Some(path), _) => config.control(ControlEndpoint::Unix(path.into())),
            (None, Some(addr)) => config.control(ControlEndpoint::Tcp(addr.clone())),
            (None, None) => config.control(ControlEndpoint::Tcp("127.0.0.1:9465".into())),
        };
        let daemon =
            Daemon::start(handle.clone(), runner.bus_handle(), config).unwrap_or_else(|e| {
                eprintln!("monitor: cannot bind daemon servers: {e}");
                std::process::exit(1);
            });
        if let Some(addr) = daemon.metrics_addr() {
            eprintln!("monitor: metrics on http://{addr}/metrics");
        }
        match daemon.control_addr() {
            Some(BoundControl::Unix(path)) => {
                eprintln!("monitor: control socket on {}", path.display())
            }
            Some(BoundControl::Tcp(addr)) => eprintln!("monitor: control socket on {addr}"),
            None => {}
        }
        Some(daemon)
    } else {
        None
    };

    // Supervised background run: the pipeline lives on its own thread,
    // this one watches it through the handle — periodic stats snapshots
    // and the SIGINT/SIGTERM graceful stop.
    let running = runner.spawn();
    let interval = args.stats_every.map(std::time::Duration::from_secs);
    if interval.is_some() {
        // First snapshot immediately (short runs still get one), then
        // one every interval until the run winds down.
        eprintln!("{}", handle.stats_snapshot().to_json_line());
    }
    let mut next = interval.map(|iv| std::time::Instant::now() + iv);
    let mut stop_sent = false;
    while !running.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        if signal_bridge::stop_requested() && !stop_sent {
            eprintln!("monitor: stop requested — sealing flows and draining the bus");
            handle.stop();
            stop_sent = true;
        }
        if let (Some(iv), Some(n)) = (interval, next.as_mut()) {
            if std::time::Instant::now() >= *n {
                eprintln!("{}", handle.stats_snapshot().to_json_line());
                *n += iv;
            }
        }
    }
    // Supervision: a worker death surfaces as a supervisor panic on
    // join. In daemon mode that must be a nonzero exit the init system
    // can restart on — not a silent unwind.
    let report = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| running.join())) {
        Ok(report) => report,
        Err(_) => {
            eprintln!("monitor: a pipeline worker died — exiting for supervision");
            if let Some(daemon) = daemon {
                daemon.shutdown();
            }
            std::process::exit(3);
        }
    };
    if let Some(daemon) = daemon {
        daemon.shutdown();
    }
    for (i, src) in report.sources.iter().enumerate() {
        if let Some(err) = &src.error {
            eprintln!("monitor: source {i} read error: {err}");
        }
    }
    let stats = &report.stats;
    eprintln!(
        "monitor: {} packets, {} drops, {} flows, {} window reports, {} events shed",
        stats.packets,
        stats.parse_drops,
        stats.flows_opened,
        stats.window_reports,
        stats.events_dropped
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_reads_shim_output() {
        let dir = std::env::temp_dir().join("vcaml_bench_summary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(
            &path,
            "{\n\"cores\": 1,\n\"measurements\": [\n  \
             {\"group\":\"hot_path\",\"id\":\"alloc_free_engine\",\"ns_per_iter\":123,\
             \"rate_per_sec\":4567.8,\"rate_unit\":\"elements\"},\n  \
             {\"group\":\"random_forest\",\"id\":\"predict_one_window\",\"ns_per_iter\":554}\n]\n}\n",
        )
        .unwrap();
        let entries = parse_baseline(path.to_str().unwrap());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].group, "hot_path");
        assert_eq!(entries[0].id, "alloc_free_engine");
        assert_eq!(entries[0].ns, 123);
        assert_eq!(entries[0].rate, Some(4567.8));
        assert_eq!(entries[1].ns, 554);
        assert_eq!(entries[1].rate, None);
    }

    #[test]
    fn rate_formatting_scales_units() {
        assert_eq!(fmt_rate(Some(29.1e9)), "29.10G/s");
        assert_eq!(fmt_rate(Some(1_847_081.0)), "1.85M/s");
        assert_eq!(fmt_rate(Some(4_567.8)), "4.6k/s");
        assert_eq!(fmt_rate(Some(12.0)), "12/s");
        assert_eq!(fmt_rate(None), "-");
    }
}
