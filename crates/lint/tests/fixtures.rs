//! Golden-finding tests against the seeded fixture corpus, plus the
//! meta-test that keeps the live workspace lint-clean.
//!
//! The fixture tree (`tests/fixtures/tree/`) is a miniature workspace
//! with one violation seeded per `// FINDING` comment and a set of
//! adversarial *clean* files (banned names inside strings, comments,
//! char literals, raw identifiers). The golden set below is the exact
//! `(rule, file, line)` inventory; any drift — a missed seed or a new
//! false positive — fails loudly with a diff.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use vcaml_lint::report::{Severity, Verdict};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root, two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

/// Every seeded violation in the fixture tree, and nothing else.
const GOLDEN: &[(&str, &str, u32)] = &[
    ("annotation-grammar", "crates/demo/src/annotations.rs", 4),
    ("no-unwrap-in-lib", "crates/demo/src/annotations.rs", 4),
    ("annotation-grammar", "crates/demo/src/annotations.rs", 7),
    ("exhaustive-events", "crates/demo/src/events.rs", 16),
    ("exhaustive-events", "crates/demo/src/events.rs", 23),
    ("exhaustive-events", "crates/demo/src/events.rs", 56),
    ("hot-path-alloc", "crates/demo/src/hot.rs", 5),
    ("hot-path-alloc", "crates/demo/src/hot.rs", 6),
    ("hot-path-alloc", "crates/demo/src/hot.rs", 7),
    ("stability-surface", "crates/demo/src/lib.rs", 15),
    ("stability-surface", "crates/demo/src/lib.rs", 16),
    ("lock-order-cycle", "crates/demo/src/lockgraph.rs", 17),
    ("lock-order-cycle", "crates/demo/src/lockgraph.rs", 36),
    (
        "lock-discipline-transitive",
        "crates/demo/src/lockgraph.rs",
        52,
    ),
    ("lock-discipline", "crates/demo/src/locks.rs", 8),
    ("lock-discipline", "crates/demo/src/locks.rs", 13),
    ("panic-path", "crates/demo/src/panics.rs", 8),
    ("no-unwrap-in-lib", "crates/demo/src/panics.rs", 13),
    ("no-unwrap-in-lib", "crates/demo/src/panics.rs", 18),
    ("panic-path", "crates/demo/src/panics.rs", 18),
    (
        "hot-path-alloc-transitive",
        "crates/demo/src/transitive.rs",
        7,
    ),
    (
        "hot-path-alloc-transitive",
        "crates/demo/src/transitive.rs",
        8,
    ),
    ("no-unwrap-in-lib", "crates/demo/src/unwraps.rs", 5),
    ("no-unwrap-in-lib", "crates/demo/src/unwraps.rs", 9),
    ("no-unwrap-in-lib", "crates/demo/src/unwraps.rs", 14),
];

/// Exact witness chains for every finding that carries one. The
/// interprocedural goldens are `(rule, file, line, chain)`-exact: a
/// resolver regression that still lands on the right line but walks
/// the wrong path fails here.
const GOLDEN_CHAINS: &[(&str, &str, u32, &[&str])] = &[
    (
        "lock-order-cycle",
        "crates/demo/src/lockgraph.rs",
        17,
        &[
            "`Shards::map` → `Shards::stats` (crates/demo/src/lockgraph.rs:17, in `Shards::forward`)",
            "`Shards::stats` → `Shards::map` (crates/demo/src/lockgraph.rs:23, in `Shards::reverse`)",
        ],
    ),
    (
        "lock-order-cycle",
        "crates/demo/src/lockgraph.rs",
        36,
        &[
            "`OneFn::x` → `OneFn::y` (crates/demo/src/lockgraph.rs:36, in `OneFn::zigzag`)",
            "`OneFn::y` → `OneFn::x` (crates/demo/src/lockgraph.rs:40, in `OneFn::zigzag`)",
        ],
    ),
    (
        "lock-discipline-transitive",
        "crates/demo/src/lockgraph.rs",
        52,
        &[
            "Pump::pump (crates/demo/src/lockgraph.rs:52)",
            "Pump::drain (crates/demo/src/lockgraph.rs:57)",
            "`.recv()` (crates/demo/src/lockgraph.rs:57)",
        ],
    ),
    (
        "panic-path",
        "crates/demo/src/panics.rs",
        8,
        &[
            "hot_parse (crates/demo/src/panics.rs:8)",
            "decode (crates/demo/src/panics.rs:13)",
            "`.unwrap()` (crates/demo/src/panics.rs:13)",
        ],
    ),
    (
        "panic-path",
        "crates/demo/src/panics.rs",
        18,
        &[
            "hot_local_panic (crates/demo/src/panics.rs:18)",
            "`.expect()` (crates/demo/src/panics.rs:18)",
        ],
    ),
    (
        "hot-path-alloc-transitive",
        "crates/demo/src/transitive.rs",
        7,
        &[
            "hot_root (crates/demo/src/transitive.rs:7)",
            "snapshot (crates/demo/src/transitive.rs:13)",
            "`.to_vec()` (crates/demo/src/transitive.rs:13)",
        ],
    ),
    (
        "hot-path-alloc-transitive",
        "crates/demo/src/transitive.rs",
        8,
        &[
            "hot_root (crates/demo/src/transitive.rs:8)",
            "deep_entry (crates/demo/src/transitive.rs:18)",
            "deep_leaf (crates/demo/src/transitive.rs:22)",
            "`format!` (crates/demo/src/transitive.rs:22)",
        ],
    ),
];

#[test]
fn fixture_corpus_matches_golden_findings() {
    let report = vcaml_lint::analyze(&fixture_root(), &[]).expect("fixture tree analyzes");
    let got: BTreeSet<(String, String, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.file.clone(), f.line))
        .collect();
    let want: BTreeSet<(String, String, u32)> = GOLDEN
        .iter()
        .map(|(r, f, l)| (r.to_string(), f.to_string(), *l))
        .collect();

    let missing: Vec<_> = want.difference(&got).collect();
    let unexpected: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "golden drift\n  missing (seeded but not found): {missing:#?}\n  \
         unexpected (found but not seeded): {unexpected:#?}"
    );
    // No dedup surprises: each (rule, file, line) fires exactly once.
    assert_eq!(report.findings.len(), GOLDEN.len());
    assert_eq!(report.verdict(), Verdict::Dirty);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn golden_chains_are_exact() {
    let report = vcaml_lint::analyze(&fixture_root(), &[]).expect("fixture tree analyzes");
    for (rule, file, line, chain) in GOLDEN_CHAINS {
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == *rule && f.file == *file && f.line == *line)
            .unwrap_or_else(|| panic!("missing golden finding {rule} {file}:{line}"));
        assert_eq!(
            f.chain, *chain,
            "witness chain drift for {rule} {file}:{line}"
        );
    }
    // Everything else is a purely local finding: no chain.
    for f in &report.findings {
        if !GOLDEN_CHAINS
            .iter()
            .any(|(r, p, l, _)| f.rule == *r && f.file == *p && f.line == *l)
        {
            assert!(
                f.chain.is_empty(),
                "unexpected chain on local finding {} {}:{}",
                f.rule,
                f.file,
                f.line
            );
        }
    }
}

/// The acceptance bar from the issue: the two-function lock inversion
/// (`Shards::forward` vs `Shards::reverse`) is detected *and* the
/// single-function inversion (`OneFn::zigzag`) still is.
#[test]
fn lock_inversion_found_across_and_within_functions() {
    let only = ["lock-order-cycle".to_string()];
    let report = vcaml_lint::analyze(&fixture_root(), &only).expect("fixture tree analyzes");
    let cross = report.findings.iter().any(|f| {
        f.line == 17
            && f.message.contains("Shards::forward")
            && f.message.contains("Shards::reverse")
    });
    let single = report
        .findings
        .iter()
        .any(|f| f.line == 36 && f.message.contains("OneFn::zigzag"));
    assert!(cross, "two-function inversion not detected");
    assert!(single, "single-function inversion regressed");
}

#[test]
fn fixture_severities_are_typed() {
    let report = vcaml_lint::analyze(&fixture_root(), &[]).expect("fixture tree analyzes");
    for f in &report.findings {
        let want = if f.rule == "no-unwrap-in-lib" {
            Severity::Warning
        } else {
            Severity::Error
        };
        assert_eq!(
            f.severity, want,
            "severity of {} at {}:{}",
            f.rule, f.file, f.line
        );
    }
}

#[test]
fn adversarial_clean_files_stay_clean() {
    // noise.rs packs every banned name into strings, raw strings,
    // comments, and char literals; the clean halves of the seeded
    // files exercise justified allows, condvar handoff, dropped
    // guards, and exhaustive matches. None may fire.
    let report = vcaml_lint::analyze(&fixture_root(), &[]).expect("fixture tree analyzes");
    let clean_files = ["noise.rs"];
    for f in &report.findings {
        assert!(
            !clean_files.iter().any(|c| f.file.ends_with(c)),
            "false positive in adversarial clean file: {} at {}:{} — {}",
            f.rule,
            f.file,
            f.line,
            f.message
        );
    }
}

#[test]
fn rule_selection_filters_findings() {
    let only = ["hot-path-alloc".to_string()];
    let report = vcaml_lint::analyze(&fixture_root(), &only).expect("fixture tree analyzes");
    assert!(!report.findings.is_empty());
    assert!(report.findings.iter().all(|f| f.rule == "hot-path-alloc"));
    assert_eq!(report.rules, only);
}

#[test]
fn json_report_round_trips_the_findings() {
    let report = vcaml_lint::analyze(&fixture_root(), &[]).expect("fixture tree analyzes");
    let json = report.to_json();
    // Structural spot-checks without a JSON parser: verdict, counts,
    // and one known finding are present verbatim.
    assert!(json.contains("\"verdict\": \"DIRTY\""));
    assert!(json.contains(&format!("\"total_findings\": {}", GOLDEN.len())));
    assert!(json.contains("\"rule\": \"lock-discipline\""));
    assert!(json.contains("crates/demo/src/locks.rs"));
}

/// The meta-test: the live workspace itself must be lint-clean. This
/// is the same gate CI runs via the binary; keeping it in `cargo test`
/// means a hot-path regression fails the suite even without CI.
#[test]
fn live_tree_is_lint_clean() {
    let root = workspace_root();
    let report = vcaml_lint::analyze(&root, &[]).expect("live tree analyzes");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    let table: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{} {}:{} — {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        report.findings.is_empty(),
        "live tree has lint findings:\n{}",
        table.join("\n")
    );
    assert_eq!(report.verdict(), Verdict::Clean);
}
