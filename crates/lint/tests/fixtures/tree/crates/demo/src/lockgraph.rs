//! Seeded `lock-order-cycle` and `lock-discipline-transitive`
//! violations: an inversion split across two functions, the same
//! inversion within one function, and a blocking call reached through
//! a callee while a guard is held — plus consistent-order clean code.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Shards {
    map: Mutex<u32>,
    stats: Mutex<u32>,
}

impl Shards {
    pub fn forward(&self) {
        let a = self.map.lock().ok();
        let b = self.stats.lock().ok(); // FINDING: cycle anchor (map → stats here, stats → map in reverse)
        let _ = (a, b);
    }

    pub fn reverse(&self) {
        let b = self.stats.lock().ok();
        let a = self.map.lock().ok();
        let _ = (a, b);
    }
}

pub struct OneFn {
    x: Mutex<u32>,
    y: Mutex<u32>,
}

impl OneFn {
    pub fn zigzag(&self) {
        let g1 = self.x.lock().ok();
        let g2 = self.y.lock().ok(); // FINDING: cycle anchor (x → y here, y → x below)
        drop(g2);
        drop(g1);
        let h1 = self.y.lock().ok();
        let h2 = self.x.lock().ok();
        let _ = (h1, h2);
    }
}

pub struct Pump {
    q: Mutex<u32>,
}

impl Pump {
    pub fn pump(&self, rx: &Receiver<u32>) {
        let g = self.q.lock().ok();
        self.drain(rx); // FINDING: callee blocks on recv while `Pump::q` is held
        let _ = g;
    }

    fn drain(&self, rx: &Receiver<u32>) {
        let _ = rx.recv();
    }

    pub fn pump_released(&self, rx: &Receiver<u32>) {
        let g = self.q.lock().ok();
        drop(g);
        self.drain(rx); // clean: guard dropped before the call
    }
}

pub struct Ordered {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Ordered {
    pub fn one(&self) {
        let g = self.a.lock().ok();
        let h = self.b.lock().ok(); // clean: globally consistent a → b order
        let _ = (g, h);
    }

    pub fn two(&self) {
        let g = self.a.lock().ok();
        let h = self.b.lock().ok();
        let _ = (g, h);
    }
}
