//! Fixture machine room.
//!
//! **Stability: unstable internals.** Everything here may change
//! between minor versions.

/// Public but unstable: must not leak through the crate root.
pub struct FlowTable;

/// Deliberately blessed re-export.
///
/// Stability: stable — part of the supported API surface.
pub struct EngineConfig;

/// Also unstable; re-exported under a rename.
pub struct ReplayHarness;
