//! Seeded `hot-path-alloc` violations and allowed/cold counterparts.

// lint: hot_path
pub fn hot_allocates(out: &mut Vec<u32>) {
    let v: Vec<u32> = Vec::new(); // FINDING: Vec::new
    let s = format!("x{}", out.len()); // FINDING: format!
    let c: Vec<u32> = out.iter().copied().collect(); // FINDING: .collect()
    out.push(v.len() as u32 + s.len() as u32 + c.len() as u32);
}

// lint: hot_path
pub fn hot_with_justified_allow(map: &mut std::collections::HashMap<u32, u32>) {
    // lint: allow(hot-path-alloc) -- capacity warmed during setup
    map.insert(1, 2);
}

pub fn cold_may_allocate() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}
