//! Adversarial clean file: every banned name appears here — inside
//! string literals, raw strings, comments, and char/lifetime
//! positions — and none of it may produce a finding.

// A comment full of trouble: x.unwrap() panic!("no") Vec::new()
// format!("{}", 1) _ => QoeEvent::Dropped .collect() .to_string()

/* Block comment, /* nested */, still hiding: g = m.lock().unwrap();
   tx.send(v) while guard is live — text, not code. */

pub fn strings_are_not_code() -> usize {
    let a = "x.unwrap() and panic!(\"boom\") in a plain string";
    let b = r#"raw string: match e { QoeEvent::FlowOpened { .. } => 1, _ => 0 }"#;
    let c = r##"raw with hashes: "# not the end: .to_vec() "##;
    let d = b"byte string with .expect(\"x\") inside";
    a.len() + b.len() + c.len() + d.len()
}

pub fn chars_and_lifetimes<'a>(x: &'a [u8]) -> (char, &'a [u8]) {
    let quote = '"'; // a char literal that looks like a string start
    let escaped = '\''; // escaped quote char
    let brace = '{';
    let _ = (escaped, brace);
    (quote, x)
}

pub fn raw_identifiers() -> u32 {
    let r#fn = 1u32; // raw ident: must not confuse the fn scanner
    let r#match = 2u32;
    r#fn + r#match
}

// The next line is inside a string, so it must NOT mark anything hot:
pub const DOC: &str = "// lint: hot_path";

pub fn allocates_freely_because_not_hot() -> String {
    let v: Vec<u8> = Vec::with_capacity(8);
    format!("{}B", v.capacity())
}
