//! Seeded `panic-path` violations: a hot root reaching `.unwrap()`
//! through a helper (the warning upgrades to an error once a hot path
//! can hit it), a panic site inside the hot fn itself, and an allowed
//! site that must not propagate.

// lint: hot_path
pub fn hot_parse(x: Option<u32>) -> u32 {
    let v = decode(x); // FINDING: panic reachable via decode
    v + 1
}

fn decode(x: Option<u32>) -> u32 {
    x.unwrap() // FINDING: no-unwrap-in-lib (warning, and the transitive source)
}

// lint: hot_path
pub fn hot_local_panic(x: Option<u32>) -> u32 {
    x.expect("set") // FINDING: no-unwrap-in-lib + panic-path upgrade in hot fn
}

fn vetted(x: Option<u32>) -> u32 {
    // lint: allow(no-unwrap-in-lib) -- input validated at construction
    x.unwrap()
}

// lint: hot_path
pub fn hot_calling_vetted(x: Option<u32>) -> u32 {
    vetted(x) // clean: the panic fact is allowed at its site
}
