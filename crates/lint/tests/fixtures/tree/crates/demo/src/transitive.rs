//! Seeded `hot-path-alloc-transitive` violations: hot roots that are
//! locally allocation-free but reach an allocation through callees,
//! plus the per-edge allow and a site-level allow that kills the fact.

// lint: hot_path
pub fn hot_root(out: &mut Vec<u32>) {
    let n = snapshot(out); // FINDING: one-hop chain via snapshot
    deep_entry(out); // FINDING: two-hop chain via deep_entry → deep_leaf
    out.push(n);
}

fn snapshot(out: &[u32]) -> u32 {
    let copy = out.to_vec();
    copy.len() as u32
}

fn deep_entry(out: &mut Vec<u32>) {
    deep_leaf(out);
}

fn deep_leaf(out: &mut Vec<u32>) {
    let s = format!("{}", out.len());
    let _ = s;
}

// lint: hot_path
pub fn hot_with_edge_allow(out: &mut Vec<u32>) {
    // lint: allow(hot-path-alloc-transitive) -- snapshot runs per-window, not per-packet
    let n = snapshot(out);
    out.push(n);
}

// lint: hot_path
pub fn hot_calling_clean_helper(out: &mut Vec<u32>) {
    let n = count_only(out); // clean: callee never allocates
    out.push(n);
}

fn count_only(out: &[u32]) -> u32 {
    out.len() as u32
}

fn site_allowed_helper(out: &[u32]) -> u32 {
    // lint: allow(hot-path-alloc) -- scratch buffer reused from a pool upstream
    let copy = out.to_vec();
    copy.len() as u32
}

// lint: hot_path
pub fn hot_calling_site_allowed(out: &mut Vec<u32>) {
    let n = site_allowed_helper(out); // clean: the allocation fact is allowed at its site
    out.push(n);
}
