//! Seeded `exhaustive-events` violations and clean counterparts.

pub enum QoeEvent {
    FlowOpened { id: u32 },
    Dropped { n: u32 },
}

pub enum Other {
    A,
    B,
}

pub fn wildcard_over_event(e: &QoeEvent) -> u32 {
    match e {
        QoeEvent::FlowOpened { id } => *id,
        _ => 0, // FINDING: wildcard over event enum
    }
}

pub fn wildcard_with_guard(e: &QoeEvent, x: u32) -> u32 {
    match e {
        QoeEvent::Dropped { n } => *n,
        _ if x > 0 => x, // FINDING: guarded wildcard still a wildcard
        QoeEvent::FlowOpened { .. } => 0,
    }
}

pub fn exhaustive_is_clean(e: &QoeEvent) -> u32 {
    match e {
        QoeEvent::FlowOpened { id } => *id,
        QoeEvent::Dropped { n } => *n,
    }
}

pub fn other_enum_wildcard_is_fine(o: &Other) -> u32 {
    match o {
        Other::A => 1,
        _ => 2, // clean: not an event enum
    }
}

pub enum Verdict {
    Pass,
    Degraded,
    Fail,
}

pub enum Perturbation {
    Loss { pct: f64 },
    Delay { ms: u64 },
}

pub fn wildcard_over_verdict(v: &Verdict) -> u32 {
    match v {
        Verdict::Pass => 1,
        _ => 0, // FINDING: Verdict is an event enum now
    }
}

pub fn exhaustive_perturbation(p: &Perturbation) -> f64 {
    match p {
        Perturbation::Loss { pct } => *pct,
        Perturbation::Delay { ms } => *ms as f64, // clean: exhaustive
    }
}
