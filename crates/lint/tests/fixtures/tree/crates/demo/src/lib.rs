//! Fixture crate root: `stability-surface` seeded violations.

pub mod annotations;
pub mod engine;
pub mod events;
pub mod hot;
pub mod lockgraph;
pub mod locks;
pub mod noise;
pub mod panics;
pub mod transitive;
pub mod unwraps;

pub use engine::EngineConfig; // clean: marked `Stability: stable`
pub use engine::FlowTable; // FINDING: unstable item re-exported
pub use engine::ReplayHarness as Harness; // FINDING: rename does not launder stability
