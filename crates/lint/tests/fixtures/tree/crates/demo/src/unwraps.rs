//! Seeded `no-unwrap-in-lib` violations, a justified allow, and
//! test-region code the rule must skip.

pub fn unwrap_in_lib(x: Option<u32>) -> u32 {
    x.unwrap() // FINDING: unwrap
}

pub fn expect_in_lib(x: Option<u32>) -> u32 {
    x.expect("set by caller") // FINDING: expect
}

pub fn panic_in_lib(x: u32) {
    if x == 0 {
        panic!("zero"); // FINDING: panic!
    }
}

pub fn justified(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned") // lint: allow(no-unwrap-in-lib) -- poisoned lock means a peer already panicked
}

pub fn not_the_same_name(x: Option<u32>) -> u32 {
    x.unwrap_or(0) // clean: unwrap_or is not unwrap
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1); // clean: test region
    }
}
