//! Seeded `lock-discipline` violations and clean counterparts.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Condvar, Mutex};

pub fn guard_across_send(m: &Mutex<u32>, tx: &Sender<u32>) {
    let Ok(g) = m.lock() else { return };
    tx.send(*g).ok(); // FINDING: send while `g` live
}

pub fn guard_across_recv_in_let(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock().ok();
    let v = rx.recv(); // FINDING: recv while `g` live
    let _ = (g, v);
}

pub fn guard_dropped_first(m: &Mutex<u32>, tx: &Sender<u32>) {
    let Ok(g) = m.lock() else { return };
    let v = *g;
    drop(g);
    tx.send(v).ok(); // clean: guard dropped
}

pub fn guard_scope_ends(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let Ok(g) = m.lock() else { return };
        *g
    };
    tx.send(v).ok(); // clean: guard scope closed
}

pub fn condvar_handoff(pair: &(Mutex<bool>, Condvar)) {
    let (m, cvar) = &*pair;
    let Ok(mut g) = m.lock() else { return };
    while !*g {
        // clean: wait(g) atomically releases the named guard
        g = match cvar.wait(g) {
            Ok(v) => v,
            Err(_) => return,
        };
    }
}
