//! Seeded `annotation-grammar` violations.

pub fn reasonless_allow(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(no-unwrap-in-lib)
}

// lint: allot(typo-directive) -- close but not a directive
pub fn typoed_directive() {}
