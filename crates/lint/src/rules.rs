//! The rule engine: five repo-grounded rules over [`FileModel`]s, plus
//! the `annotation-grammar` meta-rule. Each rule is a pure function
//! from model(s) to [`Finding`]s; suppression via
//! `// lint: allow(<rule>) -- <reason>` is resolved here.

use crate::lexer::{TokKind, Token};
use crate::model::{match_brace, FileModel, FileRole};
use crate::report::{Finding, Severity};

/// Names of all rules, in report order.
pub const ALL_RULES: &[&str] = &[
    "hot-path-alloc",
    "lock-discipline",
    "no-unwrap-in-lib",
    "exhaustive-events",
    "stability-surface",
    "annotation-grammar",
];

/// Runs every (selected) rule over the file set.
pub fn run_all(files: &[FileModel], selected: &[String]) -> Vec<Finding> {
    let on = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut findings = Vec::new();
    for f in files {
        if on("hot-path-alloc") {
            hot_path_alloc(f, &mut findings);
        }
        if on("lock-discipline") {
            lock_discipline(f, &mut findings);
        }
        if on("no-unwrap-in-lib") {
            no_unwrap_in_lib(f, &mut findings);
        }
        if on("exhaustive-events") {
            exhaustive_events(f, &mut findings);
        }
        if on("annotation-grammar") {
            annotation_grammar(f, &mut findings);
        }
    }
    if on("stability-surface") {
        stability_surface(files, &mut findings);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn emit(out: &mut Vec<Finding>, f: &FileModel, rule: &'static str, line: u32, message: String) {
    if f.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        severity: severity_of(rule),
        file: f.path.clone(),
        line,
        message,
        snippet: f.snippet(line),
    });
}

fn severity_of(rule: &str) -> Severity {
    match rule {
        "no-unwrap-in-lib" => Severity::Warning,
        _ => Severity::Error,
    }
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// Allocating (or allocation-prone) call patterns forbidden inside
/// `// lint: hot_path` functions. Matched against the code token
/// stream, so strings/comments never trip it.
const BANNED_HOT: &[(&[&str], &str)] = &[
    (
        &["Vec", ":", ":", "new"],
        "Vec::new allocates on first push",
    ),
    (
        &["Vec", ":", ":", "with_capacity"],
        "Vec::with_capacity heap-allocates",
    ),
    (&["vec", "!"], "vec! macro allocates"),
    (&["format", "!"], "format! allocates a String"),
    (&["Box", ":", ":", "new"], "Box::new heap-allocates"),
    (
        &["String", ":", ":", "new"],
        "String::new allocates on first push",
    ),
    (&["String", ":", ":", "from"], "String::from allocates"),
    (&[".", "to_vec"], ".to_vec() copies into a fresh Vec"),
    (&[".", "to_string"], ".to_string() allocates a String"),
    (&[".", "to_owned"], ".to_owned() allocates"),
    (&[".", "collect"], ".collect() builds a fresh container"),
    (
        &[".", "insert"],
        "insert may grow/rehash its container (allow when capacity is warmed)",
    ),
    (
        &[".", "clone"],
        "clone() on a non-Copy type allocates (allow when the type is Copy)",
    ),
];

/// `hot-path-alloc`: functions annotated `// lint: hot_path` — the
/// per-packet paths whose zero-allocation contract
/// `tests/hot_path.rs` meters dynamically — must not call allocating
/// APIs. Seal-path or warmup allocations inside a hot function carry
/// a justified inline allow.
fn hot_path_alloc(f: &FileModel, out: &mut Vec<Finding>) {
    for fun in f.fns.iter().filter(|fun| fun.hot) {
        let body = &f.tokens[fun.body.clone()];
        for (i, t) in body.iter().enumerate() {
            for (pat, why) in BANNED_HOT {
                if match_seq(body, i, pat) {
                    // Method patterns must be *calls*: require `(` right
                    // after the name so `.insert` in a path like
                    // `map.insert` (no call) — or a field — can't trip.
                    if pat[0] == "." {
                        let after = i + pat.len();
                        if !body.get(after).is_some_and(|t| t.is_punct('(')) {
                            continue;
                        }
                    }
                    emit(
                        out,
                        f,
                        "hot-path-alloc",
                        t.line,
                        format!("allocation in hot path `{}`: {}", fun.name, why),
                    );
                }
            }
        }
    }
}

/// Does the token sequence starting at `i` match `pat`? Pattern
/// elements are ident texts or single punct chars.
fn match_seq(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let t = &tokens[i + k];
        match t.kind {
            TokKind::Ident => t.text == *p,
            TokKind::Punct => t.text == *p,
            _ => false,
        }
    })
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

/// Channel/condvar operations that can block (or wake a blocked peer
/// that needs the same lock).
const WAIT_POINTS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// `lock-discipline`: a `Mutex` guard bound by `let … .lock() …` must
/// not be live across a channel send/recv or condvar wait in the same
/// block — the self-deadlock shape PRs 3 and 6 fixed by hand
/// (a parked worker holding the lock its waker needs).
/// Is `body[i]` a blocking call token: `.send(`, `.recv(`, `.wait(`…?
fn is_wait_point(body: &[Token], i: usize) -> bool {
    body[i].kind == TokKind::Ident
        && WAIT_POINTS.contains(&body[i].text.as_str())
        && i >= 1
        && body[i - 1].is_punct('.')
        && body.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// For a condvar `wait*` call at `body[i]`, the guard it consumes (and
/// atomically releases): the first ident in its argument list.
fn handoff_guard(body: &[Token], i: usize) -> Option<String> {
    if !body[i].text.starts_with("wait") {
        return None;
    }
    body[i + 2..(i + 6).min(body.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Emits a `lock-discipline` finding for the wait point at `body[i]`
/// unless the only live guard is the one a condvar wait hands off.
fn check_wait(
    f: &FileModel,
    out: &mut Vec<Finding>,
    body: &[Token],
    i: usize,
    guards: &[(Option<String>, i32)],
    fun_name: &str,
) {
    // `cvar.wait(guard)` is the legitimate condvar handoff: the wait
    // atomically releases the guard it is given. Only *other* guards
    // held across it deadlock.
    let handoff = handoff_guard(body, i);
    let held: Vec<String> = guards
        .iter()
        .filter(|(n, _)| handoff.is_none() || n.as_deref() != handoff.as_deref())
        .map(|(n, _)| n.clone().unwrap_or_else(|| "_".into()))
        .collect();
    if !held.is_empty() {
        emit(
            out,
            f,
            "lock-discipline",
            body[i].line,
            format!(
                "`.{}()` while mutex guard `{}` is live in `{}` — \
                 drop the guard before blocking",
                body[i].text,
                held.join("`, `"),
                fun_name
            ),
        );
    }
}

fn lock_discipline(f: &FileModel, out: &mut Vec<Finding>) {
    for fun in &f.fns {
        let body = &f.tokens[fun.body.clone()];
        // Live guards: (binding name or None, brace depth at binding).
        let mut guards: Vec<(Option<String>, i32)> = Vec::new();
        let mut depth = 0i32;
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                guards.retain(|(_, d)| *d <= depth);
            } else if t.is_ident("drop") && body.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                if let Some(name_tok) = body.get(i + 2) {
                    if name_tok.kind == TokKind::Ident {
                        let name = name_tok.text.clone();
                        guards.retain(|(n, _)| n.as_deref() != Some(name.as_str()));
                    }
                }
            } else if t.is_ident("let") {
                // Scan the statement: `let [mut] NAME … = … ;` or the
                // `if let`/`while let` form ending at `{`.
                let mut name = None;
                let mut has_lock = false;
                let mut j = i + 1;
                let mut paren = 0i32;
                while j < body.len() {
                    let u = &body[j];
                    if u.is_punct('(') || u.is_punct('[') {
                        paren += 1;
                    } else if u.is_punct(')') || u.is_punct(']') {
                        paren -= 1;
                    } else if u.is_punct(';') && paren <= 0 {
                        break;
                    } else if u.is_punct('{') && paren <= 0 {
                        break; // `if let … = … {` / `let … = loop {`
                    } else if u.is_punct('=') && paren <= 0 {
                        // Pattern ends at `=`; stop taking binding names
                        // from the initializer expression.
                        name = name.or(Some(String::new()));
                    } else if u.kind == TokKind::Ident
                        && name.is_none()
                        && u.text != "mut"
                        // Skip constructor names: in `Ok(g)` / `Some(g)`
                        // the binding is inside the parens.
                        && !matches!(
                            body.get(j + 1),
                            Some(n) if n.is_punct('(') || n.is_punct(':')
                        )
                    {
                        name = Some(u.text.clone());
                    } else if u.is_ident("lock")
                        && j >= 1
                        && body[j - 1].is_punct('.')
                        && body.get(j + 1).is_some_and(|t| t.is_punct('('))
                    {
                        has_lock = true;
                    } else if is_wait_point(body, j) && !guards.is_empty() {
                        // `let v = rx.recv();` — a blocking call inside
                        // the initializer blocks just the same.
                        check_wait(f, out, body, j, &guards, &fun.name);
                    }
                    j += 1;
                }
                if has_lock {
                    // The guard's scope: the current block (or the one
                    // the `if let` is about to open; binding to the
                    // current depth is conservative for both).
                    guards.push((name, depth));
                }
                i = j;
                continue;
            } else if is_wait_point(body, i) && !guards.is_empty() {
                check_wait(f, out, body, i, &guards, &fun.name);
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// no-unwrap-in-lib
// ---------------------------------------------------------------------------

/// `no-unwrap-in-lib`: `unwrap()` / `expect()` / `panic!` are
/// forbidden in non-test library code. Proper error propagation where
/// feasible; an invariant that genuinely cannot fail carries a
/// justified inline allow.
fn no_unwrap_in_lib(f: &FileModel, out: &mut Vec<Finding>) {
    if f.role != FileRole::Lib {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if f.in_test(i) {
            continue;
        }
        let hit = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && f.tokens[i - 1].is_punct('.')
            && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            Some(format!(".{}() in library code", t.text))
        } else if t.is_ident("panic") && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            Some("panic! in library code".to_string())
        } else {
            None
        };
        if let Some(msg) = hit {
            emit(
                out,
                f,
                "no-unwrap-in-lib",
                t.line,
                format!("{msg} — propagate the error or justify with an inline allow"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// exhaustive-events
// ---------------------------------------------------------------------------

/// Event-shaped enums every consumer must match exhaustively: adding a
/// variant (a new event kind, eviction cause, or source packet form)
/// must be a compile-time event at each consumer, never a silently
/// swallowed wildcard.
const EVENT_ENUMS: &[&str] = &["QoeEvent", "EvictReason", "SourcePacket"];

/// `exhaustive-events`: a `match` whose arms name an event enum
/// variant must not also contain a wildcard `_` arm.
fn exhaustive_events(f: &FileModel, out: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // Test-only projections (filter_map/find_map extracting one
        // variant) may use wildcards: the invariant protects live
        // event handling, not assertions.
        if f.in_test(i) {
            continue;
        }
        // Find the match body: the first `{` at bracket level 0 after
        // the scrutinee.
        let mut j = i + 1;
        let mut level = 0i32;
        let mut open = None;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('(') || u.is_punct('[') {
                level += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                level -= 1;
            } else if u.is_punct('{') && level <= 0 {
                open = Some(j);
                break;
            } else if u.is_punct(';') && level <= 0 {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = match_brace(toks, open);
        // Split arms at depth 0 inside the body; an arm's pattern is
        // everything up to its `=>`.
        let mut arm_patterns: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut depth = 0i32;
        let mut in_pattern = true;
        let mut k = open + 1;
        while k < close {
            let u = &toks[k];
            if u.is_punct('{') || u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct('}') || u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && in_pattern
                && u.is_punct('=')
                && toks.get(k + 1).is_some_and(|t| t.is_punct('>'))
            {
                arm_patterns.push((u.line, std::mem::take(&mut cur)));
                in_pattern = false;
                k += 2;
                continue;
            } else if depth == 0 && !in_pattern && u.is_punct(',') {
                in_pattern = true;
                k += 1;
                continue;
            }
            // A block arm body `{…}` returns depth to 0; the next
            // pattern starts right after without a comma.
            if depth == 0 && !in_pattern && u.is_punct('}') {
                in_pattern = true;
                k += 1;
                continue;
            }
            // Skip the separator comma a block-bodied arm may leave
            // before the next pattern.
            if in_pattern && depth >= 0 && !(depth == 0 && u.is_punct(',')) {
                cur.push(k);
            }
            k += 1;
        }
        let names_event = arm_patterns.iter().any(|(_, pat)| {
            pat.iter().any(|&idx| {
                EVENT_ENUMS.contains(&toks[idx].text.as_str())
                    && toks[idx].kind == TokKind::Ident
                    && toks.get(idx + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 2).is_some_and(|t| t.is_punct(':'))
            })
        });
        if !names_event {
            continue;
        }
        for (line, pat) in &arm_patterns {
            let code: Vec<&Token> = pat.iter().map(|&idx| &toks[idx]).collect();
            let wildcard = match code.as_slice() {
                [t] if t.is_ident("_") => true,
                [t, g, ..] if t.is_ident("_") && g.is_ident("if") => true,
                _ => false,
            };
            if wildcard {
                emit(
                    out,
                    f,
                    "exhaustive-events",
                    *line,
                    "wildcard `_` arm in a match over an event enum — name every \
                     variant so new ones force handling here"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// stability-surface
// ---------------------------------------------------------------------------

/// `stability-surface`: items from a documented-unstable module
/// (`//! … Stability: unstable …`) must not be re-exported from a
/// crate root `lib.rs`, unless the item itself carries a
/// `Stability: stable` doc marker.
fn stability_surface(files: &[FileModel], out: &mut Vec<Finding>) {
    // Unstable modules by (crate src dir, module name).
    struct Unstable<'a> {
        dir: String,
        module: String,
        model: &'a FileModel,
    }
    let mut unstable: Vec<Unstable> = Vec::new();
    for f in files {
        if !f.unstable_module {
            continue;
        }
        let (dir, stem) = split_dir_stem(&f.path);
        unstable.push(Unstable {
            dir,
            module: stem,
            model: f,
        });
    }
    if unstable.is_empty() {
        return;
    }
    for f in files.iter().filter(|f| f.path.ends_with("lib.rs")) {
        let (dir, _) = split_dir_stem(&f.path);
        let toks = &f.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("use")) {
                // Parse `pub use seg::seg::{A, B as C, *};`-ish forms.
                let mut j = i + 2;
                let mut segs: Vec<String> = Vec::new();
                let mut after_as = false;
                while j < toks.len() && !toks[j].is_punct(';') {
                    let t = &toks[j];
                    if t.kind == TokKind::Ident {
                        if t.text == "as" {
                            after_as = true; // `x as y`: y is a rename, not a path seg
                        } else if !after_as {
                            segs.push(t.text.clone());
                        } else {
                            after_as = false;
                        }
                    } else if t.is_punct('{') || t.is_punct('*') {
                        break;
                    }
                    j += 1;
                }
                let module_seg = segs
                    .iter()
                    .find(|s| !matches!(s.as_str(), "crate" | "self" | "super"));
                if let Some(module) = module_seg {
                    if let Some(u) = unstable
                        .iter()
                        .find(|u| u.dir == dir && u.module == *module)
                    {
                        check_reexport(f, u.model, toks, j, &segs, module, out);
                    }
                }
                i = j;
            }
            i += 1;
        }
    }

    fn check_reexport(
        f: &FileModel,
        module_model: &FileModel,
        toks: &[Token],
        j: usize,
        segs: &[String],
        module: &str,
        out: &mut Vec<Finding>,
    ) {
        let flag = |out: &mut Vec<Finding>, line: u32, item: &str| {
            emit(
                out,
                f,
                "stability-surface",
                line,
                format!(
                    "`{item}` is documented-unstable (module `{module}`) but re-exported \
                     from the crate root — mark it `Stability: stable` or drop the re-export"
                ),
            );
        };
        match toks.get(j) {
            Some(t) if t.is_punct('{') => {
                let close = match_brace(toks, j);
                let mut prev_was_as = false;
                for t in &toks[j + 1..close.min(toks.len())] {
                    if t.kind == TokKind::Ident {
                        if t.text == "as" {
                            prev_was_as = true;
                            continue;
                        }
                        if prev_was_as {
                            prev_was_as = false;
                            continue; // rename target, not the item
                        }
                        if module_model.pub_items.contains(&t.text)
                            && !module_model.stable_items.contains(&t.text)
                        {
                            flag(out, t.line, &t.text);
                        }
                    }
                }
            }
            Some(t) if t.is_punct('*') => {
                // A glob re-export of an unstable module leaks every
                // unmarked item.
                for item in module_model
                    .pub_items
                    .difference(&module_model.stable_items)
                {
                    flag(out, t.line, item);
                }
            }
            _ => {
                // Single-item form: `pub use engine::FlowTable;`
                if let Some(item) = segs.last() {
                    if item != module
                        && module_model.pub_items.contains(item)
                        && !module_model.stable_items.contains(item)
                    {
                        let line = toks.get(j).map(|t| t.line).unwrap_or(0);
                        flag(out, line, item);
                    }
                }
            }
        }
    }
}

/// Splits `crates/core/src/engine.rs` into
/// (`crates/core/src`, `engine`).
fn split_dir_stem(path: &str) -> (String, String) {
    let (dir, file) = match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    };
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    (dir.to_string(), stem.to_string())
}

// ---------------------------------------------------------------------------
// annotation-grammar
// ---------------------------------------------------------------------------

/// `annotation-grammar`: every `// lint:` annotation must parse, and
/// every allow must carry a `-- <reason>` justification.
fn annotation_grammar(f: &FileModel, out: &mut Vec<Finding>) {
    for &line in &f.bad_allows {
        emit(
            out,
            f,
            "annotation-grammar",
            line,
            "malformed `// lint:` annotation — expected `hot_path` or \
             `allow(<rule>[, <rule>…]) -- <reason>`"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;
    use std::path::Path;

    fn findings(src: &str) -> Vec<Finding> {
        let m = build("x.rs", Path::new("crates/x/src/x.rs"), src);
        run_all(std::slice::from_ref(&m), &[])
    }

    #[test]
    fn hot_fn_with_alloc_flagged_cold_fn_ignored() {
        let src = "\
// lint: hot_path
fn hot(v: &mut Vec<u32>) { let s = x.to_string(); }
fn cold() { let s = x.to_string(); }
";
        let f = findings(src);
        assert_eq!(f.iter().filter(|f| f.rule == "hot-path-alloc").count(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hot_alloc_allow_suppresses() {
        let src = "\
// lint: hot_path
fn hot(v: &mut Vec<u32>) {
    v.insert(0, 1); // lint: allow(hot-path-alloc) -- capacity warmed in setup
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn lock_across_send_flagged() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    tx.send(*g).ok();
}
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "lock-discipline" && f.line == 3));
    }

    #[test]
    fn recv_inside_let_initializer_flagged() {
        let src = "\
fn f(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock().ok();
    let v = rx.recv();
    let _ = (g, v);
}
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "lock-discipline" && f.line == 3));
    }

    #[test]
    fn condvar_handoff_is_clean() {
        let src = "\
fn f(m: &Mutex<bool>, cvar: &Condvar) {
    let Ok(mut g) = m.lock() else { return };
    while !*g {
        g = match cvar.wait(g) { Ok(v) => v, Err(_) => return };
    }
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn lock_dropped_before_send_is_clean() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn lock_scope_ends_at_block_close() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    {
        let g = m.lock().unwrap();
    }
    tx.send(1).ok();
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn unwrap_in_lib_flagged_in_tests_exempt() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";
        let f = findings(src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-unwrap-in-lib").count(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_variants_not_confused() {
        let src = "fn lib() { x.unwrap_or(0); y.unwrap_or_else(f); z.expect_err(); }";
        assert!(findings(src).iter().all(|f| f.rule != "no-unwrap-in-lib"));
    }

    #[test]
    fn wildcard_over_event_enum_flagged() {
        let src = "\
fn f(e: &QoeEvent) {
    match e {
        QoeEvent::FlowOpened { .. } => a(),
        _ => b(),
    }
}
";
        let f = findings(src);
        assert!(f
            .iter()
            .any(|f| f.rule == "exhaustive-events" && f.line == 4));
    }

    #[test]
    fn wildcard_over_other_enum_fine() {
        let src = "\
fn f(e: &Other) {
    match e {
        Other::A => a(),
        _ => b(),
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn nested_non_event_match_inside_event_match_fine() {
        let src = "\
fn f(e: &QoeEvent) {
    match e {
        QoeEvent::FlowOpened { method } => match method {
            Method::A => a(),
            _ => b(),
        },
        QoeEvent::Dropped { .. } => c(),
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn stability_surface_flags_unmarked_reexport() {
        let engine = "\
//! Machine room.
//! **Stability: unstable internals.**

/// Public but unstable.
pub struct FlowTable;

/// Config.
///
/// Stability: stable re-export of the unstable module.
pub struct EngineConfig;
";
        let lib = "pub use engine::{EngineConfig, FlowTable};\n";
        let me = build(
            "crates/core/src/engine.rs",
            Path::new("crates/core/src/engine.rs"),
            engine,
        );
        let ml = build(
            "crates/core/src/lib.rs",
            Path::new("crates/core/src/lib.rs"),
            lib,
        );
        let f = run_all(&[me, ml], &[]);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "stability-surface").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("FlowTable"));
    }

    #[test]
    fn annotation_grammar_flags_reasonless_allow() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-unwrap-in-lib)\n";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "annotation-grammar"));
        // The reasonless allow does NOT suppress.
        assert!(f.iter().any(|f| f.rule == "no-unwrap-in-lib"));
    }

    #[test]
    fn banned_names_in_strings_do_not_trip() {
        let src = "\
// lint: hot_path
fn hot() { let s = \"x.to_string() vec![] format!\"; }
fn lib() { let m = \"don't panic!('x') or .unwrap()\"; }
";
        assert!(findings(src).is_empty());
    }
}
