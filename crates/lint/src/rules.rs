//! The rule engine: five repo-grounded rules over [`FileModel`]s, plus
//! the `annotation-grammar` meta-rule. Each rule is a pure function
//! from model(s) to [`Finding`]s; suppression via
//! `// lint: allow(<rule>) -- <reason>` is resolved here.

use crate::lexer::{TokKind, Token};
use crate::model::{match_brace, FileModel, FileRole};
use crate::report::{Finding, Severity};

/// Names of all rules, in report order. The four `*-transitive` /
/// graph rules live in [`crate::analyses`]; the rest are per-file.
pub const ALL_RULES: &[&str] = &[
    "hot-path-alloc",
    "hot-path-alloc-transitive",
    "lock-discipline",
    "lock-discipline-transitive",
    "lock-order-cycle",
    "panic-path",
    "no-unwrap-in-lib",
    "exhaustive-events",
    "stability-surface",
    "annotation-grammar",
];

/// Runs every (selected) rule over the file set.
pub fn run_all(files: &[FileModel], selected: &[String]) -> Vec<Finding> {
    let on = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let mut findings = Vec::new();
    for f in files {
        if on("hot-path-alloc") {
            hot_path_alloc(f, &mut findings);
        }
        if on("lock-discipline") {
            lock_discipline(f, &mut findings);
        }
        if on("no-unwrap-in-lib") {
            no_unwrap_in_lib(f, &mut findings);
        }
        if on("exhaustive-events") {
            exhaustive_events(f, &mut findings);
        }
        if on("annotation-grammar") {
            annotation_grammar(f, &mut findings);
        }
    }
    if on("stability-surface") {
        stability_surface(files, &mut findings);
    }
    if [
        "hot-path-alloc-transitive",
        "lock-discipline-transitive",
        "lock-order-cycle",
        "panic-path",
    ]
    .iter()
    .any(|r| on(r))
    {
        let graph = crate::graph::Graph::build(files);
        crate::analyses::run(files, &graph, selected, &mut findings);
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

fn emit(out: &mut Vec<Finding>, f: &FileModel, rule: &'static str, line: u32, message: String) {
    if f.allowed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        severity: severity_of(rule),
        file: f.path.clone(),
        line,
        message,
        snippet: f.snippet(line),
        chain: vec![],
    });
}

/// Rule severity; shared with [`crate::analyses`]. All graph rules are
/// errors — a transitive allocation or deadlock shape is as real as a
/// local one.
pub(crate) fn severity(rule: &str) -> Severity {
    severity_of(rule)
}

fn severity_of(rule: &str) -> Severity {
    match rule {
        "no-unwrap-in-lib" => Severity::Warning,
        _ => Severity::Error,
    }
}

// ---------------------------------------------------------------------------
// hot-path-alloc
// ---------------------------------------------------------------------------

/// Allocating (or allocation-prone) call patterns forbidden inside
/// `// lint: hot_path` functions: (token pattern, display form for
/// witness chains, why). Matched against the code token stream, so
/// strings/comments never trip it.
const BANNED_HOT: &[(&[&str], &str, &str)] = &[
    (
        &["Vec", ":", ":", "new"],
        "Vec::new",
        "Vec::new allocates on first push",
    ),
    (
        &["Vec", ":", ":", "with_capacity"],
        "Vec::with_capacity",
        "Vec::with_capacity heap-allocates",
    ),
    (&["vec", "!"], "vec!", "vec! macro allocates"),
    (&["format", "!"], "format!", "format! allocates a String"),
    (
        &["Box", ":", ":", "new"],
        "Box::new",
        "Box::new heap-allocates",
    ),
    (
        &["String", ":", ":", "new"],
        "String::new",
        "String::new allocates on first push",
    ),
    (
        &["String", ":", ":", "from"],
        "String::from",
        "String::from allocates",
    ),
    (
        &[".", "to_vec"],
        ".to_vec()",
        ".to_vec() copies into a fresh Vec",
    ),
    (
        &[".", "to_string"],
        ".to_string()",
        ".to_string() allocates a String",
    ),
    (&[".", "to_owned"], ".to_owned()", ".to_owned() allocates"),
    (
        &[".", "collect"],
        ".collect()",
        ".collect() builds a fresh container",
    ),
    (
        &[".", "insert"],
        ".insert()",
        "insert may grow/rehash its container (allow when capacity is warmed)",
    ),
    (
        &[".", "clone"],
        ".clone()",
        "clone() on a non-Copy type allocates (allow when the type is Copy)",
    ),
];

/// The banned-allocation pattern starting at absolute token index `i`,
/// if any: `(display, why)`. Method patterns must be *calls* — `(`
/// required after the name so `.insert` in a path (no call) or a field
/// can't trip.
pub(crate) fn alloc_at(toks: &[Token], i: usize) -> Option<(&'static str, &'static str)> {
    for (pat, display, why) in BANNED_HOT {
        if match_seq(toks, i, pat) {
            if pat[0] == "." {
                let after = i + pat.len();
                if !toks.get(after).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
            }
            return Some((display, why));
        }
    }
    None
}

/// `hot-path-alloc`: functions annotated `// lint: hot_path` — the
/// per-packet paths whose zero-allocation contract
/// `tests/hot_path.rs` meters dynamically — must not call allocating
/// APIs. Seal-path or warmup allocations inside a hot function carry
/// a justified inline allow. (Allocations in *callees* are the
/// `hot-path-alloc-transitive` analysis.)
fn hot_path_alloc(f: &FileModel, out: &mut Vec<Finding>) {
    for fun in f.fns.iter().filter(|fun| fun.hot) {
        let nested = crate::graph::nested_fn_ranges(f, fun);
        let mut i = fun.body.start;
        while i < fun.body.end {
            if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
                i = r.end;
                continue;
            }
            if let Some((_, why)) = alloc_at(&f.tokens, i) {
                emit(
                    out,
                    f,
                    "hot-path-alloc",
                    f.tokens[i].line,
                    format!("allocation in hot path `{}`: {}", fun.name, why),
                );
            }
            i += 1;
        }
    }
}

/// Does the token sequence starting at `i` match `pat`? Pattern
/// elements are ident texts or single punct chars.
fn match_seq(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    if i + pat.len() > tokens.len() {
        return false;
    }
    pat.iter().enumerate().all(|(k, p)| {
        let t = &tokens[i + k];
        match t.kind {
            TokKind::Ident => t.text == *p,
            TokKind::Punct => t.text == *p,
            _ => false,
        }
    })
}

// ---------------------------------------------------------------------------
// lock-discipline
// ---------------------------------------------------------------------------

/// Channel/condvar operations that can block (or wake a blocked peer
/// that needs the same lock).
const WAIT_POINTS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// `lock-discipline`: a `Mutex` guard bound by `let … .lock() …` must
/// not be live across a channel send/recv or condvar wait in the same
/// block — the self-deadlock shape PRs 3 and 6 fixed by hand
/// (a parked worker holding the lock its waker needs).
/// Is `toks[i]` a blocking call token: `.send(`, `.recv(`, `.wait(`…?
pub(crate) fn is_wait_point(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokKind::Ident
        && WAIT_POINTS.contains(&toks[i].text.as_str())
        && i >= 1
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// For a condvar `wait*` call at `toks[i]`, the guard it consumes (and
/// atomically releases): the first ident in its argument list.
fn handoff_guard(toks: &[Token], i: usize) -> Option<String> {
    if !toks[i].text.starts_with("wait") {
        return None;
    }
    toks[i + 2..(i + 6).min(toks.len())]
        .iter()
        .find(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// One live mutex guard tracked by [`walk_guards`].
pub(crate) struct Guard {
    /// Binding name (`None` for `let _ = …` / pattern-eaten names).
    pub name: Option<String>,
    /// Normalized lock identity: `Owner::field` for `self.field.lock()`
    /// in an impl, otherwise the textual receiver path (`m`,
    /// `shared.inner`). Purely textual — aliasing is out of scope.
    pub lock: String,
    /// Brace depth the binding lives at (scope eviction).
    depth: i32,
    /// Line of the acquiring `let`.
    pub line: u32,
}

/// Guard-state events, streamed in source order with the held-guard
/// set at that point. Token indices are absolute (into
/// `FileModel::tokens`).
pub(crate) enum GuardEvent<'a> {
    /// Blocking channel/condvar call.
    Wait { tok: usize },
    /// A new guard is being bound; `held` (the callback's first
    /// argument) is the state *before* this acquisition. The site line
    /// is `guard.line` (the acquiring `let`).
    Acquire { guard: &'a Guard },
    /// Any `ident(` call head — the join point for call-graph edges.
    /// Only streamed while at least one guard is held.
    Call { tok: usize },
}

/// Walks `fun`'s body tracking live mutex guards (scope eviction at
/// `}`, explicit `drop(g)`, binding via `let … .lock() …`), streaming
/// [`GuardEvent`]s. Shared by the intra-procedural `lock-discipline`
/// rule and the interprocedural analyses. Nested fn items are skipped:
/// their guard state is their own.
pub(crate) fn walk_guards(
    f: &FileModel,
    fun: &crate::model::FnSpan,
    on: &mut dyn FnMut(&[Guard], GuardEvent),
) {
    let toks = &f.tokens;
    let nested = crate::graph::nested_fn_ranges(f, fun);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = fun.body.start;
    while i < fun.body.end {
        if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
            i = r.end;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name_tok) = toks.get(i + 2) {
                if name_tok.kind == TokKind::Ident {
                    let name = name_tok.text.clone();
                    guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                }
            }
        } else if t.is_ident("let") {
            // Scan the statement: `let [mut] NAME … = … ;` or the
            // `if let`/`while let` form ending at `{`.
            let mut name = None;
            let mut lock_at = None;
            let mut j = i + 1;
            let mut paren = 0i32;
            while j < fun.body.end {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    paren += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    paren -= 1;
                } else if u.is_punct(';') && paren <= 0 {
                    break;
                } else if u.is_punct('{') && paren <= 0 {
                    break; // `if let … = … {` / `let … = loop {`
                } else if u.is_punct('=') && paren <= 0 {
                    // Pattern ends at `=`; stop taking binding names
                    // from the initializer expression.
                    name = name.or(Some(String::new()));
                } else if u.kind == TokKind::Ident
                    && name.is_none()
                    && u.text != "mut"
                    // Skip constructor names: in `Ok(g)` / `Some(g)`
                    // the binding is inside the parens.
                    && !matches!(
                        toks.get(j + 1),
                        Some(n) if n.is_punct('(') || n.is_punct(':')
                    )
                {
                    name = Some(u.text.clone());
                } else if u.is_ident("lock")
                    && j >= 1
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                {
                    if lock_at.is_none() {
                        lock_at = Some(j);
                    }
                } else if is_wait_point(toks, j) && !guards.is_empty() {
                    // `let v = rx.recv();` — a blocking call inside
                    // the initializer blocks just the same.
                    on(&guards, GuardEvent::Wait { tok: j });
                }
                if crate::graph::is_call_head(toks, j) && !guards.is_empty() {
                    on(&guards, GuardEvent::Call { tok: j });
                }
                j += 1;
            }
            if let Some(la) = lock_at {
                let guard = Guard {
                    name: name.filter(|n: &String| !n.is_empty()),
                    lock: lock_path(toks, la, fun),
                    // The guard's scope: the current block (or the one
                    // the `if let` is about to open; binding to the
                    // current depth is conservative for both).
                    depth,
                    line: t.line,
                };
                on(&guards, GuardEvent::Acquire { guard: &guard });
                guards.push(guard);
            }
            i = j;
            continue;
        } else if is_wait_point(toks, i) && !guards.is_empty() {
            on(&guards, GuardEvent::Wait { tok: i });
        }
        if crate::graph::is_call_head(toks, i) && !guards.is_empty() {
            on(&guards, GuardEvent::Call { tok: i });
        }
        i += 1;
    }
}

/// Normalized lock identity for the `.lock()` call at `toks[la]`:
/// the textual receiver path, with `self.` rewritten to the impl
/// owner (`self.queue` in `impl Collector` → `Collector::queue`) so
/// field locks unify across methods of the same type.
fn lock_path(toks: &[Token], la: usize, fun: &crate::model::FnSpan) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut p = match la.checked_sub(2) {
        Some(p) => p,
        None => return "<expr>".to_string(),
    };
    loop {
        let t = &toks[p];
        if t.kind != TokKind::Ident {
            // `x.borrow().lock()` and friends: opaque expression.
            return "<expr>".to_string();
        }
        parts.push(t.text.as_str());
        if p >= 2 && toks[p - 1].is_punct('.') && toks[p - 2].kind == TokKind::Ident {
            p -= 2;
            continue;
        }
        break;
    }
    parts.reverse();
    if parts[0] == "self" && parts.len() > 1 {
        if let Some(o) = &fun.owner {
            return format!("{}::{}", o, parts[1..].join("."));
        }
    }
    parts.join(".")
}

/// Emits a `lock-discipline` finding for the wait point at `toks[i]`
/// unless the only live guard is the one a condvar wait hands off.
fn check_wait(f: &FileModel, out: &mut Vec<Finding>, i: usize, guards: &[Guard], fun_name: &str) {
    let toks = &f.tokens;
    // `cvar.wait(guard)` is the legitimate condvar handoff: the wait
    // atomically releases the guard it is given. Only *other* guards
    // held across it deadlock.
    let handoff = handoff_guard(toks, i);
    let held: Vec<String> = guards
        .iter()
        .filter(|g| handoff.is_none() || g.name.as_deref() != handoff.as_deref())
        .map(|g| g.name.clone().unwrap_or_else(|| "_".into()))
        .collect();
    if !held.is_empty() {
        emit(
            out,
            f,
            "lock-discipline",
            toks[i].line,
            format!(
                "`.{}()` while mutex guard `{}` is live in `{}` — \
                 drop the guard before blocking",
                toks[i].text,
                held.join("`, `"),
                fun_name
            ),
        );
    }
}

fn lock_discipline(f: &FileModel, out: &mut Vec<Finding>) {
    for fun in &f.fns {
        walk_guards(f, fun, &mut |held, ev| {
            if let GuardEvent::Wait { tok } = ev {
                check_wait(f, out, tok, held, &fun.name);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// no-unwrap-in-lib
// ---------------------------------------------------------------------------

/// `no-unwrap-in-lib`: `unwrap()` / `expect()` / `panic!` are
/// forbidden in non-test library code. Proper error propagation where
/// feasible; an invariant that genuinely cannot fail carries a
/// justified inline allow.
fn no_unwrap_in_lib(f: &FileModel, out: &mut Vec<Finding>) {
    if f.role != FileRole::Lib {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if f.in_test(i) {
            continue;
        }
        let hit = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && f.tokens[i - 1].is_punct('.')
            && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            Some(format!(".{}() in library code", t.text))
        } else if t.is_ident("panic") && f.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            Some("panic! in library code".to_string())
        } else {
            None
        };
        if let Some(msg) = hit {
            emit(
                out,
                f,
                "no-unwrap-in-lib",
                t.line,
                format!("{msg} — propagate the error or justify with an inline allow"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// exhaustive-events
// ---------------------------------------------------------------------------

/// Event-shaped enums every consumer must match exhaustively: adding a
/// variant (a new event kind, eviction cause, or source packet form)
/// must be a compile-time event at each consumer, never a silently
/// swallowed wildcard.
const EVENT_ENUMS: &[&str] = &[
    "QoeEvent",
    "EvictReason",
    "SourcePacket",
    "Verdict",
    "Perturbation",
];

/// `exhaustive-events`: a `match` whose arms name an event enum
/// variant must not also contain a wildcard `_` arm.
fn exhaustive_events(f: &FileModel, out: &mut Vec<Finding>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // Test-only projections (filter_map/find_map extracting one
        // variant) may use wildcards: the invariant protects live
        // event handling, not assertions.
        if f.in_test(i) {
            continue;
        }
        // Find the match body: the first `{` at bracket level 0 after
        // the scrutinee.
        let mut j = i + 1;
        let mut level = 0i32;
        let mut open = None;
        while j < toks.len() {
            let u = &toks[j];
            if u.is_punct('(') || u.is_punct('[') {
                level += 1;
            } else if u.is_punct(')') || u.is_punct(']') {
                level -= 1;
            } else if u.is_punct('{') && level <= 0 {
                open = Some(j);
                break;
            } else if u.is_punct(';') && level <= 0 {
                break;
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let close = match_brace(toks, open);
        // Split arms at depth 0 inside the body; an arm's pattern is
        // everything up to its `=>`.
        let mut arm_patterns: Vec<(u32, Vec<usize>)> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut depth = 0i32;
        let mut in_pattern = true;
        let mut k = open + 1;
        while k < close {
            let u = &toks[k];
            if u.is_punct('{') || u.is_punct('(') || u.is_punct('[') {
                depth += 1;
            } else if u.is_punct('}') || u.is_punct(')') || u.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && in_pattern
                && u.is_punct('=')
                && toks.get(k + 1).is_some_and(|t| t.is_punct('>'))
            {
                arm_patterns.push((u.line, std::mem::take(&mut cur)));
                in_pattern = false;
                k += 2;
                continue;
            } else if depth == 0 && !in_pattern && u.is_punct(',') {
                in_pattern = true;
                k += 1;
                continue;
            }
            // A block arm body `{…}` returns depth to 0; the next
            // pattern starts right after without a comma.
            if depth == 0 && !in_pattern && u.is_punct('}') {
                in_pattern = true;
                k += 1;
                continue;
            }
            // Skip the separator comma a block-bodied arm may leave
            // before the next pattern.
            if in_pattern && depth >= 0 && !(depth == 0 && u.is_punct(',')) {
                cur.push(k);
            }
            k += 1;
        }
        let names_event = arm_patterns.iter().any(|(_, pat)| {
            pat.iter().any(|&idx| {
                EVENT_ENUMS.contains(&toks[idx].text.as_str())
                    && toks[idx].kind == TokKind::Ident
                    && toks.get(idx + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(idx + 2).is_some_and(|t| t.is_punct(':'))
            })
        });
        if !names_event {
            continue;
        }
        for (line, pat) in &arm_patterns {
            let code: Vec<&Token> = pat.iter().map(|&idx| &toks[idx]).collect();
            let wildcard = match code.as_slice() {
                [t] if t.is_ident("_") => true,
                [t, g, ..] if t.is_ident("_") && g.is_ident("if") => true,
                _ => false,
            };
            if wildcard {
                emit(
                    out,
                    f,
                    "exhaustive-events",
                    *line,
                    "wildcard `_` arm in a match over an event enum — name every \
                     variant so new ones force handling here"
                        .to_string(),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// stability-surface
// ---------------------------------------------------------------------------

/// `stability-surface`: items from a documented-unstable module
/// (`//! … Stability: unstable …`) must not be re-exported from a
/// crate root `lib.rs`, unless the item itself carries a
/// `Stability: stable` doc marker.
fn stability_surface(files: &[FileModel], out: &mut Vec<Finding>) {
    // Unstable modules by (crate src dir, module name).
    struct Unstable<'a> {
        dir: String,
        module: String,
        model: &'a FileModel,
    }
    let mut unstable: Vec<Unstable> = Vec::new();
    for f in files {
        if !f.unstable_module {
            continue;
        }
        let (dir, stem) = split_dir_stem(&f.path);
        unstable.push(Unstable {
            dir,
            module: stem,
            model: f,
        });
    }
    if unstable.is_empty() {
        return;
    }
    for f in files.iter().filter(|f| f.path.ends_with("lib.rs")) {
        let (dir, _) = split_dir_stem(&f.path);
        let toks = &f.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("use")) {
                // Parse `pub use seg::seg::{A, B as C, *};`-ish forms.
                let mut j = i + 2;
                let mut segs: Vec<String> = Vec::new();
                let mut after_as = false;
                while j < toks.len() && !toks[j].is_punct(';') {
                    let t = &toks[j];
                    if t.kind == TokKind::Ident {
                        if t.text == "as" {
                            after_as = true; // `x as y`: y is a rename, not a path seg
                        } else if !after_as {
                            segs.push(t.text.clone());
                        } else {
                            after_as = false;
                        }
                    } else if t.is_punct('{') || t.is_punct('*') {
                        break;
                    }
                    j += 1;
                }
                let module_seg = segs
                    .iter()
                    .find(|s| !matches!(s.as_str(), "crate" | "self" | "super"));
                if let Some(module) = module_seg {
                    if let Some(u) = unstable
                        .iter()
                        .find(|u| u.dir == dir && u.module == *module)
                    {
                        check_reexport(f, u.model, toks, j, &segs, module, out);
                    }
                }
                i = j;
            }
            i += 1;
        }
    }

    fn check_reexport(
        f: &FileModel,
        module_model: &FileModel,
        toks: &[Token],
        j: usize,
        segs: &[String],
        module: &str,
        out: &mut Vec<Finding>,
    ) {
        let flag = |out: &mut Vec<Finding>, line: u32, item: &str| {
            emit(
                out,
                f,
                "stability-surface",
                line,
                format!(
                    "`{item}` is documented-unstable (module `{module}`) but re-exported \
                     from the crate root — mark it `Stability: stable` or drop the re-export"
                ),
            );
        };
        match toks.get(j) {
            Some(t) if t.is_punct('{') => {
                let close = match_brace(toks, j);
                let mut prev_was_as = false;
                for t in &toks[j + 1..close.min(toks.len())] {
                    if t.kind == TokKind::Ident {
                        if t.text == "as" {
                            prev_was_as = true;
                            continue;
                        }
                        if prev_was_as {
                            prev_was_as = false;
                            continue; // rename target, not the item
                        }
                        if module_model.pub_items.contains(&t.text)
                            && !module_model.stable_items.contains(&t.text)
                        {
                            flag(out, t.line, &t.text);
                        }
                    }
                }
            }
            Some(t) if t.is_punct('*') => {
                // A glob re-export of an unstable module leaks every
                // unmarked item.
                for item in module_model
                    .pub_items
                    .difference(&module_model.stable_items)
                {
                    flag(out, t.line, item);
                }
            }
            _ => {
                // Single-item form: `pub use engine::FlowTable;`
                if let Some(item) = segs.last() {
                    if item != module
                        && module_model.pub_items.contains(item)
                        && !module_model.stable_items.contains(item)
                    {
                        let line = toks.get(j).map(|t| t.line).unwrap_or(0);
                        flag(out, line, item);
                    }
                }
            }
        }
    }
}

/// Splits `crates/core/src/engine.rs` into
/// (`crates/core/src`, `engine`).
fn split_dir_stem(path: &str) -> (String, String) {
    let (dir, file) = match path.rfind('/') {
        Some(i) => (&path[..i], &path[i + 1..]),
        None => ("", path),
    };
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    (dir.to_string(), stem.to_string())
}

// ---------------------------------------------------------------------------
// annotation-grammar
// ---------------------------------------------------------------------------

/// `annotation-grammar`: every `// lint:` annotation must parse, and
/// every allow must carry a `-- <reason>` justification.
fn annotation_grammar(f: &FileModel, out: &mut Vec<Finding>) {
    for &line in &f.bad_allows {
        emit(
            out,
            f,
            "annotation-grammar",
            line,
            "malformed `// lint:` annotation — expected `hot_path` or \
             `allow(<rule>[, <rule>…]) -- <reason>`"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;
    use std::path::Path;

    fn findings(src: &str) -> Vec<Finding> {
        let m = build("x.rs", Path::new("crates/x/src/x.rs"), src);
        run_all(std::slice::from_ref(&m), &[])
    }

    #[test]
    fn hot_fn_with_alloc_flagged_cold_fn_ignored() {
        let src = "\
// lint: hot_path
fn hot(v: &mut Vec<u32>) { let s = x.to_string(); }
fn cold() { let s = x.to_string(); }
";
        let f = findings(src);
        assert_eq!(f.iter().filter(|f| f.rule == "hot-path-alloc").count(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hot_alloc_allow_suppresses() {
        let src = "\
// lint: hot_path
fn hot(v: &mut Vec<u32>) {
    v.insert(0, 1); // lint: allow(hot-path-alloc) -- capacity warmed in setup
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn lock_across_send_flagged() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    tx.send(*g).ok();
}
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "lock-discipline" && f.line == 3));
    }

    #[test]
    fn recv_inside_let_initializer_flagged() {
        let src = "\
fn f(m: &Mutex<u32>, rx: &Receiver<u32>) {
    let g = m.lock().ok();
    let v = rx.recv();
    let _ = (g, v);
}
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "lock-discipline" && f.line == 3));
    }

    #[test]
    fn condvar_handoff_is_clean() {
        let src = "\
fn f(m: &Mutex<bool>, cvar: &Condvar) {
    let Ok(mut g) = m.lock() else { return };
    while !*g {
        g = match cvar.wait(g) { Ok(v) => v, Err(_) => return };
    }
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn lock_dropped_before_send_is_clean() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn lock_scope_ends_at_block_close() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    {
        let g = m.lock().unwrap();
    }
    tx.send(1).ok();
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-discipline"));
    }

    #[test]
    fn unwrap_in_lib_flagged_in_tests_exempt() {
        let src = "\
fn lib() { x.unwrap(); }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}
";
        let f = findings(src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-unwrap-in-lib").count(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_variants_not_confused() {
        let src = "fn lib() { x.unwrap_or(0); y.unwrap_or_else(f); z.expect_err(); }";
        assert!(findings(src).iter().all(|f| f.rule != "no-unwrap-in-lib"));
    }

    #[test]
    fn wildcard_over_event_enum_flagged() {
        let src = "\
fn f(e: &QoeEvent) {
    match e {
        QoeEvent::FlowOpened { .. } => a(),
        _ => b(),
    }
}
";
        let f = findings(src);
        assert!(f
            .iter()
            .any(|f| f.rule == "exhaustive-events" && f.line == 4));
    }

    #[test]
    fn wildcard_over_other_enum_fine() {
        let src = "\
fn f(e: &Other) {
    match e {
        Other::A => a(),
        _ => b(),
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn nested_non_event_match_inside_event_match_fine() {
        let src = "\
fn f(e: &QoeEvent) {
    match e {
        QoeEvent::FlowOpened { method } => match method {
            Method::A => a(),
            _ => b(),
        },
        QoeEvent::Dropped { .. } => c(),
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn stability_surface_flags_unmarked_reexport() {
        let engine = "\
//! Machine room.
//! **Stability: unstable internals.**

/// Public but unstable.
pub struct FlowTable;

/// Config.
///
/// Stability: stable re-export of the unstable module.
pub struct EngineConfig;
";
        let lib = "pub use engine::{EngineConfig, FlowTable};\n";
        let me = build(
            "crates/core/src/engine.rs",
            Path::new("crates/core/src/engine.rs"),
            engine,
        );
        let ml = build(
            "crates/core/src/lib.rs",
            Path::new("crates/core/src/lib.rs"),
            lib,
        );
        let f = run_all(&[me, ml], &[]);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == "stability-surface").collect();
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("FlowTable"));
    }

    #[test]
    fn annotation_grammar_flags_reasonless_allow() {
        let src = "fn f() { x.unwrap(); } // lint: allow(no-unwrap-in-lib)\n";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "annotation-grammar"));
        // The reasonless allow does NOT suppress.
        assert!(f.iter().any(|f| f.rule == "no-unwrap-in-lib"));
    }

    #[test]
    fn banned_names_in_strings_do_not_trip() {
        let src = "\
// lint: hot_path
fn hot() { let s = \"x.to_string() vec![] format!\"; }
fn lib() { let m = \"don't panic!('x') or .unwrap()\"; }
";
        assert!(findings(src).is_empty());
    }
}
