//! Typed findings and the two report surfaces: a terminal table and a
//! structured JSON document with CI-meaningful exit codes (the
//! verdict/report/exit-code shape of notar-verify-style gates).

use std::collections::BTreeMap;

/// Finding severity. Both levels gate CI (any finding is a nonzero
/// exit); the split is for triage ordering in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One typed finding: rule, location, severity, human detail, and the
/// offending source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    pub snippet: String,
    /// Witness call chain for the interprocedural rules, root first
    /// (`Engine::push (file:12)` → … → `.to_vec() (file:30)`); empty
    /// for the per-file rules.
    pub chain: Vec<String>,
}

/// Overall verdict of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Clean,
    Dirty,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Clean => "CLEAN",
            Verdict::Dirty => "DIRTY",
        }
    }
}

/// A full lint run's result.
#[derive(Debug)]
pub struct Report {
    pub root: String,
    pub files_scanned: usize,
    pub rules: Vec<String>,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn verdict(&self) -> Verdict {
        if self.findings.is_empty() {
            Verdict::Clean
        } else {
            Verdict::Dirty
        }
    }

    /// Process exit code: 0 clean, 1 findings. (2 is reserved for
    /// usage/IO errors, issued by the CLI.)
    pub fn exit_code(&self) -> i32 {
        match self.verdict() {
            Verdict::Clean => 0,
            Verdict::Dirty => 1,
        }
    }

    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// Renders the terminal table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "vcaml-lint: {} files scanned, 0 findings — {}\n",
                self.files_scanned,
                self.verdict().as_str()
            ));
            return out;
        }
        let headers = ["RULE", "SEV", "LOCATION", "DETAIL"];
        let rows: Vec<[String; 4]> = self
            .findings
            .iter()
            .map(|f| {
                [
                    f.rule.to_string(),
                    f.severity.as_str().to_string(),
                    format!("{}:{}", f.file, f.line),
                    f.message.clone(),
                ]
            })
            .collect();
        let mut width = [0usize; 3];
        for (i, w) in width.iter_mut().enumerate() {
            *w = headers[i].len();
            for r in &rows {
                *w = (*w).max(r[i].chars().count());
            }
        }
        let rule = |out: &mut String| {
            for w in width {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push_str("---------\n");
        };
        let line = |out: &mut String, cells: [&str; 4]| {
            for (i, w) in width.iter().enumerate() {
                out.push(' ');
                out.push_str(cells[i]);
                out.push_str(&" ".repeat(w.saturating_sub(cells[i].chars().count()) + 1));
                out.push('|');
            }
            out.push(' ');
            out.push_str(cells[3]);
            out.push('\n');
        };
        rule(&mut out);
        line(&mut out, [headers[0], headers[1], headers[2], headers[3]]);
        rule(&mut out);
        for r in &rows {
            line(&mut out, [&r[0], &r[1], &r[2], &r[3]]);
        }
        rule(&mut out);
        out.push_str(&format!(
            "vcaml-lint: {} files scanned, {} finding(s) — {}\n",
            self.files_scanned,
            self.findings.len(),
            self.verdict().as_str()
        ));
        for (rule, n) in self.by_rule() {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
        out
    }

    /// Renders the JSON report (hand-rolled: the linter is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"vcaml-lint\",\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"rules\": [");
        s.push_str(
            &self
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
                 \"message\": {}, \"snippet\": {}, \"chain\": [{}]}}{}\n",
                json_str(f.rule),
                json_str(f.severity.as_str()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet),
                f.chain
                    .iter()
                    .map(|c| json_str(c))
                    .collect::<Vec<_>>()
                    .join(", "),
                if i + 1 == self.findings.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"summary\": {");
        s.push_str(
            &self
                .by_rule()
                .iter()
                .map(|(r, n)| format!("{}: {}", json_str(r), n))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("},\n");
        s.push_str(&format!("  \"total_findings\": {},\n", self.findings.len()));
        s.push_str(&format!(
            "  \"verdict\": {}\n",
            json_str(self.verdict().as_str())
        ));
        s.push_str("}\n");
        s
    }
}

/// Result of a baseline comparison ([`compare`]).
#[derive(Debug, Default)]
pub struct CompareResult {
    /// `(rule, file, line)` keys present in the new report but not the
    /// baseline — a CI failure.
    pub new_findings: Vec<String>,
    /// Rules with a nonzero baseline count that dropped to zero —
    /// possible silent rule decay (resolver bug), surfaced as a
    /// warning.
    pub disappeared_rules: Vec<String>,
}

impl CompareResult {
    /// CI gate: fail only on new findings; disappearance warns.
    pub fn is_regression(&self) -> bool {
        !self.new_findings.is_empty()
    }
}

/// Compares two JSON reports (as written by [`Report::to_json`]).
/// Line-oriented: each finding is one line, so no JSON parser is
/// needed (the linter stays dependency-free).
pub fn compare(baseline: &str, current: &str) -> CompareResult {
    let old = finding_keys(baseline);
    let new = finding_keys(current);
    let mut out = CompareResult::default();
    for key in &new {
        if !old.contains(key) {
            out.new_findings.push(key.clone());
        }
    }
    let count_by_rule = |keys: &[String]| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        for k in keys {
            if let Some(rule) = k.split(' ').next() {
                *m.entry(rule.to_string()).or_insert(0) += 1;
            }
        }
        m
    };
    let old_counts = count_by_rule(&old);
    let new_counts = count_by_rule(&new);
    for (rule, n) in &old_counts {
        if *n > 0 && new_counts.get(rule).copied().unwrap_or(0) == 0 {
            out.disappeared_rules.push(rule.clone());
        }
    }
    out
}

/// `rule file:line` keys for every finding line of a JSON report.
fn finding_keys(json: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rule) = extract_str(line, "\"rule\": \"") else {
            continue;
        };
        let Some(file) = extract_str(line, "\"file\": \"") else {
            continue;
        };
        let Some(ln) = extract_num(line, "\"line\": ") else {
            continue;
        };
        out.push(format!("{rule} {file}:{ln}"));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<u64> {
    let start = line.find(key)? + key.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            root: "/tmp/x".into(),
            files_scanned: 3,
            rules: vec!["no-unwrap-in-lib".into()],
            findings,
        }
    }

    fn finding() -> Finding {
        Finding {
            rule: "no-unwrap-in-lib",
            severity: Severity::Warning,
            file: "crates/core/src/api.rs".into(),
            line: 42,
            message: "msg with \"quotes\"".into(),
            snippet: "x.unwrap()".into(),
            chain: vec![],
        }
    }

    #[test]
    fn verdict_and_exit_codes() {
        assert_eq!(report(vec![]).exit_code(), 0);
        assert_eq!(report(vec![finding()]).exit_code(), 1);
        assert_eq!(report(vec![]).verdict(), Verdict::Clean);
    }

    #[test]
    fn json_escapes_and_shape() {
        let j = report(vec![finding()]).to_json();
        assert!(j.contains("\"verdict\": \"DIRTY\""));
        assert!(j.contains("msg with \\\"quotes\\\""));
        assert!(j.contains("\"total_findings\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn chain_serialized_in_json() {
        let mut f = finding();
        f.chain = vec!["a (x.rs:1)".into(), "`.to_vec()` (y.rs:2)".into()];
        let j = report(vec![f]).to_json();
        assert!(j.contains("\"chain\": [\"a (x.rs:1)\", \"`.to_vec()` (y.rs:2)\"]"));
    }

    #[test]
    fn compare_flags_new_findings_and_disappearances() {
        let mut a = finding();
        a.line = 1;
        let mut b = finding();
        b.rule = "hot-path-alloc";
        b.line = 9;
        let base = report(vec![a.clone(), b]).to_json();
        let mut c = finding();
        c.line = 7; // new location → regression
        let cur = report(vec![a, c]).to_json();
        let r = compare(&base, &cur);
        assert!(r.is_regression());
        assert_eq!(r.new_findings.len(), 1);
        assert!(r.new_findings[0].contains(":7"));
        // hot-path-alloc count went 1 → 0: disappeared-rule anomaly.
        assert_eq!(r.disappeared_rules, vec!["hot-path-alloc".to_string()]);
    }

    #[test]
    fn compare_identical_reports_is_clean() {
        let j = report(vec![finding()]).to_json();
        let r = compare(&j, &j);
        assert!(!r.is_regression());
        assert!(r.disappeared_rules.is_empty());
    }

    #[test]
    fn table_lists_findings() {
        let t = report(vec![finding()]).render_table();
        assert!(t.contains("crates/core/src/api.rs:42"));
        assert!(t.contains("DIRTY"));
        let clean = report(vec![]).render_table();
        assert!(clean.contains("CLEAN"));
    }
}
