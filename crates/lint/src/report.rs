//! Typed findings and the two report surfaces: a terminal table and a
//! structured JSON document with CI-meaningful exit codes (the
//! verdict/report/exit-code shape of notar-verify-style gates).

use std::collections::BTreeMap;

/// Finding severity. Both levels gate CI (any finding is a nonzero
/// exit); the split is for triage ordering in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One typed finding: rule, location, severity, human detail, and the
/// offending source line.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    pub snippet: String,
}

/// Overall verdict of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Clean,
    Dirty,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Clean => "CLEAN",
            Verdict::Dirty => "DIRTY",
        }
    }
}

/// A full lint run's result.
#[derive(Debug)]
pub struct Report {
    pub root: String,
    pub files_scanned: usize,
    pub rules: Vec<String>,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn verdict(&self) -> Verdict {
        if self.findings.is_empty() {
            Verdict::Clean
        } else {
            Verdict::Dirty
        }
    }

    /// Process exit code: 0 clean, 1 findings. (2 is reserved for
    /// usage/IO errors, issued by the CLI.)
    pub fn exit_code(&self) -> i32 {
        match self.verdict() {
            Verdict::Clean => 0,
            Verdict::Dirty => 1,
        }
    }

    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// Renders the terminal table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.findings.is_empty() {
            out.push_str(&format!(
                "vcaml-lint: {} files scanned, 0 findings — {}\n",
                self.files_scanned,
                self.verdict().as_str()
            ));
            return out;
        }
        let headers = ["RULE", "SEV", "LOCATION", "DETAIL"];
        let rows: Vec<[String; 4]> = self
            .findings
            .iter()
            .map(|f| {
                [
                    f.rule.to_string(),
                    f.severity.as_str().to_string(),
                    format!("{}:{}", f.file, f.line),
                    f.message.clone(),
                ]
            })
            .collect();
        let mut width = [0usize; 3];
        for (i, w) in width.iter_mut().enumerate() {
            *w = headers[i].len();
            for r in &rows {
                *w = (*w).max(r[i].chars().count());
            }
        }
        let rule = |out: &mut String| {
            for w in width {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push_str("---------\n");
        };
        let line = |out: &mut String, cells: [&str; 4]| {
            for (i, w) in width.iter().enumerate() {
                out.push(' ');
                out.push_str(cells[i]);
                out.push_str(&" ".repeat(w.saturating_sub(cells[i].chars().count()) + 1));
                out.push('|');
            }
            out.push(' ');
            out.push_str(cells[3]);
            out.push('\n');
        };
        rule(&mut out);
        line(&mut out, [headers[0], headers[1], headers[2], headers[3]]);
        rule(&mut out);
        for r in &rows {
            line(&mut out, [&r[0], &r[1], &r[2], &r[3]]);
        }
        rule(&mut out);
        out.push_str(&format!(
            "vcaml-lint: {} files scanned, {} finding(s) — {}\n",
            self.files_scanned,
            self.findings.len(),
            self.verdict().as_str()
        ));
        for (rule, n) in self.by_rule() {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
        out
    }

    /// Renders the JSON report (hand-rolled: the linter is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"vcaml-lint\",\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"rules\": [");
        s.push_str(
            &self
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("],\n");
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \
                 \"message\": {}, \"snippet\": {}}}{}\n",
                json_str(f.rule),
                json_str(f.severity.as_str()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet),
                if i + 1 == self.findings.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"summary\": {");
        s.push_str(
            &self
                .by_rule()
                .iter()
                .map(|(r, n)| format!("{}: {}", json_str(r), n))
                .collect::<Vec<_>>()
                .join(", "),
        );
        s.push_str("},\n");
        s.push_str(&format!("  \"total_findings\": {},\n", self.findings.len()));
        s.push_str(&format!(
            "  \"verdict\": {}\n",
            json_str(self.verdict().as_str())
        ));
        s.push_str("}\n");
        s
    }
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            root: "/tmp/x".into(),
            files_scanned: 3,
            rules: vec!["no-unwrap-in-lib".into()],
            findings,
        }
    }

    fn finding() -> Finding {
        Finding {
            rule: "no-unwrap-in-lib",
            severity: Severity::Warning,
            file: "crates/core/src/api.rs".into(),
            line: 42,
            message: "msg with \"quotes\"".into(),
            snippet: "x.unwrap()".into(),
        }
    }

    #[test]
    fn verdict_and_exit_codes() {
        assert_eq!(report(vec![]).exit_code(), 0);
        assert_eq!(report(vec![finding()]).exit_code(), 1);
        assert_eq!(report(vec![]).verdict(), Verdict::Clean);
    }

    #[test]
    fn json_escapes_and_shape() {
        let j = report(vec![finding()]).to_json();
        assert!(j.contains("\"verdict\": \"DIRTY\""));
        assert!(j.contains("msg with \\\"quotes\\\""));
        assert!(j.contains("\"total_findings\": 1"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn table_lists_findings() {
        let t = report(vec![finding()]).render_table();
        assert!(t.contains("crates/core/src/api.rs:42"));
        assert!(t.contains("DIRTY"));
        let clean = report(vec![]).render_table();
        assert!(clean.contains("CLEAN"));
    }
}
