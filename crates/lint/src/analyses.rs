//! The interprocedural analyses over the workspace call graph
//! ([`crate::graph`]): transitive hot-path allocation, panic
//! reachability from hot roots, held-guard propagation across calls,
//! and the global lock-order graph with cycle (deadlock) detection.
//!
//! All four share one shape: **local facts** are extracted per
//! function (allocation sites, panic sites, blocking sites, lock
//! acquisitions), then propagated **bottom-up** over the SCC-condensed
//! call graph (Tarjan emission order is callees-first; within an SCC a
//! bounded fixpoint runs). Every finding carries a witness chain
//! `root (file:line) → helper (file:line) → .to_vec() (file:line)`.
//!
//! ## Suppression model
//!
//! * A **site** allow kills the fact at its source: an allocation line
//!   allowed for `hot-path-alloc` (or `-transitive`) contributes no
//!   transitive fact; a panic line allowed for `no-unwrap-in-lib` (or
//!   `panic-path`) likewise — a justified local allow means there is
//!   nothing to upgrade.
//! * An **edge** allow cuts propagation: an allow on a *call-site*
//!   line (for the transitive rule) severs that edge for both summary
//!   propagation and reporting — the per-edge escape hatch.

use crate::graph::{CallEdge, Graph};
use crate::model::{FileModel, FileRole};
use crate::report::Finding;
use crate::rules::{alloc_at, is_wait_point, severity, walk_guards, GuardEvent};
use std::collections::{BTreeMap, BTreeSet};

/// A local fact site: line + display form for witness chains.
#[derive(Debug, Clone)]
struct Site {
    line: u32,
    desc: String,
}

/// Per-node local facts.
#[derive(Default)]
struct Facts {
    /// Allocation sites (suppressed sites excluded).
    alloc: Vec<Site>,
    /// Panic sites: `.unwrap()` / `.expect()` / `panic!` in library
    /// code (suppressed sites excluded).
    panic: Vec<Site>,
    /// Blocking sites: `.send()` / `.recv()` / `.wait()`…
    wait: Vec<Site>,
    /// Lock acquisitions: (normalized lock id, site).
    acquires: Vec<(String, Site)>,
    /// Call heads reached while ≥1 guard held:
    /// (absolute token index, held lock ids, line).
    held_calls: Vec<(usize, Vec<String>, u32)>,
    /// Intra-fn lock-order edges: (held lock, newly acquired lock,
    /// acquisition line).
    order: Vec<(String, String, u32)>,
}

/// How a node came to carry a transitive property — the witness-chain
/// link. `Via` pointers always target a node marked in an earlier
/// fixpoint step, so chains are acyclic even inside SCCs.
#[derive(Debug, Clone)]
enum Reason {
    Local(Site),
    Via { line: u32, to: usize },
}

/// Runs all four graph analyses (honoring rule selection) and appends
/// findings.
pub(crate) fn run(files: &[FileModel], graph: &Graph, selected: &[String], out: &mut Vec<Finding>) {
    let on = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let facts = collect_facts(files, graph);
    if on("hot-path-alloc-transitive") {
        let reasons = propagate(
            files,
            graph,
            &facts,
            |f| &f.alloc,
            &["hot-path-alloc-transitive", "hot-path-alloc"],
        );
        report_hot_roots(
            files,
            graph,
            &reasons,
            "hot-path-alloc-transitive",
            &["hot-path-alloc-transitive", "hot-path-alloc"],
            "reaches an allocation",
            out,
        );
    }
    if on("panic-path") {
        let reasons = propagate(files, graph, &facts, |f| &f.panic, &["panic-path"]);
        report_hot_roots(
            files,
            graph,
            &reasons,
            "panic-path",
            &["panic-path"],
            "reaches a panic site",
            out,
        );
        report_local_panics_in_hot(files, graph, &facts, out);
    }
    let lock_rules: &[&str] = &["lock-discipline-transitive", "lock-discipline"];
    if on("lock-discipline-transitive") {
        let reasons = propagate(files, graph, &facts, |f| &f.wait, lock_rules);
        report_held_calls(files, graph, &facts, &reasons, lock_rules, out);
    }
    if on("lock-order-cycle") {
        report_lock_cycles(files, graph, &facts, out);
    }
}

/// Local fact extraction for every node.
fn collect_facts(files: &[FileModel], graph: &Graph) -> Vec<Facts> {
    let mut out = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let f = &files[node.file];
        let fun = &f.fns[node.fn_idx];
        let mut facts = Facts::default();
        if node.test {
            out.push(facts);
            continue;
        }
        let nested = crate::graph::nested_fn_ranges(f, fun);
        let toks = &f.tokens;
        let mut i = fun.body.start;
        while i < fun.body.end {
            if let Some(r) = nested.iter().find(|r| r.contains(&i)) {
                i = r.end;
                continue;
            }
            let line = toks[i].line;
            if let Some((display, _)) = alloc_at(toks, i) {
                if !f.allowed("hot-path-alloc", line)
                    && !f.allowed("hot-path-alloc-transitive", line)
                {
                    facts.alloc.push(Site {
                        line,
                        desc: format!("`{display}`"),
                    });
                }
            }
            if f.role == FileRole::Lib {
                let t = &toks[i];
                let panic_desc = if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    Some(format!("`.{}()`", t.text))
                } else if t.is_ident("panic") && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    Some("`panic!`".to_string())
                } else {
                    None
                };
                if let Some(desc) = panic_desc {
                    if !f.allowed("no-unwrap-in-lib", line) && !f.allowed("panic-path", line) {
                        facts.panic.push(Site { line, desc });
                    }
                }
            }
            if is_wait_point(toks, i)
                && !f.allowed("lock-discipline", line)
                && !f.allowed("lock-discipline-transitive", line)
            {
                facts.wait.push(Site {
                    line,
                    desc: format!("`.{}()`", toks[i].text),
                });
            }
            i += 1;
        }
        walk_guards(f, fun, &mut |held, ev| match ev {
            GuardEvent::Acquire { guard } => {
                let line = guard.line;
                if !f.allowed("lock-order-cycle", line) {
                    facts.acquires.push((
                        guard.lock.clone(),
                        Site {
                            line,
                            desc: format!("`{}`", guard.lock),
                        },
                    ));
                    for h in held {
                        facts.order.push((h.lock.clone(), guard.lock.clone(), line));
                    }
                }
            }
            GuardEvent::Call { tok } => {
                facts.held_calls.push((
                    tok,
                    held.iter().map(|g| g.lock.clone()).collect(),
                    toks[tok].line,
                ));
            }
            GuardEvent::Wait { .. } => {}
        });
        out.push(facts);
    }
    out
}

/// True when the caller's file allows any of `rules` on the call-site
/// line — the per-edge escape hatch.
fn edge_cut(files: &[FileModel], graph: &Graph, e: &CallEdge, rules: &[&str]) -> bool {
    let f = &files[graph.nodes[e.from].file];
    rules.iter().any(|r| f.allowed(r, e.line))
}

/// Bottom-up may-reach propagation over the SCC condensation: a node
/// carries a [`Reason`] when it has a local fact or a non-cut edge to
/// a carrying node. SCC members converge via a bounded fixpoint.
fn propagate(
    files: &[FileModel],
    graph: &Graph,
    facts: &[Facts],
    local: impl Fn(&Facts) -> &Vec<Site>,
    cut_rules: &[&str],
) -> Vec<Option<Reason>> {
    let mut reasons: Vec<Option<Reason>> = vec![None; graph.nodes.len()];
    for scc in &graph.sccs {
        // Bounded fixpoint: each pass marks ≥1 new member or stops, so
        // |scc| passes suffice.
        for _ in 0..scc.len() {
            let mut changed = false;
            for &n in scc {
                if reasons[n].is_some() {
                    continue;
                }
                if let Some(site) = local(&facts[n]).first() {
                    reasons[n] = Some(Reason::Local(site.clone()));
                    changed = true;
                    continue;
                }
                for e in &graph.out[n] {
                    if edge_cut(files, graph, e, cut_rules) {
                        continue;
                    }
                    if reasons[e.to].is_some() {
                        reasons[n] = Some(Reason::Via {
                            line: e.line,
                            to: e.to,
                        });
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    reasons
}

/// Renders the witness chain for an edge out of `root`:
/// `root (file:call-line) → … → leaf-fn (file:line) → site (file:line)`.
fn chain_for(
    files: &[FileModel],
    graph: &Graph,
    reasons: &[Option<Reason>],
    root: usize,
    edge: &CallEdge,
) -> Vec<String> {
    let step = |n: usize, line: u32| {
        format!(
            "{} ({}:{})",
            graph.nodes[n].label(),
            files[graph.nodes[n].file].path,
            line
        )
    };
    let mut out = vec![step(root, edge.line)];
    let mut n = edge.to;
    loop {
        match &reasons[n] {
            Some(Reason::Local(site)) => {
                out.push(step(n, site.line));
                out.push(format!(
                    "{} ({}:{})",
                    site.desc, files[graph.nodes[n].file].path, site.line
                ));
                return out;
            }
            Some(Reason::Via { line, to }) => {
                out.push(step(n, *line));
                n = *to;
            }
            None => return out, // unreachable by construction
        }
    }
}

/// Findings for hot roots whose callees carry the property: one
/// finding per offending edge (so a per-edge allow silences exactly
/// that edge), anchored at the call-site line.
fn report_hot_roots(
    files: &[FileModel],
    graph: &Graph,
    reasons: &[Option<Reason>],
    rule: &'static str,
    cut_rules: &[&str],
    what: &str,
    out: &mut Vec<Finding>,
) {
    for (n, node) in graph.nodes.iter().enumerate() {
        if !node.hot || node.test {
            continue;
        }
        let f = &files[node.file];
        for e in &graph.out[n] {
            if edge_cut(files, graph, e, cut_rules) || reasons[e.to].is_none() {
                continue;
            }
            let chain = chain_for(files, graph, reasons, n, e);
            out.push(Finding {
                rule,
                severity: severity(rule),
                file: f.path.clone(),
                line: e.line,
                message: format!(
                    "hot path `{}` {} through `{}`: {}",
                    node.label(),
                    what,
                    graph.nodes[e.to].label(),
                    chain.join(" → ")
                ),
                snippet: f.snippet(e.line),
                chain,
            });
        }
    }
}

/// `panic-path` also covers the degenerate chain: a panic site *in*
/// the hot fn itself upgrades the `no-unwrap-in-lib` warning to an
/// error (suppressed sites carry no fact, hence no upgrade).
fn report_local_panics_in_hot(
    files: &[FileModel],
    graph: &Graph,
    facts: &[Facts],
    out: &mut Vec<Finding>,
) {
    for (n, node) in graph.nodes.iter().enumerate() {
        if !node.hot || node.test {
            continue;
        }
        let f = &files[node.file];
        for site in &facts[n].panic {
            let chain = vec![
                format!("{} ({}:{})", node.label(), f.path, site.line),
                format!("{} ({}:{})", site.desc, f.path, site.line),
            ];
            out.push(Finding {
                rule: "panic-path",
                severity: severity("panic-path"),
                file: f.path.clone(),
                line: site.line,
                message: format!(
                    "{} in hot path `{}` — a per-packet panic is an outage, not a bug report",
                    site.desc,
                    node.label()
                ),
                snippet: f.snippet(site.line),
                chain,
            });
        }
    }
}

/// `lock-discipline-transitive`: a call made while a guard is held,
/// into a callee that (transitively) blocks on a channel/condvar.
fn report_held_calls(
    files: &[FileModel],
    graph: &Graph,
    facts: &[Facts],
    reasons: &[Option<Reason>],
    cut_rules: &[&str],
    out: &mut Vec<Finding>,
) {
    for (n, node) in graph.nodes.iter().enumerate() {
        if node.test {
            continue;
        }
        let f = &files[node.file];
        for (tok, held, line) in &facts[n].held_calls {
            if cut_rules.iter().any(|r| f.allowed(r, *line)) {
                continue;
            }
            let Some(e) = graph.out[n].iter().find(|e| e.tok == *tok) else {
                continue;
            };
            if reasons[e.to].is_none() {
                continue;
            }
            let chain = chain_for(files, graph, reasons, n, e);
            out.push(Finding {
                rule: "lock-discipline-transitive",
                severity: severity("lock-discipline-transitive"),
                file: f.path.clone(),
                line: *line,
                message: format!(
                    "call to `{}` while guard on `{}` is held in `{}` reaches a blocking \
                     operation: {}",
                    graph.nodes[e.to].label(),
                    held.join("`, `"),
                    node.label(),
                    chain.join(" → ")
                ),
                snippet: f.snippet(*line),
                chain,
            });
        }
    }
}

/// `lock-order-cycle`: builds the global lock-order graph (held → next
/// acquired, both intra-fn and through calls) and reports one finding
/// per cyclic SCC — the potential-deadlock shape.
fn report_lock_cycles(files: &[FileModel], graph: &Graph, facts: &[Facts], out: &mut Vec<Finding>) {
    // Transitive acquire sets, bottom-up (lock-rule edge cuts apply).
    let cut_rules: &[&str] = &["lock-discipline-transitive", "lock-discipline"];
    let mut acq: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.nodes.len()];
    for scc in &graph.sccs {
        for _ in 0..scc.len().max(1) {
            let mut changed = false;
            for &n in scc {
                let mut next: BTreeSet<String> =
                    facts[n].acquires.iter().map(|(l, _)| l.clone()).collect();
                for e in &graph.out[n] {
                    if edge_cut(files, graph, e, cut_rules) {
                        continue;
                    }
                    next.extend(acq[e.to].iter().cloned());
                }
                if next.len() != acq[n].len() {
                    acq[n] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    // Order edges: lock → lock, annotated with the first witness site.
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        if node.test {
            continue;
        }
        let f = &files[node.file];
        for (held, acquired, line) in &facts[n].order {
            edges
                .entry((held.clone(), acquired.clone()))
                .or_insert_with(|| (f.path.clone(), *line, node.label()));
        }
        for (tok, held, line) in &facts[n].held_calls {
            if cut_rules.iter().any(|r| f.allowed(r, *line)) {
                continue;
            }
            let Some(e) = graph.out[n].iter().find(|e| e.tok == *tok) else {
                continue;
            };
            for h in held {
                for t in &acq[e.to] {
                    if t != h {
                        edges
                            .entry((h.clone(), t.clone()))
                            .or_insert_with(|| (f.path.clone(), *line, node.label()));
                    }
                }
            }
        }
    }
    for cycle in find_cycles(&edges) {
        // Anchor at the smallest (file, line) among the cycle's edges.
        let sites: Vec<&(String, u32, String)> = cycle
            .windows(2)
            .filter_map(|w| edges.get(&(w[0].clone(), w[1].clone())))
            .collect();
        let Some(anchor) = sites.iter().min_by_key(|(p, l, _)| (p.clone(), *l)) else {
            continue;
        };
        let Some(f) = files.iter().find(|f| f.path == anchor.0) else {
            continue;
        };
        if f.allowed("lock-order-cycle", anchor.1) {
            continue;
        }
        let chain: Vec<String> = cycle
            .windows(2)
            .filter_map(|w| {
                edges.get(&(w[0].clone(), w[1].clone())).map(|(p, l, ctx)| {
                    format!("`{}` → `{}` ({}:{}, in `{}`)", w[0], w[1], p, l, ctx)
                })
            })
            .collect();
        out.push(Finding {
            rule: "lock-order-cycle",
            severity: severity("lock-order-cycle"),
            file: anchor.0.clone(),
            line: anchor.1,
            message: format!(
                "lock-order cycle (potential deadlock): {} — acquisition order must be \
                 globally consistent",
                chain.join(", ")
            ),
            snippet: f.snippet(anchor.1),
            chain,
        });
    }
}

/// One representative cycle per cyclic SCC of the lock-order graph,
/// canonicalized to start at the smallest lock id. Returned as
/// `[a, b, …, a]` (first repeated at the end).
#[allow(clippy::type_complexity)]
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32, String)>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for (a, b) in edges.keys() {
        nodes.insert(a);
        nodes.insert(b);
    }
    let ids: Vec<&String> = nodes.into_iter().collect();
    let index: BTreeMap<&String, usize> = ids.iter().enumerate().map(|(i, s)| (*s, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (a, b) in edges.keys() {
        adj[index[a]].push(index[b]);
    }
    // SCCs of the lock graph via simple Kosaraju-free approach:
    // repeated DFS cycle-finding from each unvisited smallest node,
    // restricted by reachability. Lock graphs are tiny (≤ dozens of
    // locks), so an O(V·E) path search per node is fine.
    let mut cycles = Vec::new();
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    for start in 0..ids.len() {
        if covered.contains(&start) {
            continue;
        }
        // DFS for a path start → … → start.
        if let Some(path) = cycle_from(start, &adj) {
            for &n in &path {
                covered.insert(n);
            }
            let mut cycle: Vec<String> = path.iter().map(|&n| ids[n].clone()).collect();
            cycle.push(ids[start].clone());
            cycles.push(cycle);
        }
    }
    cycles
}

/// DFS path from `start` back to `start` (length ≥ 1 edges), if any.
fn cycle_from(start: usize, adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
    let mut path: Vec<usize> = vec![start];
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    visited.insert(start);
    while let Some(&mut (v, ref mut ei)) = stack.last_mut() {
        if let Some(&w) = adj[v].get(*ei) {
            *ei += 1;
            if w == start {
                return Some(path);
            }
            if visited.insert(w) {
                stack.push((w, 0));
                path.push(w);
            }
        } else {
            stack.pop();
            path.pop();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build as build_model;
    use crate::rules::run_all;
    use std::path::Path;

    fn findings(src: &str) -> Vec<Finding> {
        let m = build_model("x.rs", Path::new("crates/x/src/x.rs"), src);
        run_all(std::slice::from_ref(&m), &[])
    }

    #[test]
    fn transitive_alloc_flagged_with_chain() {
        let src = "\
// lint: hot_path
fn root(x: u32) { helper(x); }
fn helper(x: u32) { let s = x.to_string(); }
";
        let f = findings(src);
        let hit = f
            .iter()
            .find(|f| f.rule == "hot-path-alloc-transitive")
            .expect("transitive finding");
        assert_eq!(hit.line, 2);
        assert_eq!(hit.chain.len(), 3);
        assert!(hit.chain[0].starts_with("root "));
        assert!(hit.chain[1].starts_with("helper "));
        assert!(hit.chain[2].contains(".to_string()"));
    }

    #[test]
    fn two_level_chain_resolves() {
        let src = "\
// lint: hot_path
fn root() { mid(); }
fn mid() { leaf(); }
fn leaf() { let v = Vec::new(); }
";
        let f = findings(src);
        let hit = f
            .iter()
            .find(|f| f.rule == "hot-path-alloc-transitive")
            .expect("transitive finding");
        assert_eq!(hit.chain.len(), 4);
        assert!(hit.chain[3].contains("Vec::new"));
    }

    #[test]
    fn edge_allow_cuts_propagation() {
        let src = "\
// lint: hot_path
fn root() {
    helper(); // lint: allow(hot-path-alloc-transitive) -- seal path, cold by contract
}
fn helper() { let s = a.to_owned(); }
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "hot-path-alloc-transitive"));
    }

    #[test]
    fn site_allow_kills_the_fact() {
        let src = "\
// lint: hot_path
fn root() { helper(); }
fn helper() {
    let s = a.to_owned(); // lint: allow(hot-path-alloc) -- warmup only
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "hot-path-alloc-transitive"));
    }

    #[test]
    fn recursion_scc_converges() {
        let src = "\
// lint: hot_path
fn root() { a(); }
fn a() { b(); }
fn b() { a(); let v = vec![1]; }
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "hot-path-alloc-transitive"));
    }

    #[test]
    fn panic_path_upgrades_and_chains() {
        let src = "\
// lint: hot_path
fn root(x: Option<u32>) { helper(x); x.expect(\"set\"); }
fn helper(x: Option<u32>) { x.unwrap(); }
";
        let f = findings(src);
        // Transitive: root → helper → .unwrap()
        let trans = f
            .iter()
            .find(|f| f.rule == "panic-path" && !f.chain.is_empty() && f.chain.len() == 3)
            .expect("transitive panic finding");
        assert!(trans.chain[2].contains(".unwrap()"));
        // Local upgrade: .expect() in the hot fn itself.
        assert!(f
            .iter()
            .any(|f| f.rule == "panic-path" && f.line == 2 && f.message.contains(".expect()")));
        // The warning-level rule still fires alongside.
        assert!(f.iter().any(|f| f.rule == "no-unwrap-in-lib"));
    }

    #[test]
    fn transitive_lock_wait_flagged() {
        let src = "\
struct W { q: Mutex }
impl W {
    fn pump(&self, rx: &Receiver<u32>) {
        let g = self.q.lock().ok();
        self.drain(rx);
    }
    fn drain(&self, rx: &Receiver<u32>) { let _ = rx.recv(); }
}
";
        let f = findings(src);
        let hit = f
            .iter()
            .find(|f| f.rule == "lock-discipline-transitive")
            .expect("transitive lock finding");
        assert_eq!(hit.line, 5);
        assert!(hit.message.contains("W::q"));
        assert!(hit.chain.iter().any(|c| c.contains(".recv()")));
    }

    #[test]
    fn lock_order_cycle_across_two_fns() {
        let src = "\
struct S { a: Mutex, b: Mutex }
impl S {
    fn fwd(&self) {
        let g1 = self.a.lock().ok();
        let g2 = self.b.lock().ok();
    }
    fn rev(&self) {
        let g2 = self.b.lock().ok();
        let g1 = self.a.lock().ok();
    }
}
";
        let f = findings(src);
        let hit = f
            .iter()
            .find(|f| f.rule == "lock-order-cycle")
            .expect("cycle finding");
        assert!(hit.message.contains("S::a"));
        assert!(hit.message.contains("S::b"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "\
struct S { a: Mutex, b: Mutex }
impl S {
    fn f1(&self) { let g1 = self.a.lock().ok(); let g2 = self.b.lock().ok(); }
    fn f2(&self) { let g1 = self.a.lock().ok(); let g2 = self.b.lock().ok(); }
}
";
        let f = findings(src);
        assert!(!f.iter().any(|f| f.rule == "lock-order-cycle"));
    }

    #[test]
    fn cycle_through_a_call_detected() {
        let src = "\
struct S { a: Mutex, b: Mutex }
impl S {
    fn outer(&self) {
        let g = self.a.lock().ok();
        self.inner_acquire();
    }
    fn inner_acquire(&self) { let g = self.b.lock().ok(); }
    fn other(&self) {
        let g = self.b.lock().ok();
        let h = self.a.lock().ok();
    }
}
";
        let f = findings(src);
        assert!(f.iter().any(|f| f.rule == "lock-order-cycle"));
    }
}
