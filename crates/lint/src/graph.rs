//! Workspace symbol table and call graph: every `fn` becomes a node,
//! call sites are resolved into edges (direct calls, method calls via
//! a receiver-type heuristic, `Self::`/path-qualified calls), and the
//! graph is condensed into SCCs so the transitive analyses in
//! [`crate::analyses`] can propagate summaries bottom-up.
//!
//! ## Resolver limits (by design)
//!
//! The resolver is a heuristic over the lexer/model output, not a type
//! checker. Every limit degrades to an **explicit unresolved edge**
//! (never a silent drop, never a guessed edge):
//!
//! * Receiver types come from `self` (impl owner), typed params,
//!   `let x: T` / `let x = T::new(…)` bindings, and struct field
//!   types — chained call results (`a().b()`), tuple fields, and
//!   trait objects stay untyped.
//! * An untyped receiver resolves only when exactly one workspace
//!   method bears the name and the name is not a common std method
//!   (`push`, `insert`, …); several candidates → `ambiguous`.
//! * A *typed* receiver whose type has no workspace method of that
//!   name is `external` (e.g. `Vec::push`) — never name-matched.
//! * No trait fan-out: `dyn Trait` / generic-bound calls do not edge
//!   to every implementor; they resolve by the rules above or go
//!   unresolved.

use crate::lexer::{TokKind, Token};
use crate::model::{type_base, FileModel, FileRole, FnSpan};
use std::collections::BTreeMap;

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index into the `FileModel` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
    pub name: String,
    pub owner: Option<String>,
    pub trait_name: Option<String>,
    pub line: u32,
    pub hot: bool,
    pub test: bool,
    pub role: FileRole,
}

impl FnNode {
    /// `Owner::name` display form.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(x)`
    Direct,
    /// `recv.method(x)`
    Method,
    /// `Type::method(x)` / `module::helper(x)`
    Path,
    /// `Self::method(x)`
    SelfQualified,
}

impl CallKind {
    pub fn as_str(self) -> &'static str {
        match self {
            CallKind::Direct => "direct",
            CallKind::Method => "method",
            CallKind::Path => "path",
            CallKind::SelfQualified => "self",
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct CallEdge {
    pub from: usize,
    pub to: usize,
    pub kind: CallKind,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
    /// Absolute token index of the callee-name token in the caller's
    /// file — the join key the lock analyses use to match guard-held
    /// call events to edges.
    pub tok: usize,
}

/// Why a call site could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnresolvedKind {
    /// Outside the workspace (std/shim method on a known type, or no
    /// workspace candidate at all).
    External,
    /// Several workspace candidates and no receiver type to pick one.
    Ambiguous,
}

impl UnresolvedKind {
    pub fn as_str(self) -> &'static str {
        match self {
            UnresolvedKind::External => "external",
            UnresolvedKind::Ambiguous => "ambiguous",
        }
    }
}

/// One unresolved call site — kept explicit so resolver decay is
/// observable in the emitted graph.
#[derive(Debug, Clone)]
pub struct UnresolvedEdge {
    pub from: usize,
    pub name: String,
    pub kind: UnresolvedKind,
    pub line: u32,
    /// Number of workspace candidates (0 for external).
    pub candidates: usize,
}

/// The workspace call graph plus its SCC condensation.
pub struct Graph {
    pub nodes: Vec<FnNode>,
    /// Outgoing resolved edges per node, in call-site order.
    pub out: Vec<Vec<CallEdge>>,
    pub unresolved: Vec<UnresolvedEdge>,
    /// SCCs in emission order: every edge leaving an SCC targets an
    /// earlier SCC (callees first), so iterating `sccs` front-to-back
    /// is the bottom-up summary order.
    pub sccs: Vec<Vec<usize>>,
    /// Node → index into `sccs`.
    pub scc_of: Vec<usize>,
}

/// Method names so common on std containers that an *untyped* receiver
/// must not be name-matched against workspace methods — a false edge
/// here would fabricate transitive findings.
const COMMON_STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "drain",
    "extend",
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "try_send",
    "lock",
    "unwrap",
    "expect",
    "take",
    "replace",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "into",
    "from",
    "new",
    "default",
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "fmt",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "min",
    "max",
    "abs",
    "load",
    "store",
    "fetch_add",
    "swap",
    "join",
    "spawn",
    "flush",
    "write",
    "read",
    "wait",
    "notify_one",
    "notify_all",
    "first",
    "last",
    "sort",
    "sort_by",
    "split",
    "trim",
    "parse",
    "abs_diff",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "count",
    "sum",
    "any",
    "all",
    "find",
    "filter",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "copied",
    "cloned",
    "get_or_insert_with",
    "retain",
    "starts_with",
    "ends_with",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "is_finite",
    "is_nan",
];

/// Keywords that read like `ident(` call heads but never are.
const CALL_HEAD_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "move", "unsafe", "let",
    "mut", "ref", "dyn", "use", "pub", "crate", "super", "where", "impl", "fn", "box", "yield",
];

/// True when `toks[k]` is the callee-name token of a call: an ident
/// immediately followed by `(`. Macro bangs (`name!(`) never match —
/// the `!` sits between.
pub fn is_call_head(toks: &[Token], k: usize) -> bool {
    toks[k].kind == TokKind::Ident && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
}

struct Indexes {
    /// (owner type, method name) → node ids.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Free-fn name → node ids.
    free: BTreeMap<String, Vec<usize>>,
    /// Method name (any owner) → node ids.
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Merged struct → field → base type map across the workspace.
    structs: BTreeMap<String, BTreeMap<String, String>>,
    /// File stem (`engine` for `…/engine.rs`) per file index.
    stems: Vec<String>,
}

impl Graph {
    /// Builds the graph over a set of file models.
    pub fn build(files: &[FileModel]) -> Graph {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (ni, fun) in f.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi,
                    fn_idx: ni,
                    name: fun.name.clone(),
                    owner: fun.owner.clone(),
                    trait_name: fun.trait_name.clone(),
                    line: fun.line,
                    hot: fun.hot,
                    test: fun.test,
                    role: f.role,
                });
            }
        }
        let idx = build_indexes(files, &nodes);
        let mut out = vec![Vec::new(); nodes.len()];
        let mut unresolved = Vec::new();
        for (n, node) in nodes.iter().enumerate() {
            let f = &files[node.file];
            let fun = &f.fns[node.fn_idx];
            resolve_fn(files, &nodes, &idx, n, f, fun, &mut out[n], &mut unresolved);
        }
        let (sccs, scc_of) = tarjan(nodes.len(), &out);
        Graph {
            nodes,
            out,
            unresolved,
            sccs,
            scc_of,
        }
    }

    /// Serializes the graph (for `--emit-callgraph`): hand-rolled JSON,
    /// one node/edge per line, deterministic.
    pub fn to_json(&self, files: &[FileModel]) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"tool\": \"vcaml-lint\",\n  \"kind\": \"callgraph\",\n");
        s.push_str("  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": {}, \"fn\": {}, \"owner\": {}, \"trait\": {}, \"file\": {}, \
                 \"line\": {}, \"hot\": {}, \"test\": {}}}{}\n",
                i,
                jstr(&n.name),
                opt_jstr(n.owner.as_deref()),
                opt_jstr(n.trait_name.as_deref()),
                jstr(&files[n.file].path),
                n.line,
                n.hot,
                n.test,
                comma(i, self.nodes.len())
            ));
        }
        s.push_str("  ],\n  \"edges\": [\n");
        let total: usize = self.out.iter().map(Vec::len).sum();
        let mut k = 0usize;
        for edges in &self.out {
            for e in edges {
                s.push_str(&format!(
                    "    {{\"from\": {}, \"to\": {}, \"kind\": {}, \"line\": {}}}{}\n",
                    e.from,
                    e.to,
                    jstr(e.kind.as_str()),
                    e.line,
                    comma(k, total)
                ));
                k += 1;
            }
        }
        s.push_str("  ],\n  \"unresolved\": [\n");
        for (i, u) in self.unresolved.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"from\": {}, \"name\": {}, \"category\": {}, \"line\": {}, \
                 \"candidates\": {}}}{}\n",
                u.from,
                jstr(&u.name),
                jstr(u.kind.as_str()),
                u.line,
                u.candidates,
                comma(i, self.unresolved.len())
            ));
        }
        s.push_str("  ],\n  \"sccs\": [");
        for (i, scc) in self.sccs.iter().enumerate() {
            if scc.len() > 1 {
                s.push_str(&format!(
                    "{}[{}]",
                    if i == 0 { "" } else { ", " },
                    scc.iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        s.push_str("],\n");
        let ext = self
            .unresolved
            .iter()
            .filter(|u| u.kind == UnresolvedKind::External)
            .count();
        s.push_str(&format!(
            "  \"counts\": {{\"nodes\": {}, \"edges\": {}, \"unresolved_external\": {}, \
             \"unresolved_ambiguous\": {}, \"sccs_nontrivial\": {}}}\n}}\n",
            self.nodes.len(),
            total,
            ext,
            self.unresolved.len() - ext,
            self.sccs.iter().filter(|s| s.len() > 1).count(),
        ));
        s
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn opt_jstr(s: Option<&str>) -> String {
    match s {
        Some(s) => jstr(s),
        None => "null".to_string(),
    }
}

fn build_indexes(files: &[FileModel], nodes: &[FnNode]) -> Indexes {
    let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (n, node) in nodes.iter().enumerate() {
        match &node.owner {
            Some(o) => {
                methods
                    .entry((o.clone(), node.name.clone()))
                    .or_default()
                    .push(n);
                methods_by_name
                    .entry(node.name.clone())
                    .or_default()
                    .push(n);
            }
            None => free.entry(node.name.clone()).or_default().push(n),
        }
    }
    let mut structs: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for f in files {
        for (name, fields) in &f.structs {
            let e = structs.entry(name.clone()).or_default();
            for (field, ty) in fields {
                e.entry(field.clone()).or_insert_with(|| ty.clone());
            }
        }
    }
    let stems = files
        .iter()
        .map(|f| {
            let file = f.path.rsplit('/').next().unwrap_or(&f.path);
            file.strip_suffix(".rs").unwrap_or(file).to_string()
        })
        .collect();
    Indexes {
        methods,
        free,
        methods_by_name,
        structs,
        stems,
    }
}

/// Token sub-ranges of `fun`'s body that belong to *nested* fn items —
/// their calls are attributed to the nested fn's own node, so the
/// outer walk skips them.
pub fn nested_fn_ranges(f: &FileModel, fun: &FnSpan) -> Vec<std::ops::Range<usize>> {
    f.fns
        .iter()
        .filter(|g| g.tok > fun.body.start && g.body.end <= fun.body.end)
        .map(|g| g.tok..g.body.end + 1)
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn resolve_fn(
    files: &[FileModel],
    nodes: &[FnNode],
    idx: &Indexes,
    n: usize,
    f: &FileModel,
    fun: &FnSpan,
    out: &mut Vec<CallEdge>,
    unresolved: &mut Vec<UnresolvedEdge>,
) {
    let env = local_types(f, fun, &idx.structs);
    let nested = nested_fn_ranges(f, fun);
    let toks = &f.tokens;
    let caller_test = fun.test;
    let mut k = fun.body.start;
    while k < fun.body.end {
        if let Some(r) = nested.iter().find(|r| r.contains(&k)) {
            k = r.end;
            continue;
        }
        if !is_call_head(toks, k) {
            k += 1;
            continue;
        }
        let t = &toks[k];
        let name = t.text.as_str();
        let prev = k.checked_sub(1).map(|p| &toks[p]);
        let resolution = if prev.is_some_and(|p| p.is_punct('.')) {
            resolve_method(files, nodes, idx, fun, &env, toks, k, caller_test)
        } else if k >= 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
            resolve_path(files, nodes, idx, fun, toks, k, caller_test)
        } else if prev.is_some_and(|p| p.is_ident("fn"))
            || (!t.raw && CALL_HEAD_KEYWORDS.contains(&name))
        {
            // Nested fn definition header, or a keyword head (`if (…)`,
            // `match (…)`) — never a call.
            Resolution::Skip
        } else {
            resolve_direct(files, nodes, idx, &env, f, name, caller_test)
        };
        match resolution {
            Resolution::Edge(to, kind) => out.push(CallEdge {
                from: n,
                to,
                kind,
                line: t.line,
                tok: k,
            }),
            Resolution::Unresolved(kind, candidates) => unresolved.push(UnresolvedEdge {
                from: n,
                name: name.to_string(),
                kind,
                line: t.line,
                candidates,
            }),
            Resolution::Skip => {}
        }
        k += 1;
    }
}

enum Resolution {
    Edge(usize, CallKind),
    Unresolved(UnresolvedKind, usize),
    Skip,
}

/// Narrows a candidate list: drop test fns for non-test callers, then
/// prefer a same-file candidate, then an inherent (non-trait) method.
fn pick(nodes: &[FnNode], cands: &[usize], caller_file: usize, caller_test: bool) -> PickResult {
    let live: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| caller_test || !nodes[c].test)
        .collect();
    match live.len() {
        0 => PickResult::None,
        1 => PickResult::One(live[0]),
        _ => {
            let same_file: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == caller_file)
                .collect();
            if same_file.len() == 1 {
                return PickResult::One(same_file[0]);
            }
            let inherent: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&c| nodes[c].trait_name.is_none())
                .collect();
            if inherent.len() == 1 {
                return PickResult::One(inherent[0]);
            }
            PickResult::Many(live.len())
        }
    }
}

enum PickResult {
    None,
    One(usize),
    Many(usize),
}

#[allow(clippy::too_many_arguments)]
fn resolve_method(
    files: &[FileModel],
    nodes: &[FnNode],
    idx: &Indexes,
    fun: &FnSpan,
    env: &BTreeMap<String, String>,
    toks: &[Token],
    k: usize,
    caller_test: bool,
) -> Resolution {
    let name = toks[k].text.as_str();
    let caller_file = file_of(files, toks);
    let recv_ty = receiver_type(fun, env, idx, toks, k);
    match recv_ty {
        Some(ty) => match idx.methods.get(&(ty, name.to_string())) {
            Some(cands) => match pick(nodes, cands, caller_file, caller_test) {
                PickResult::One(to) => Resolution::Edge(to, CallKind::Method),
                PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
                PickResult::None => Resolution::Unresolved(UnresolvedKind::External, 0),
            },
            // Typed receiver, no workspace method: external (Vec::push,
            // std iterator adapters, shim methods, …).
            None => Resolution::Unresolved(UnresolvedKind::External, 0),
        },
        None => {
            // Untyped receiver: unique-name fallback, guarded against
            // common std method names.
            if COMMON_STD_METHODS.contains(&name) {
                return Resolution::Unresolved(UnresolvedKind::External, 0);
            }
            match idx.methods_by_name.get(name) {
                Some(cands) => match pick(nodes, cands, caller_file, caller_test) {
                    PickResult::One(to) => Resolution::Edge(to, CallKind::Method),
                    PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
                    PickResult::None => Resolution::Unresolved(UnresolvedKind::External, 0),
                },
                None => Resolution::Unresolved(UnresolvedKind::External, 0),
            }
        }
    }
}

/// File index of the model whose token slice is `toks` — resolved by
/// pointer identity, so the caller does not have to thread it through.
fn file_of(files: &[FileModel], toks: &[Token]) -> usize {
    files
        .iter()
        .position(|f| std::ptr::eq(f.tokens.as_slice(), toks))
        .unwrap_or(usize::MAX)
}

/// Type of the receiver chain ending just before the `.` at `k - 1`:
/// `self` → impl owner, `self.field`/`var.field` via the struct field
/// map, `var` via the local type environment. `None` = untyped.
fn receiver_type(
    fun: &FnSpan,
    env: &BTreeMap<String, String>,
    idx: &Indexes,
    toks: &[Token],
    k: usize,
) -> Option<String> {
    let mut p = k.checked_sub(2)?;
    let mut chain: Vec<&str> = Vec::new();
    loop {
        let t = toks.get(p)?;
        if t.kind != TokKind::Ident {
            return None; // `)`, `]`, literal — chained result, untyped
        }
        chain.push(t.text.as_str());
        if p >= 2 && toks[p - 1].is_punct('.') && toks[p - 2].kind == TokKind::Ident {
            p -= 2;
            continue;
        }
        if p >= 1 && toks[p - 1].is_punct('.') {
            return None; // `foo().field.method()` — untyped head
        }
        break;
    }
    chain.reverse();
    let mut ty = if chain[0] == "self" {
        fun.owner.clone()?
    } else {
        env.get(chain[0])?.clone()
    };
    for field in &chain[1..] {
        ty = idx.structs.get(&ty)?.get(*field)?.clone();
    }
    Some(ty)
}

fn resolve_path(
    files: &[FileModel],
    nodes: &[FnNode],
    idx: &Indexes,
    fun: &FnSpan,
    toks: &[Token],
    k: usize,
    caller_test: bool,
) -> Resolution {
    let name = toks[k].text.as_str();
    let caller_file = file_of(files, toks);
    // Walk path segments backwards; keep the innermost qualifier.
    let mut segs: Vec<&str> = Vec::new();
    let mut p = k;
    while p >= 3 && toks[p - 1].is_punct(':') && toks[p - 2].is_punct(':') {
        // Skip turbofish `::<T>` segments.
        if toks[p - 3].is_punct('>') {
            break;
        }
        if toks[p - 3].kind != TokKind::Ident {
            break;
        }
        segs.push(toks[p - 3].text.as_str());
        p -= 3;
    }
    let Some(&qual) = segs.first() else {
        return Resolution::Skip;
    };
    let uppercase = |s: &str| s.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    let ty = if qual == "Self" {
        match &fun.owner {
            Some(o) => Some(o.clone()),
            None => return Resolution::Unresolved(UnresolvedKind::External, 0),
        }
    } else if uppercase(qual) {
        Some(qual.to_string())
    } else {
        None
    };
    if let Some(ty) = ty {
        let kind = if qual == "Self" {
            CallKind::SelfQualified
        } else {
            CallKind::Path
        };
        return match idx.methods.get(&(ty, name.to_string())) {
            Some(cands) => match pick(nodes, cands, caller_file, caller_test) {
                PickResult::One(to) => Resolution::Edge(to, kind),
                PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
                PickResult::None => {
                    if uppercase(name) {
                        Resolution::Skip // tuple-variant constructor
                    } else {
                        Resolution::Unresolved(UnresolvedKind::External, 0)
                    }
                }
            },
            None if uppercase(name) => Resolution::Skip, // `Enum::Variant(…)`
            None => Resolution::Unresolved(UnresolvedKind::External, 0),
        };
    }
    // Module-qualified: `module::helper(…)` — prefer free fns defined
    // in a file whose stem is the module name.
    let cands = idx.free.get(name).cloned().unwrap_or_default();
    if !matches!(qual, "crate" | "self" | "super") {
        let in_module: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| idx.stems[nodes[c].file] == qual)
            .collect();
        if !in_module.is_empty() {
            return match pick(nodes, &in_module, caller_file, caller_test) {
                PickResult::One(to) => Resolution::Edge(to, CallKind::Path),
                PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
                PickResult::None => Resolution::Unresolved(UnresolvedKind::External, 0),
            };
        }
    }
    match pick(nodes, &cands, caller_file, caller_test) {
        PickResult::One(to) => Resolution::Edge(to, CallKind::Path),
        PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
        PickResult::None if uppercase(name) => Resolution::Skip,
        PickResult::None => Resolution::Unresolved(UnresolvedKind::External, 0),
    }
}

fn resolve_direct(
    files: &[FileModel],
    nodes: &[FnNode],
    idx: &Indexes,
    env: &BTreeMap<String, String>,
    f: &FileModel,
    name: &str,
    caller_test: bool,
) -> Resolution {
    // A local binding used as `name(…)` is a closure/fn-pointer call —
    // never a workspace fn by that name.
    if env.contains_key(name) {
        return Resolution::Unresolved(UnresolvedKind::External, 0);
    }
    let caller_file = file_of(files, &f.tokens);
    let cands = idx.free.get(name).cloned().unwrap_or_default();
    let uppercase = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    if cands.is_empty() {
        // `Some(…)`, `Ok(…)`, tuple-struct ctors: not calls we track.
        // Lowercase with no candidate: std free fn or closure param.
        return if uppercase {
            Resolution::Skip
        } else {
            Resolution::Unresolved(UnresolvedKind::External, 0)
        };
    }
    match pick(nodes, &cands, caller_file, caller_test) {
        PickResult::One(to) => Resolution::Edge(to, CallKind::Direct),
        PickResult::Many(c) => Resolution::Unresolved(UnresolvedKind::Ambiguous, c),
        PickResult::None if uppercase => Resolution::Skip,
        PickResult::None => Resolution::Unresolved(UnresolvedKind::External, 0),
    }
}

/// Local type environment: typed params from the signature plus
/// `let x: T` / `let x = T::new(…)` / `let x = T { … }` bindings.
/// Flat (no scoping): later bindings shadow earlier ones, which is the
/// common case and errs toward *some* type rather than none.
fn local_types(
    f: &FileModel,
    fun: &FnSpan,
    structs: &BTreeMap<String, BTreeMap<String, String>>,
) -> BTreeMap<String, String> {
    let toks = &f.tokens;
    let mut env = BTreeMap::new();
    // Params: inside the first paren group of the signature, at depth
    // 1, every `name: Type` pair.
    let mut angle = 0i32;
    let mut i = fun.sig.start;
    let end = fun.sig.end.min(toks.len());
    while i < end {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(i >= 1 && toks[i - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct('(') && angle <= 0 {
            let close = match_paren(toks, i).min(end);
            let mut depth = 0i32;
            let mut j = i;
            while j < close {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('<') {
                    depth += 1;
                } else if u.is_punct(')')
                    || u.is_punct(']')
                    || (u.is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')))
                {
                    depth -= 1;
                } else if depth == 1
                    && u.kind == TokKind::Ident
                    && u.text != "mut"
                    && u.text != "self"
                    && toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'))
                {
                    if let Some(ty) = type_base(&toks[j + 2..close]) {
                        env.insert(u.text.clone(), ty);
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    // Let bindings in the body.
    let mut k = fun.body.start;
    while k < fun.body.end {
        if !toks[k].is_ident("let") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            k += 1;
            continue; // destructuring pattern — untyped
        }
        let name = name_tok.text.clone();
        match toks.get(j + 1) {
            Some(t) if t.is_punct(':') && !toks.get(j + 2).is_some_and(|n| n.is_punct(':')) => {
                // `let x: Type = …`
                let stop = (j + 2..fun.body.end)
                    .find(|&m| toks[m].is_punct('=') || toks[m].is_punct(';'))
                    .unwrap_or(fun.body.end);
                if let Some(ty) = type_base(&toks[j + 2..stop]) {
                    env.insert(name, ty);
                }
            }
            Some(t) if t.is_punct('=') && !toks.get(j + 2).is_some_and(|n| n.is_punct('=')) => {
                // `let x = Type::… ` / `let x = Type { … }`
                if let Some(init) = toks.get(j + 2) {
                    let upper = init.kind == TokKind::Ident
                        && init
                            .text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_uppercase());
                    let ctor = toks.get(j + 3).is_some_and(|n| {
                        n.is_punct('{')
                            || (n.is_punct(':') && toks.get(j + 4).is_some_and(|m| m.is_punct(':')))
                    });
                    // A known struct name always binds; an unknown
                    // Upper-case ctor binds unless it is an enum-like
                    // wrapper (`Some`/`Ok`/`Err`) hiding the real type.
                    if upper
                        && ctor
                        && (structs.contains_key(&init.text)
                            || !matches!(init.text.as_str(), "Some" | "Ok" | "Err"))
                    {
                        env.insert(name, init.text.clone());
                    }
                }
            }
            _ => {}
        }
        k = j + 1;
    }
    env
}

/// Matching `)` for the `(` at `open`.
fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Iterative Tarjan SCC. Emission order is reverse-topological over
/// the condensation: callees' SCCs pop before their callers'.
fn tarjan(n: usize, out: &[Vec<CallEdge>]) -> (Vec<Vec<usize>>, Vec<usize>) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut counter = 0usize;
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(e) = out[v].get(*ei) {
                let w = e.to;
                *ei += 1;
                if index[w] == UNSEEN {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
                call.pop();
                if let Some((u, _)) = call.last() {
                    let u = *u;
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build as build_model;
    use std::path::Path;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<FileModel>, Graph) {
        let files: Vec<FileModel> = srcs
            .iter()
            .map(|(p, s)| build_model(p, Path::new(p), s))
            .collect();
        let g = Graph::build(&files);
        (files, g)
    }

    fn node(g: &Graph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    fn has_edge(g: &Graph, from: &str, to: &str) -> bool {
        let (f, t) = (node(g, from), node(g, to));
        g.out[f].iter().any(|e| e.to == t)
    }

    #[test]
    fn direct_and_path_calls_resolve() {
        let (_, g) = graph_of(&[(
            "crates/x/src/a.rs",
            "fn root() { helper(); a::helper2(); }\nfn helper() {}\nfn helper2() {}\n",
        )]);
        assert!(has_edge(&g, "root", "helper"));
        assert!(has_edge(&g, "root", "helper2"));
    }

    #[test]
    fn self_method_resolves_to_impl_owner() {
        let src = "\
struct Engine { t: Table }
struct Table;
impl Table { fn grow(&mut self) {} }
impl Engine {
    fn push(&mut self) { self.step(); self.t.grow(); Self::stat(); }
    fn step(&mut self) {}
    fn stat() {}
}
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        assert!(has_edge(&g, "push", "step"));
        assert!(has_edge(&g, "push", "grow"), "field-typed receiver");
        assert!(has_edge(&g, "push", "stat"), "Self:: call");
    }

    #[test]
    fn typed_receiver_without_workspace_method_is_external() {
        let src = "\
fn f(v: Vec<u32>) { v.push(1); }
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        let n = node(&g, "f");
        assert!(g.out[n].is_empty());
        assert!(g
            .unresolved
            .iter()
            .any(|u| u.from == n && u.kind == UnresolvedKind::External && u.name == "push"));
    }

    #[test]
    fn untyped_ambiguity_is_explicit() {
        let src = "\
struct A; struct B;
impl A { fn seal(&self) {} }
impl B { fn seal(&self) {} }
fn f(x: &X) { x.seal(); }
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        let n = node(&g, "f");
        // `x` is typed `X`, which has no `seal`: external, not a guess.
        assert!(g.unresolved.iter().any(|u| u.from == n && u.name == "seal"));
        assert!(g.out[n].is_empty());
    }

    #[test]
    fn unique_name_fallback_resolves_untyped_receiver() {
        let src = "\
struct A;
impl A { fn reseed_counters(&self) {} }
fn f(items: &mut I) { for x in items { x.reseed_counters(); } }
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        assert!(has_edge(&g, "f", "reseed_counters"));
    }

    #[test]
    fn let_bindings_type_receivers() {
        let src = "\
struct Engine;
impl Engine { fn new() -> Engine { Engine } fn run(&self) {} }
fn f() { let e = Engine::new(); e.run(); let d: Engine = make(); d.run(); }
fn make() -> Engine { Engine::new() }
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        let f = node(&g, "f");
        let run = node(&g, "run");
        assert_eq!(g.out[f].iter().filter(|e| e.to == run).count(), 2);
    }

    #[test]
    fn sccs_emit_callees_first() {
        let src = "\
fn a() { b(); }
fn b() { c(); a(); }
fn c() {}
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        let (a, b, c) = (node(&g, "a"), node(&g, "b"), node(&g, "c"));
        // {a,b} is one SCC; {c} must be emitted before it.
        assert_eq!(g.scc_of[a], g.scc_of[b]);
        assert!(g.scc_of[c] < g.scc_of[a]);
        let scc = &g.sccs[g.scc_of[a]];
        assert_eq!(scc.len(), 2);
    }

    #[test]
    fn raw_ident_calls_are_not_keyword_skipped() {
        let src = "\
fn r#loop() {}
fn f() { r#loop(); }
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        assert!(has_edge(&g, "f", "loop"));
    }

    #[test]
    fn cross_file_module_path_prefers_stem() {
        let (_, g) = graph_of(&[
            ("crates/x/src/a.rs", "fn f() { util::norm(); }\n"),
            ("crates/x/src/util.rs", "pub fn norm() {}\n"),
            ("crates/y/src/other.rs", "pub fn norm() {}\n"),
        ]);
        let f = node(&g, "f");
        let target = g.out[f].first().map(|e| e.to);
        assert_eq!(target, Some(node(&g, "norm")));
        // Resolves to util.rs's norm (stem match), deterministically.
        let to = target.unwrap_or(usize::MAX);
        assert_eq!(g.nodes[to].file, 1);
    }

    #[test]
    fn non_test_caller_never_resolves_into_test_fn() {
        let src = "\
fn f() { helper_x(); }
#[cfg(test)]
mod tests {
    fn helper_x() {}
}
";
        let (_, g) = graph_of(&[("crates/x/src/a.rs", src)]);
        let f = node(&g, "f");
        assert!(g.out[f].is_empty());
    }

    #[test]
    fn callgraph_json_shape() {
        let (files, g) = graph_of(&[(
            "crates/x/src/a.rs",
            "fn a() { b(); }\nfn b() { x.push(1); }\n",
        )]);
        let j = g.to_json(&files);
        assert!(j.contains("\"kind\": \"callgraph\""));
        assert!(j.contains("\"nodes\""));
        assert!(j.contains("\"from\": 0"));
        assert!(j.contains("\"category\": \"external\""));
    }
}
