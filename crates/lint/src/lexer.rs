//! A small hand-rolled Rust lexer, exactly deep enough for rule
//! matching: it separates code tokens from comments, strings, raw
//! strings, char literals, and lifetimes, so a banned API name inside a
//! string literal or a commented-out allocation can never trip a rule.
//!
//! The lexer is intentionally not a parser: it produces a flat token
//! stream with line numbers plus a side list of comments (the carrier
//! for `// lint:` annotations), and leaves all structure recovery
//! (brace matching, item scanning) to [`crate::model`].

/// Kind of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / byte-string / raw-string / C-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One code token. Literal bodies are not retained (rules never match
/// inside them); identifiers and puncts keep their text.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Identifier text, or the punctuation character. Empty for
    /// literals.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Raw identifier (`r#fn`): the text is the bare name, but it is
    /// never a keyword — the call-graph resolver must not skip it.
    pub raw: bool,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Doc-ness of a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Plain `//` or `/* */`.
    Plain,
    /// Outer doc: `///` or `/** */`.
    Outer,
    /// Inner doc: `//!` or `/*! */`.
    Inner,
}

/// One comment, with enough context to anchor `// lint:` annotations.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Text after the comment introducer, un-trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    pub doc: DocKind,
    /// True when no code token precedes the comment on its line — a
    /// standalone annotation applies to the *next* code line, a
    /// trailing one to its own.
    pub standalone: bool,
}

/// Lexer output: code tokens and comments, separated.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes one source file. The lexer is total: any byte sequence
/// produces *some* token stream (unterminated literals run to EOF),
/// which is the right failure mode for a linter — it must never panic
/// on the code it audits.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        last_code_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    /// Line of the most recently emitted code token (0 = none yet).
    last_code_line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.last_code_line = line;
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            raw: false,
        });
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let line = self.line;
            let c = self.peek(0);
            match c {
                b'/' if self.peek(1) == b'/' => self.line_comment(line),
                b'/' if self.peek(1) == b'*' => self.block_comment(line),
                b'"' => {
                    self.string();
                    self.push_tok(TokKind::Str, String::new(), line);
                }
                b'\'' => self.char_or_lifetime(line),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_literal(line) => {}
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_ascii_whitespace() => {
                    self.bump();
                }
                _ => {
                    self.bump();
                    // Multi-byte UTF-8 continuation bytes only occur in
                    // (already-skipped) literals/comments or emoji
                    // idents rustc rejects; emit the lead byte as punct.
                    self.push_tok(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let standalone = self.last_code_line != line;
        self.bump();
        self.bump();
        let doc = match (self.peek(0), self.peek(1)) {
            (b'/', d) if d != b'/' => {
                self.bump();
                DocKind::Outer
            }
            (b'!', _) => {
                self.bump();
                DocKind::Inner
            }
            _ => DocKind::Plain,
        };
        let start = self.i;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: self.src[start..self.i].to_string(),
            line,
            doc,
            standalone,
        });
    }

    fn block_comment(&mut self, line: u32) {
        let standalone = self.last_code_line != line;
        self.bump();
        self.bump();
        let doc = match self.peek(0) {
            b'*' if self.peek(1) != b'*' && self.peek(1) != b'/' => {
                self.bump();
                DocKind::Outer
            }
            b'!' => {
                self.bump();
                DocKind::Inner
            }
            _ => DocKind::Plain,
        };
        let start = self.i;
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = self.i.saturating_sub(2).max(start);
        self.out.comments.push(Comment {
            text: self.src[start..end].to_string(),
            line,
            doc,
            standalone,
        });
    }

    /// Consumes a `"…"` string body (opening quote included), honoring
    /// `\` escapes.
    fn string(&mut self) {
        self.bump();
        while self.i < self.b.len() {
            match self.bump() {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r"…"` / `r#…#"…"#…#` after the caller
    /// verified the `r` (and optional `b`) prefix. `self.i` points at
    /// the `r`.
    fn raw_string(&mut self) {
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return; // actually a raw identifier; caller handles
        }
        self.bump();
        while self.i < self.b.len() {
            if self.bump() == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == b'#' {
                    seen += 1;
                    self.bump();
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }

    /// Handles `r`/`b`/`c`-prefixed literals (`r"`, `r#"`, `br"`, `b"`,
    /// `b'`, `c"`, `rb"`…) and raw identifiers (`r#ident`). Returns
    /// true when it consumed something; false means "plain identifier
    /// starting with r/b/c" and the caller lexes it as an ident.
    fn raw_or_prefixed_literal(&mut self, line: u32) -> bool {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            (b'r', b'"') | (b'r', b'#') => {
                // r"…" or r#…" (raw string) — but r#ident is a raw
                // identifier: detect by what follows the hashes.
                let mut j = self.i + 1;
                while *self.b.get(j).unwrap_or(&0) == b'#' {
                    j += 1;
                }
                if *self.b.get(j).unwrap_or(&0) == b'"' {
                    self.raw_string();
                    self.push_tok(TokKind::Str, String::new(), line);
                } else {
                    // raw identifier r#foo
                    self.bump();
                    self.bump();
                    self.ident(line);
                    if let Some(t) = self.out.tokens.last_mut() {
                        t.raw = true;
                    }
                }
                true
            }
            (b'b', b'"') | (b'c', b'"') => {
                self.bump();
                self.string();
                self.push_tok(TokKind::Str, String::new(), line);
                true
            }
            (b'b', b'\'') => {
                self.bump();
                self.bump();
                if self.peek(0) == b'\\' {
                    self.bump();
                }
                self.bump();
                if self.peek(0) == b'\'' {
                    self.bump();
                }
                self.push_tok(TokKind::Char, String::new(), line);
                true
            }
            (b'b', b'r') | (b'r', b'b') if c2 == b'"' || c2 == b'#' => {
                self.bump();
                self.raw_string();
                self.push_tok(TokKind::Str, String::new(), line);
                true
            }
            _ => false,
        }
    }

    /// `'a` (lifetime) vs `'x'` (char literal): a backslash or a
    /// closing quote two ahead means char.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // '
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
            while self.i < self.b.len() && self.bump() != b'\'' {}
            self.push_tok(TokKind::Char, String::new(), line);
            return;
        }
        // Lifetimes can only start with an identifier character, so any
        // other first byte — punctuation like `'"'` or `'{'`, a space,
        // or a multibyte scalar — must be a char literal. Consume one
        // scalar and its closing quote.
        let first = self.peek(0);
        if self.i < self.b.len()
            && first != b'\''
            && first != b'_'
            && !first.is_ascii_alphanumeric()
        {
            self.bump();
            while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                self.bump(); // UTF-8 continuation bytes
            }
            if self.peek(0) == b'\'' {
                self.bump();
            }
            self.push_tok(TokKind::Char, String::new(), line);
            return;
        }
        // Ident-ish content: find the next byte boundary-agnostic quote
        // within 5 bytes; otherwise treat as lifetime.
        let mut j = self.i;
        let mut len = 0usize;
        while len < 5 {
            match self.b.get(j) {
                Some(b'\'') if len > 0 => {
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push_tok(TokKind::Char, String::new(), line);
                    return;
                }
                Some(b) if !b.is_ascii() || b.is_ascii_alphanumeric() || *b == b'_' => {
                    j += 1;
                    len += 1;
                }
                _ => break,
            }
        }
        // Lifetime: consume ident chars.
        let start = self.i;
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        self.push_tok(TokKind::Lifetime, self.src[start..self.i].to_string(), line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        self.push_tok(TokKind::Ident, self.src[start..self.i].to_string(), line);
    }

    fn number(&mut self, line: u32) {
        while {
            let b = self.peek(0);
            b == b'_' || b.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        // Fractional part — but never eat `..` (range syntax).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while {
                let b = self.peek(0);
                b == b'_' || b.is_ascii_alphanumeric()
            } {
                self.bump();
            }
        }
        self.push_tok(TokKind::Num, String::new(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = r##"
            let a = "x.unwrap()"; // call .unwrap() here
            /* vec![1] */
            let b = r#"format!("{}", 1)"#;
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"vec".to_string()));
        assert!(!ids.contains(&"format".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].standalone);
        assert!(lexed.comments[1].standalone);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn punctuation_char_literals_do_not_open_strings() {
        // `'"'` must lex as a char literal, not a lifetime followed by
        // a string that swallows the rest of the file.
        let lexed = lex("let q = '\"'; let b = '{'; let s = \" // lint: hot_path \"; done");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
        assert!(lexed.comments.is_empty());
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
        let multibyte = lex("let e = 'é'; fn g<'a>(x: &'a u8) {}");
        assert_eq!(
            multibyte
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
        assert_eq!(
            multibyte
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ids = idents("let r#fn = 1;");
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn multi_hash_raw_strings_terminate_exactly() {
        // r##"…"## may contain `"#` without closing: only the matching
        // hash count ends the literal. Mis-counting would swallow real
        // code (the `.unwrap()` after the literal) or leak banned names
        // from inside it.
        let src = "let a = r##\"inner \"# quote and vec![0] stay hidden\"##; x.unwrap();";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(!ids.contains(&"vec"), "literal body leaked into tokens");
        assert!(ids.contains(&"unwrap"), "code after literal was swallowed");
        // Three-hash with an embedded two-hash closer, plus the byte-raw
        // spelling `br##"…"##`.
        let deep =
            lex("let b = r###\"has \"## inside\"###; let c = br##\"# still \"# in\"##; done");
        assert!(deep.tokens.iter().any(|t| t.is_ident("done")));
        assert_eq!(
            deep.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            2
        );
    }

    #[test]
    fn raw_idents_in_paths_keep_segments() {
        // `crate::r#mod::r#fn()` must lex as a plain path whose segments
        // carry the bare keyword text with the raw flag set — not as a
        // raw string or a skipped keyword.
        let lexed = lex("crate::r#mod::r#fn(); let ok = r#type::r#loop;");
        let raws: Vec<(&str, bool)> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.raw))
            .collect();
        assert!(raws.contains(&("mod", true)));
        assert!(raws.contains(&("fn", true)));
        assert!(raws.contains(&("type", true)));
        assert!(raws.contains(&("loop", true)));
        assert!(raws.contains(&("crate", false)));
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Str));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* outer /* inner */ still */ b");
        let ids: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn doc_comment_kinds() {
        let lexed = lex("//! inner\n/// outer\n// plain\nfn x() {}\n");
        assert_eq!(lexed.comments[0].doc, DocKind::Inner);
        assert_eq!(lexed.comments[1].doc, DocKind::Outer);
        assert_eq!(lexed.comments[2].doc, DocKind::Plain);
    }

    #[test]
    fn byte_and_raw_strings() {
        let ids = idents(r#"let x = b"unwrap"; let y = br#unused; "#);
        assert!(!ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
