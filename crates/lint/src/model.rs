//! Structure recovery over the flat token stream: brace matching,
//! function spans, `#[cfg(test)]` / `#[test]` regions, and the
//! `// lint:` annotation grammar.
//!
//! ## Annotation grammar
//!
//! * `// lint: hot_path` — standalone comment line: marks the **next
//!   `fn` item** as a hot region for the `hot-path-alloc` rule
//!   (doc comments and attributes may sit between the annotation and
//!   the `fn`).
//! * `// lint: allow(<rule>[, <rule>…]) -- <reason>` — suppresses the
//!   named rule(s). Trailing on a code line it applies to that line;
//!   standalone it applies to the next code line. The `-- <reason>`
//!   justification is mandatory: an allow without one is itself a
//!   finding (`annotation-grammar`).

use crate::lexer::{lex, Comment, DocKind, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// How a file participates in the build — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library source: every rule applies.
    Lib,
    /// Binary targets (`src/bin/`, `src/main.rs`): top-level glue
    /// where panicking on startup misconfiguration is idiomatic, so
    /// `no-unwrap-in-lib` is off; structural rules still apply.
    Binary,
    /// Integration tests, benches, examples: panicking is idiomatic,
    /// so `no-unwrap-in-lib` is off; structural rules still apply.
    TestTarget,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub tok: usize,
    /// Token range of the signature: after the name, up to (exclusive)
    /// the body's opening brace. Carries params for the receiver-type
    /// heuristic.
    pub sig: std::ops::Range<usize>,
    /// Token range of the body, **exclusive** of the outer braces.
    pub body: std::ops::Range<usize>,
    /// Base type name of the enclosing `impl` block, if any
    /// (`impl FlowTable<K>` and `impl Estimator for FlowTable` both
    /// record `FlowTable`).
    pub owner: Option<String>,
    /// Trait name when the enclosing impl is `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// Marked `// lint: hot_path`.
    pub hot: bool,
    /// Inside a `#[cfg(test)]` region or carrying `#[test]`.
    pub test: bool,
}

/// A fully analyzed source file.
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub role: FileRole,
    pub lines: Vec<String>,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `line -> rules allowed on that line` (already resolved from
    /// standalone/trailing placement).
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Lines of `lint: allow` annotations missing the `-- reason`.
    pub bad_allows: Vec<u32>,
    /// Token ranges (exclusive of braces) that are test-only code.
    pub test_regions: Vec<std::ops::Range<usize>>,
    pub fns: Vec<FnSpan>,
    /// `struct Name` → field name → base type ident (`sizes: Vec<i64>`
    /// records `("sizes", "Vec")`; tuple-struct fields are `"0"`,
    /// `"1"`, …). Feeds the call-graph receiver-type heuristic.
    pub structs: BTreeMap<String, BTreeMap<String, String>>,
    /// Module is documented-unstable (`//!` doc contains
    /// `Stability: unstable`).
    pub unstable_module: bool,
    /// Public top-level item names carrying a `Stability: stable` doc
    /// marker (exceptions to `stability-surface`).
    pub stable_items: BTreeSet<String>,
    /// All public top-level item names.
    pub pub_items: BTreeSet<String>,
}

impl FileModel {
    /// True when token index `i` lies in test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&i))
    }

    /// True when `rule` is allowed on `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(rule))
    }

    /// The trimmed source text of a 1-based line (for snippets).
    pub fn snippet(&self, line: u32) -> String {
        let text = self
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("");
        let mut s: String = text.chars().take(96).collect();
        if s.len() < text.len() {
            s.push('…');
        }
        s
    }
}

/// Finds the matching `}` for the `{` at `open` (token index).
/// Returns the index of the closing brace, or `tokens.len()` when
/// unbalanced (linter must stay total).
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Builds the model for one file.
pub fn build(path_for_display: &str, fs_path: &Path, src: &str) -> FileModel {
    let Lexed { tokens, comments } = lex(src);
    let role = if fs_path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests" | "benches" | "examples")
        )
    }) {
        FileRole::TestTarget
    } else if fs_path
        .components()
        .any(|c| c.as_os_str().to_str() == Some("bin"))
        || fs_path.file_name().and_then(|n| n.to_str()) == Some("main.rs")
    {
        FileRole::Binary
    } else {
        FileRole::Lib
    };

    let (allows, bad_allows, hot_lines) = parse_annotations(&comments, &tokens);
    let test_regions = find_test_regions(&tokens);
    let impls = find_impls(&tokens);
    let fns = find_fns(&tokens, &hot_lines, &test_regions, &impls);
    let structs = find_structs(&tokens);
    let (unstable_module, stable_items, pub_items) = stability_markers(&comments, &tokens);

    FileModel {
        path: path_for_display.to_string(),
        role,
        lines: src.lines().map(str::to_string).collect(),
        tokens,
        comments,
        allows,
        bad_allows,
        test_regions,
        fns,
        structs,
        unstable_module,
        stable_items,
        pub_items,
    }
}

/// One `impl` block: its body token range (exclusive of braces), the
/// base name of the implementing type, and the trait when present.
struct ImplSpan {
    body: std::ops::Range<usize>,
    owner: String,
    trait_name: Option<String>,
}

/// Scans for `impl` blocks, including `impl Trait for Type` — the
/// method-ownership facts the call graph resolves `Self::` and
/// receiver-typed calls against.
fn find_impls(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") || tokens[i].raw {
            i += 1;
            continue;
        }
        // Walk the header up to its `{`, tracking angle/paren depth so
        // generic params and `Fn(..) -> T` bounds never contribute
        // path segments. Depth-0 idents before a depth-0 `for` name the
        // trait path; after it (or when no `for` appears) the type.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut in_where = false;
        let mut open = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                // `->` in an `Fn() -> T` bound is two puncts; the `>`
                // there must not close an angle level.
                if !(j >= 1 && tokens[j - 1].is_punct('-')) {
                    angle -= 1;
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('{') && angle <= 0 && paren <= 0 {
                open = Some(j);
                break;
            } else if t.is_punct(';') && angle <= 0 && paren <= 0 {
                break; // `impl Trait for Type;` never happens, but stay total
            } else if angle <= 0 && paren <= 0 && t.kind == TokKind::Ident {
                if t.text == "for" && !t.raw {
                    saw_for = true;
                } else if t.text == "where" && !t.raw {
                    in_where = true;
                } else if !in_where {
                    if saw_for {
                        after_for = Some(t.text.clone());
                    } else {
                        before_for = Some(t.text.clone());
                    }
                }
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j;
            continue;
        };
        let close = match_brace(tokens, open);
        let (owner, trait_name) = if saw_for {
            (after_for, before_for)
        } else {
            (before_for, None)
        };
        if let Some(owner) = owner {
            out.push(ImplSpan {
                body: open + 1..close,
                owner,
                trait_name,
            });
        }
        // Nested impls don't exist, but impls inside `mod` bodies do;
        // continue the scan *inside* the block so those are found too.
        i = open + 1;
    }
    out
}

/// Field → base-type map for every `struct` declaration. Tuple structs
/// record positional fields `"0"`, `"1"`, …
fn find_structs(tokens: &[Token]) -> BTreeMap<String, BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        // Skip generics to the body introducer.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if !(j >= 1 && tokens[j - 1].is_punct('-')) {
                    angle -= 1;
                }
            } else if angle <= 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
                break;
            } else if angle <= 0 && t.kind == TokKind::Ident && t.text == "where" {
                // `struct S<T> where T: X { … }` — scan on to the brace.
            }
            j += 1;
        }
        let mut fields = BTreeMap::new();
        match tokens.get(j) {
            Some(t) if t.is_punct('{') => {
                let close = match_brace(tokens, j);
                let mut k = j + 1;
                let mut depth = 0i32;
                while k < close {
                    let t = &tokens[k];
                    if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('}')
                        || t.is_punct(')')
                        || t.is_punct(']')
                        || (t.is_punct('>') && !(k >= 1 && tokens[k - 1].is_punct('-')))
                    {
                        depth -= 1;
                    } else if depth == 0
                        && t.kind == TokKind::Ident
                        && t.text != "pub"
                        && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        && !tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
                    {
                        if let Some(ty) = type_base(&tokens[k + 2..close]) {
                            fields.insert(t.text.clone(), ty);
                        }
                    }
                    k += 1;
                }
                i = close;
            }
            Some(t) if t.is_punct('(') => {
                // Tuple struct: positional fields split on depth-0 commas.
                let mut k = j + 1;
                let mut depth = 0i32;
                let mut idx = 0usize;
                let mut start = k;
                while k < tokens.len() {
                    let t = &tokens[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(']') || t.is_punct('>') {
                        depth -= 1;
                    } else if t.is_punct(')') {
                        if depth == 0 {
                            if let Some(ty) = type_base(&tokens[start..k]) {
                                fields.insert(idx.to_string(), ty);
                            }
                            break;
                        }
                        depth -= 1;
                    } else if t.is_punct(',') && depth == 0 {
                        if let Some(ty) = type_base(&tokens[start..k]) {
                            fields.insert(idx.to_string(), ty);
                        }
                        idx += 1;
                        start = k + 1;
                    }
                    k += 1;
                }
                i = k;
            }
            _ => {}
        }
        out.entry(name).or_insert(fields);
        i += 1;
    }
    out
}

/// The base type ident of a type expression: the last path segment of
/// the leading type path (`&'a mut Vec<i64>` → `Vec`,
/// `netpkt::Timestamp` → `Timestamp`, `Option<Timestamp>` → `Option`).
/// Tuple/array/fn-pointer types yield `None`.
pub fn type_base(tokens: &[Token]) -> Option<String> {
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "mut" | "dyn" | "impl" | "pub") => continue,
            TokKind::Ident => {
                // Walk through `::`-joined segments to the last one.
                let next_is_path = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'));
                if next_is_path {
                    continue;
                }
                return Some(t.text.clone());
            }
            TokKind::Lifetime => continue,
            TokKind::Punct if matches!(t.text.as_str(), "&" | ":") => continue,
            _ => return None,
        }
    }
    None
}

/// Extracts `// lint:` annotations. Returns (allow map, malformed
/// allow lines, hot_path annotation lines).
#[allow(clippy::type_complexity)]
fn parse_annotations(
    comments: &[Comment],
    tokens: &[Token],
) -> (BTreeMap<u32, BTreeSet<String>>, Vec<u32>, BTreeSet<u32>) {
    let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let mut bad = Vec::new();
    let mut hot = BTreeSet::new();
    for c in comments {
        if c.doc != DocKind::Plain {
            continue;
        }
        let body = c.text.trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot_path" {
            hot.insert(c.line);
        } else if let Some(spec) = rest.strip_prefix("allow(") {
            let Some(close) = spec.find(')') else {
                bad.push(c.line);
                continue;
            };
            let rules: Vec<String> = spec[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = spec[close + 1..].trim();
            let justified = tail
                .strip_prefix("--")
                .is_some_and(|r| !r.trim().is_empty());
            if rules.is_empty() || !justified {
                bad.push(c.line);
                continue;
            }
            // Standalone: applies to the next code line; trailing: its
            // own line.
            let target = if c.standalone {
                tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > c.line)
                    .unwrap_or(c.line)
            } else {
                c.line
            };
            allows.entry(target).or_default().extend(rules);
        } else {
            // Unknown `lint:` directive — surface it rather than
            // silently ignoring a typo like `lint: hotpath`.
            bad.push(c.line);
        }
    }
    (allows, bad, hot)
}

/// Token ranges covered by `#[cfg(test)]` items and `#[test]` fns.
fn find_test_regions(tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match_bracket(tokens, i + 1);
            if attr_is_test(&tokens[i + 2..close.min(tokens.len())]) {
                // Find the item body this attribute governs: the first
                // `{` before a `;` at top level (skipping further
                // attributes).
                let mut j = close + 1;
                let mut depth_paren = 0i32;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                        depth_paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                        depth_paren -= 1;
                    } else if t.is_punct('{') && depth_paren <= 0 {
                        let end = match_brace(tokens, j);
                        regions.push(j + 1..end);
                        i = end;
                        break;
                    } else if t.is_punct(';') && depth_paren <= 0 {
                        break; // e.g. `#[cfg(test)] use …;`
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    regions
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not
/// `#[cfg_attr(test, …)]` (which gates an attribute, not the item).
fn attr_is_test(attr: &[Token]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("test") => true,
        Some(t) if t.is_ident("cfg") => attr.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Matching `]` for the `[` at `open`.
fn match_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Scans for `fn` items and resolves their bodies, annotations, and
/// impl ownership.
fn find_fns(
    tokens: &[Token],
    hot_lines: &BTreeSet<u32>,
    test_regions: &[std::ops::Range<usize>],
    impls: &[ImplSpan],
) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && !tokens[i].raw {
            let name = match tokens.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue; // `fn(` type position
                }
            };
            // A `lint: hot_path` annotation anywhere in the comment gap
            // above this fn (attributes/docs in between are fine): any
            // hot line in (prev code line, fn line).
            let fn_line = tokens[i].line;
            let prev_code_line = prev_item_boundary(tokens, i);
            let hot = hot_lines.iter().any(|&l| l < fn_line && l > prev_code_line);
            // Body: first `{` before a `;` at bracket level 0.
            let mut j = i + 2;
            let mut body = None;
            let mut angle = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    let mut d = 0usize;
                    while j < tokens.len() {
                        if tokens[j].is_punct('(') || tokens[j].is_punct('[') {
                            d += 1;
                        } else if tokens[j].is_punct(')') || tokens[j].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                } else if t.is_punct('{') && angle <= 0 {
                    let end = match_brace(tokens, j);
                    body = Some(j + 1..end);
                    break;
                } else if t.is_punct(';') && angle <= 0 {
                    break; // trait method declaration
                }
                j += 1;
            }
            if let Some(body) = body {
                let test = test_regions.iter().any(|r| r.contains(&i));
                // Innermost enclosing impl (smallest containing body)
                // owns the method.
                let enclosing = impls
                    .iter()
                    .filter(|im| im.body.contains(&i))
                    .min_by_key(|im| im.body.end - im.body.start);
                out.push(FnSpan {
                    name,
                    line: fn_line,
                    tok: i,
                    sig: i + 2..body.start.saturating_sub(1),
                    body,
                    owner: enclosing.map(|im| im.owner.clone()),
                    trait_name: enclosing.and_then(|im| im.trait_name.clone()),
                    hot,
                    test,
                });
            }
        }
        i += 1;
    }
    out
}

/// Line of the last "real" code token before token `i`, skipping the
/// attribute soup directly above an item so `// lint: hot_path` can sit
/// above `#[inline]`. Conservative: walks back over `# [ … ]` groups
/// only.
fn prev_item_boundary(tokens: &[Token], i: usize) -> u32 {
    let mut j = i;
    loop {
        // Walk back over one attribute group if present.
        if j >= 1 && tokens[j - 1].is_punct(']') {
            let mut depth = 0usize;
            let mut k = j - 1;
            loop {
                if tokens[k].is_punct(']') {
                    depth += 1;
                } else if tokens[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if k >= 1 && tokens[k - 1].is_punct('#') {
                j = k - 1;
                continue;
            }
        }
        // Walk back over a `(…)` group (`pub(crate)` visibility).
        if j >= 1 && tokens[j - 1].is_punct(')') {
            let mut depth = 0usize;
            let mut k = j - 1;
            loop {
                if tokens[k].is_punct(')') {
                    depth += 1;
                } else if tokens[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            // Only when it really is a visibility group, i.e. `pub`
            // precedes it — a closing paren of ordinary code must stay
            // a boundary.
            if k >= 1 && tokens[k - 1].is_ident("pub") {
                j = k;
                continue;
            }
        }
        // Walk back over visibility/qualifiers to the item start.
        if j >= 1
            && tokens[j - 1].kind == TokKind::Ident
            && matches!(
                tokens[j - 1].text.as_str(),
                "pub" | "const" | "unsafe" | "async" | "extern" | "crate" | "super" | "in"
            )
        {
            j -= 1;
            continue;
        }
        break;
    }
    if j == 0 {
        0
    } else {
        tokens[j - 1].line
    }
}

/// Module-level stability markers: is the module documented-unstable,
/// which pub items are marked `Stability: stable`, and all pub item
/// names.
fn stability_markers(
    comments: &[Comment],
    tokens: &[Token],
) -> (bool, BTreeSet<String>, BTreeSet<String>) {
    let unstable = comments
        .iter()
        .filter(|c| c.doc == DocKind::Inner)
        .any(|c| c.text.contains("Stability: unstable"));
    let mut stable = BTreeSet::new();
    let mut pubs = BTreeSet::new();
    // Top-level `pub` items: depth 0 `pub` followed by an item keyword.
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_ident("pub") {
            // Skip `pub(crate)` etc.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                let mut d = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct('(') {
                        d += 1;
                    } else if tokens[j].is_punct(')') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
            }
            let kw = tokens.get(j).map(|t| t.text.as_str()).unwrap_or("");
            let name_at = match kw {
                "struct" | "enum" | "trait" | "mod" | "type" | "union" => j + 1,
                "fn" => j + 1,
                "const" | "static" => j + 1,
                "unsafe" | "async" => j + 2, // `pub unsafe fn x`
                _ => {
                    i += 1;
                    continue;
                }
            };
            if let Some(name_tok) = tokens.get(name_at) {
                if name_tok.kind == TokKind::Ident {
                    let name = name_tok.text.clone();
                    // Outer doc directly above (any line between the
                    // previous code line and this item) marking
                    // stability.
                    let item_line = t.line;
                    // The marker must live in THIS item's doc block:
                    // above the item (and its attributes), but below
                    // the last code token of the previous item.
                    let floor = prev_item_boundary(tokens, i);
                    let is_stable = comments.iter().any(|c| {
                        c.doc == DocKind::Outer
                            && c.line < item_line
                            && c.line > floor
                            && item_line - c.line <= 40
                            && c.text.contains("Stability: stable")
                    });
                    if is_stable {
                        stable.insert(name.clone());
                    }
                    pubs.insert(name);
                }
            }
        }
        i += 1;
    }
    (unstable, stable, pubs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model(src: &str) -> FileModel {
        build("test.rs", Path::new("crates/x/src/test.rs"), src)
    }

    #[test]
    fn hot_path_annotation_attaches_to_next_fn() {
        let m =
            model("// lint: hot_path\n#[inline]\npub fn fast(x: u32) -> u32 { x }\nfn slow() {}\n");
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].hot, "annotated fn is hot");
        assert!(!m.fns[1].hot, "next fn is not");
    }

    #[test]
    fn allow_grammar_requires_reason() {
        let m = model(
            "fn a() { x.unwrap(); } // lint: allow(no-unwrap-in-lib) -- invariant: always set\n\
             // lint: allow(no-unwrap-in-lib)\nfn b() {}\n",
        );
        assert!(m.allowed("no-unwrap-in-lib", 1));
        assert_eq!(m.bad_allows, vec![2]);
    }

    #[test]
    fn standalone_allow_applies_to_next_code_line() {
        let m = model(
            "fn a() {\n    // lint: allow(hot-path-alloc) -- warmup growth\n    v.push(1);\n}\n",
        );
        assert!(m.allowed("hot-path-alloc", 3));
        assert!(!m.allowed("hot-path-alloc", 2));
    }

    #[test]
    fn cfg_test_regions_cover_mod_body() {
        let m = model("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        assert_eq!(m.test_regions.len(), 1);
        assert!(m.fns.iter().any(|f| f.name == "t" && f.test));
        assert!(m.fns.iter().any(|f| f.name == "lib" && !f.test));
    }

    #[test]
    fn cfg_attr_test_is_not_a_test_region() {
        let m = model("#[cfg_attr(test, allow(dead_code))]\nfn lib() {}\n");
        assert!(m.test_regions.is_empty());
    }

    #[test]
    fn stability_markers_collected() {
        let m = model(
            "//! Machine room.\n//! **Stability: unstable internals.**\n\
             /// Widget.\n///\n/// Stability: stable re-export.\npub struct Config;\n\
             /// Private-ish.\npub struct Table;\n",
        );
        assert!(m.unstable_module);
        assert!(m.stable_items.contains("Config"));
        assert!(!m.stable_items.contains("Table"));
        assert!(m.pub_items.contains("Table"));
    }

    #[test]
    fn roles_from_paths() {
        let role = |p: &str| build("x.rs", Path::new(p), "").role;
        assert_eq!(role("crates/core/src/api.rs"), FileRole::Lib);
        assert_eq!(role("src/bin/monitor.rs"), FileRole::Binary);
        assert_eq!(role("crates/lint/src/main.rs"), FileRole::Binary);
        assert_eq!(role("crates/core/tests/hot.rs"), FileRole::TestTarget);
        assert_eq!(role("crates/bench/benches/pipe.rs"), FileRole::TestTarget);
    }

    #[test]
    fn raw_ident_fns_found_and_raw_fn_keyword_is_not() {
        // `fn r#loop()` declares a function whose bare name is `loop`;
        // the raw ident `r#fn` is a *name*, never the `fn` keyword, so
        // a macro body like `m! { r#fn ghost { } }` must not fabricate
        // a phantom function `ghost`.
        let m = model("fn r#loop() {}\nm! { r#fn ghost { } }\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["loop"]);
    }

    #[test]
    fn fns_inside_macro_invocations_are_modeled() {
        // Token-visible fns inside a macro *invocation* body are real
        // code the macro pastes through — the linter must see them. The
        // `$name`-templated fn inside the macro_rules *definition* has
        // no ident after `fn`, so it can never produce a phantom span.
        let m = model(
            "macro_rules! gen {\n    ($name:ident) => { fn $name() {} };\n}\n\
             wrap_in_mod! {\n    fn generated(v: &mut Vec<u32>) { v.push(1); }\n}\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["generated"]);
        let f = &m.fns[0];
        assert!(m.tokens[f.body.clone()].iter().any(|t| t.is_ident("push")));
    }

    #[test]
    fn impl_trait_for_type_methods_are_owned_by_the_type() {
        let m = model(
            "impl Estimator for FlowTable {\n    fn update(&mut self) {}\n}\n\
             impl FlowTable {\n    fn new() -> Self { FlowTable }\n}\n\
             fn free() {}\n",
        );
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).expect("fn found");
        let update = by_name("update");
        assert_eq!(update.owner.as_deref(), Some("FlowTable"));
        assert_eq!(update.trait_name.as_deref(), Some("Estimator"));
        let new = by_name("new");
        assert_eq!(new.owner.as_deref(), Some("FlowTable"));
        assert_eq!(new.trait_name, None);
        let free = by_name("free");
        assert_eq!(free.owner, None);
        assert_eq!(free.trait_name, None);
    }

    #[test]
    fn fn_body_spans_are_exclusive() {
        let m = model("fn f() { inner(); }");
        let f = &m.fns[0];
        assert!(m.tokens[f.body.clone()].iter().any(|t| t.is_ident("inner")));
        assert!(!m.tokens[f.body.clone()].iter().any(|t| t.is_punct('}')));
    }
}
