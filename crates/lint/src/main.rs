//! `vcaml-lint` CLI: walks the workspace, runs every rule, prints the
//! terminal table, optionally writes the JSON report, and exits with a
//! CI-meaningful code (0 clean, 1 findings, 2 usage/IO error).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
vcaml-lint — static analysis for the vcaml workspace

USAGE:
  vcaml-lint [OPTIONS]

OPTIONS:
  --root <DIR>        Workspace root (default: nearest ancestor with a
                      [workspace] Cargo.toml)
  --format <F>        table | json | both   (default: table)
  --out <FILE>        Write the JSON report to FILE (implies computing
                      JSON regardless of --format)
  --rule <NAME>       Run only the named rule (repeatable)
  --emit-callgraph <FILE>
                      Write the resolved workspace call graph (nodes,
                      edges, unresolved edges, SCCs) as JSON and exit
                      (`-` = stdout)
  --compare <BASELINE>
                      After analysis, compare the report against a
                      committed baseline JSON: exit 1 on findings not
                      in the baseline, warn on rules whose findings
                      all disappeared (possible resolver decay)
  --list-rules        Print rule names and exit
  -q, --quiet         Suppress the table on a clean run
  -h, --help          This help
";

struct Opts {
    root: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    rules: Vec<String>,
    quiet: bool,
    emit_callgraph: Option<PathBuf>,
    compare: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Table,
    Json,
    Both,
}

fn parse_args() -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        root: None,
        format: Format::Table,
        out: None,
        rules: Vec::new(),
        quiet: false,
        emit_callgraph: None,
        compare: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?));
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    Some("both") => Format::Both,
                    other => {
                        return Err(format!("--format must be table|json|both, got {other:?}"))
                    }
                };
            }
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?));
            }
            "--rule" => {
                let r = args.next().ok_or("--rule needs a value")?;
                if !vcaml_lint::rules::ALL_RULES.contains(&r.as_str()) {
                    return Err(format!("unknown rule `{r}` (see --list-rules)"));
                }
                opts.rules.push(r);
            }
            "--emit-callgraph" => {
                opts.emit_callgraph = Some(PathBuf::from(
                    args.next()
                        .ok_or("--emit-callgraph needs a value (`-` = stdout)")?,
                ));
            }
            "--compare" => {
                opts.compare = Some(PathBuf::from(args.next().ok_or("--compare needs a value")?));
            }
            "--list-rules" => {
                for r in vcaml_lint::rules::ALL_RULES {
                    println!("{r}");
                }
                return Ok(None);
            }
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vcaml-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("vcaml-lint: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match opts
        .root
        .clone()
        .or_else(|| vcaml_lint::find_workspace_root(&cwd))
    {
        Some(r) => r,
        None => {
            eprintln!(
                "vcaml-lint: no [workspace] Cargo.toml above {}",
                cwd.display()
            );
            return ExitCode::from(2);
        }
    };
    if let Some(dest) = &opts.emit_callgraph {
        let json = match vcaml_lint::emit_callgraph(&root) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("vcaml-lint: call-graph build failed: {e}");
                return ExitCode::from(2);
            }
        };
        if dest.as_os_str() == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(dest, json) {
            eprintln!("vcaml-lint: cannot write {}: {e}", dest.display());
            return ExitCode::from(2);
        }
        return ExitCode::SUCCESS;
    }
    let report = match vcaml_lint::analyze(&root, &opts.rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vcaml-lint: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(out) = &opts.out {
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("vcaml-lint: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("vcaml-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    match opts.format {
        Format::Table | Format::Both => {
            if !(opts.quiet && report.findings.is_empty()) {
                print!("{}", report.render_table());
            }
        }
        Format::Json => {}
    }
    if opts.format == Format::Json || opts.format == Format::Both {
        print!("{}", report.to_json());
    }
    if let Some(baseline_path) = &opts.compare {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vcaml-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let cmp = vcaml_lint::report::compare(&baseline, &report.to_json());
        for rule in &cmp.disappeared_rules {
            eprintln!(
                "vcaml-lint: warning: rule `{rule}` had findings in the baseline but reports \
                 none now — verify the rule still fires (resolver decay?)"
            );
        }
        if cmp.is_regression() {
            eprintln!(
                "vcaml-lint: {} finding(s) not in baseline {}:",
                cmp.new_findings.len(),
                baseline_path.display()
            );
            for k in &cmp.new_findings {
                eprintln!("  {k}");
            }
            return ExitCode::from(1);
        }
        eprintln!(
            "vcaml-lint: report matches baseline {} (no new findings)",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(2))
}
