//! # vcaml-lint — in-repo static analysis for the vcaml workspace
//!
//! A workspace-aware linter that machine-checks the invariants the
//! runtime suites can only spot-check dynamically: the zero-allocation
//! hot path (`hot-path-alloc`), lock/channel ordering
//! (`lock-discipline`), panic-freedom of library code
//! (`no-unwrap-in-lib`), exhaustive event handling
//! (`exhaustive-events`), and the documented stability surface
//! (`stability-surface`). Findings are typed ([`report::Finding`]) and
//! emitted as a terminal table plus a structured JSON report with
//! CI-meaningful exit codes: 0 clean, 1 findings, 2 usage/IO error.
//!
//! Built on a small hand-rolled lexer ([`lexer`]) — comment, string,
//! raw-string and char-literal aware — so rules match *code*, never
//! text inside literals or comments. Deliberately dependency-free
//! (not even the in-repo shims): the tool that audits every crate
//! must not depend on them.
//!
//! See `ARCHITECTURE.md` § "Invariants & static analysis" for the rule
//! table and the `// lint:` annotation grammar.

pub mod analyses;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use report::Report;
use std::path::{Path, PathBuf};

/// Directories walked under the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "src", "shims"];

/// Directory names skipped anywhere in the walk: build output and the
/// linter's own seeded-violation corpus.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file under the scan dirs, sorted for
/// deterministic reports. Paths are returned workspace-relative.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(&d, &mut out)?;
        }
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the per-file models for a workspace root.
fn build_models(root: &Path) -> std::io::Result<Vec<model::FileModel>> {
    let files = collect_files(root)?;
    let mut models = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let display = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        models.push(model::build(&display, rel, &src));
    }
    Ok(models)
}

/// Builds the workspace call graph and serializes it
/// (`--emit-callgraph`).
pub fn emit_callgraph(root: &Path) -> std::io::Result<String> {
    let models = build_models(root)?;
    let graph = graph::Graph::build(&models);
    Ok(graph.to_json(&models))
}

/// Runs the full analysis over a workspace root, with an optional rule
/// subset (empty = all rules).
pub fn analyze(root: &Path, selected_rules: &[String]) -> std::io::Result<Report> {
    let models = build_models(root)?;
    let findings = rules::run_all(&models, selected_rules);
    Ok(Report {
        root: root.to_string_lossy().into_owned(),
        files_scanned: models.len(),
        rules: if selected_rules.is_empty() {
            rules::ALL_RULES.iter().map(|r| r.to_string()).collect()
        } else {
            selected_rules.to_vec()
        },
        findings,
    })
}
