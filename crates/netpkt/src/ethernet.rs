//! Ethernet II frame codec.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Length of the Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Returns true if the group bit (LSB of the first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns true for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// The EtherType values this library distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EtherType {
    /// 0x0800 — IPv4.
    Ipv4,
    /// 0x86dd — IPv6.
    Ipv6,
    /// 0x0806 — ARP.
    Arp,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86dd => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

/// Zero-copy view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, checking only that the fixed header fits.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                got: len,
            });
        }
        Ok(Self { buffer })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType of the encapsulated protocol.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]]).into()
    }

    /// The bytes after the Ethernet header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view and returns the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

/// Owned representation used to build frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetRepr {
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Encapsulated protocol.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Parses the header fields out of a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> Self {
        Self {
            src: frame.src(),
            dst: frame.dst(),
            ethertype: frame.ethertype(),
        }
    }

    /// Serialized header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header into the first [`HEADER_LEN`] bytes of `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than the header.
    pub fn emit(&self, buf: &mut [u8]) {
        buf[0..6].copy_from_slice(&self.dst.0);
        buf[6..12].copy_from_slice(&self.src.0);
        buf[12..14].copy_from_slice(&u16::from(self.ethertype).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = EthernetRepr {
            src: MacAddr([0x02, 0, 0, 0, 0, 0x01]),
            dst: MacAddr([0x02, 0, 0, 0, 0, 0x02]),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = vec![0u8; HEADER_LEN + 4];
        repr.emit(&mut buf);
        buf[HEADER_LEN..].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = sample();
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.src(), MacAddr([0x02, 0, 0, 0, 0, 0x01]));
        assert_eq!(frame.dst(), MacAddr([0x02, 0, 0, 0, 0, 0x02]));
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            EthernetFrame::new_checked(&[0u8; 13][..]),
            Err(Error::Truncated {
                layer: "ethernet",
                ..
            })
        ));
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(u16::from(EtherType::Ipv6), 0x86dd);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x1234), EtherType::Other(0x1234));
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr([0x01, 0, 0, 0, 0, 0]).is_multicast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 0]).is_multicast());
    }

    #[test]
    fn repr_parse_matches_emit() {
        let buf = sample();
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        let repr = EthernetRepr::parse(&frame);
        let mut out = vec![0u8; HEADER_LEN];
        repr.emit(&mut out);
        assert_eq!(&buf[..HEADER_LEN], &out[..]);
    }
}
