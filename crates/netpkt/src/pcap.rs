//! Classic libpcap file format reader and writer.
//!
//! Supports both byte orders and both microsecond (`0xa1b2c3d4`) and
//! nanosecond (`0xa1b23c4d`) magic variants on read; always writes
//! little-endian microsecond files, which every tool accepts.

use crate::error::{Error, Result};
use crate::packet::Timestamp;
use std::io::{Read, Write};

/// Subset of pcap link types this library produces or consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// LINKTYPE_ETHERNET (1): frames start with an Ethernet II header.
    Ethernet,
    /// LINKTYPE_RAW (101): frames start directly with an IPv4/IPv6 header.
    RawIp,
    /// Anything else, carried verbatim.
    Other(u32),
}

impl From<u32> for LinkType {
    fn from(v: u32) -> Self {
        match v {
            1 => LinkType::Ethernet,
            101 => LinkType::RawIp,
            other => LinkType::Other(other),
        }
    }
}

impl From<LinkType> for u32 {
    fn from(l: LinkType) -> u32 {
        match l {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Other(v) => v,
        }
    }
}

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_NS: u32 = 0xa1b2_3c4d;

/// A record read from a pcap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// Original packet length on the wire.
    pub orig_len: u32,
    /// Captured bytes (may be shorter than `orig_len` if the trace used a
    /// snap length). [`bytes::Bytes`]-backed so parsers can hand out
    /// zero-copy payload slices of the record
    /// ([`UdpDatagram::parse_shared`](crate::UdpDatagram::parse_shared)).
    pub data: bytes::Bytes,
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    reader: R,
    swapped: bool,
    nanos: bool,
    link_type: LinkType,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut reader: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        reader.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_US => (false, false),
            MAGIC_NS => (false, true),
            m if m.swap_bytes() == MAGIC_US => (true, false),
            m if m.swap_bytes() == MAGIC_NS => (true, true),
            m => return Err(Error::BadMagic(m)),
        };
        let u32_at = |b: &[u8], off: usize| {
            let raw = [b[off], b[off + 1], b[off + 2], b[off + 3]];
            if swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let link_type = LinkType::from(u32_at(&hdr, 20));
        Ok(Self {
            reader,
            swapped,
            nanos,
            link_type,
            snaplen,
        })
    }

    /// Link type declared in the global header.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// Snap length declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Reads the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut hdr = [0u8; 16];
        match self.reader.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let u32_at = |b: &[u8], off: usize| {
            let raw = [b[off], b[off + 1], b[off + 2], b[off + 3]];
            if self.swapped {
                u32::from_be_bytes(raw)
            } else {
                u32::from_le_bytes(raw)
            }
        };
        let ts_sec = u32_at(&hdr, 0) as i64;
        let ts_frac = u32_at(&hdr, 4) as i64;
        let incl_len = u32_at(&hdr, 8);
        let orig_len = u32_at(&hdr, 12);
        if incl_len > self.snaplen.max(65_535) {
            return Err(Error::Malformed {
                layer: "pcap",
                what: "record length beyond snaplen",
            });
        }
        let micros = if self.nanos { ts_frac / 1_000 } else { ts_frac };
        let mut data = vec![0u8; incl_len as usize];
        self.reader.read_exact(&mut data)?;
        Ok(Some(PcapRecord {
            ts: Timestamp(ts_sec * 1_000_000 + micros),
            orig_len,
            data: data.into(),
        }))
    }

    /// Convenience: drains the file into a vector of records.
    pub fn read_all(&mut self) -> Result<Vec<PcapRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Streaming pcap writer (little-endian, microsecond timestamps).
pub struct PcapWriter<W: Write> {
    writer: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header.
    pub fn new(mut writer: W, link_type: LinkType) -> Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_US.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
        hdr[16..20].copy_from_slice(&65_535u32.to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&u32::from(link_type).to_le_bytes());
        writer.write_all(&hdr)?;
        Ok(Self { writer })
    }

    /// Appends one full-length packet record.
    pub fn write_packet(&mut self, ts: Timestamp, data: &[u8]) -> Result<()> {
        let secs = ts.0.div_euclid(1_000_000);
        let micros = ts.0.rem_euclid(1_000_000);
        let mut hdr = [0u8; 16];
        hdr[0..4].copy_from_slice(&(secs as u32).to_le_bytes());
        hdr[4..8].copy_from_slice(&(micros as u32).to_le_bytes());
        hdr[8..12].copy_from_slice(&(data.len() as u32).to_le_bytes());
        hdr[12..16].copy_from_slice(&(data.len() as u32).to_le_bytes());
        self.writer.write_all(&hdr)?;
        self.writer.write_all(data)?;
        Ok(())
    }

    /// Flushes and returns the inner writer.
    pub fn finish(mut self) -> Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(packets: &[(i64, Vec<u8>)]) -> Vec<PcapRecord> {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        for (us, data) in packets {
            w.write_packet(Timestamp(*us), data).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        r.read_all().unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let pkts = vec![
            (0i64, vec![1u8, 2, 3]),
            (1_500_000, vec![4u8; 100]),
            (2_000_001, vec![]),
        ];
        let recs = roundtrip(&pkts);
        assert_eq!(recs.len(), 3);
        for (rec, (us, data)) in recs.iter().zip(&pkts) {
            assert_eq!(rec.ts.0, *us);
            assert_eq!(&rec.data, data);
            assert_eq!(rec.orig_len as usize, data.len());
        }
    }

    #[test]
    fn empty_file_reads_no_records() {
        let w = PcapWriter::new(Vec::new(), LinkType::RawIp).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0u8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(bytes)),
            Err(Error::BadMagic(0))
        ));
    }

    #[test]
    fn big_endian_file_parses() {
        // Hand-build a big-endian global header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_US.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes()); // thiszone
        bytes.extend_from_slice(&0u32.to_be_bytes()); // sigfigs
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&42u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[9, 9, 9]);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts.0, 7_000_042);
        assert_eq!(rec.data, vec![9, 9, 9]);
    }

    #[test]
    fn nanosecond_magic_converted() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_NS.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // ts_sec
        bytes.extend_from_slice(&1_500u32.to_le_bytes()); // 1500 ns = 1 µs
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0xab);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts.0, 1_000_001);
    }

    #[test]
    fn truncated_record_errors() {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).unwrap();
        w.write_packet(Timestamp(0), &[1, 2, 3, 4]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 2);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn negative_timestamp_roundtrip_is_clamped_sanely() {
        // Timestamps before the epoch can't appear in pcap; the writer
        // stores seconds as u32, so verify the euclidean split stays exact
        // for t >= 0 boundary values.
        let recs = roundtrip(&[(999_999, vec![1])]);
        assert_eq!(recs[0].ts.0, 999_999);
    }
}
