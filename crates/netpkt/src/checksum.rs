//! RFC 1071 internet checksum, shared by the IPv4 and UDP codecs.

/// Incremental one's-complement sum accumulator.
///
/// Feed it header/payload slices (and pseudo-header words) in any order —
/// the one's-complement sum is commutative — then call [`Checksum::finish`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates an accumulator with a zero running sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a byte slice to the running sum. Odd-length slices are padded
    /// with a trailing zero byte as RFC 1071 requires.
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Adds a single big-endian 16-bit word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Folds the carries and returns the one's-complement checksum.
    pub fn finish(mut self) -> u16 {
        while self.sum > 0xffff {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Computes the checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(data);
    c.finish()
}

/// Verifies a buffer whose checksum field is already filled in: the folded
/// sum over the entire buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// One's-complement sum of the IPv4 pseudo-header used by UDP/TCP.
pub fn pseudo_header_v4(src: [u8; 4], dst: [u8; 4], proto: u8, len: u16) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16(u16::from(proto));
    c.add_u16(len);
    c
}

/// One's-complement sum of the IPv6 pseudo-header used by UDP/TCP.
pub fn pseudo_header_v6(src: [u8; 16], dst: [u8; 16], proto: u8, len: u32) -> Checksum {
    let mut c = Checksum::new();
    c.add_bytes(&src);
    c.add_bytes(&dst);
    c.add_u16((len >> 16) as u16);
    c.add_u16(len as u16);
    c.add_u16(u16::from(proto));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    // The canonical example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // RFC 1071 gives the sum 0xddf2 before complement.
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn filled_buffer_verifies() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x1d, 0x94, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
    }

    #[test]
    fn order_independent() {
        let a = [1u8, 2, 3, 4];
        let b = [9u8, 8, 7, 6];
        let mut c1 = Checksum::new();
        c1.add_bytes(&a);
        c1.add_bytes(&b);
        let mut c2 = Checksum::new();
        c2.add_bytes(&b);
        c2.add_bytes(&a);
        assert_eq!(c1.finish(), c2.finish());
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
