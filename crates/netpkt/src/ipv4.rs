//! IPv4 header codec (RFC 791).

use crate::checksum;
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Minimum IPv4 header length (IHL = 5).
pub const MIN_HEADER_LEN: usize = 20;

/// Zero-copy view over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, validating version, IHL, and the length fields.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self { buffer };
        let b = pkt.buffer.as_ref();
        if b.len() < MIN_HEADER_LEN {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: MIN_HEADER_LEN,
                got: b.len(),
            });
        }
        if b[0] >> 4 != 4 {
            return Err(Error::Malformed {
                layer: "ipv4",
                what: "version is not 4",
            });
        }
        let ihl = pkt.header_len();
        if ihl < MIN_HEADER_LEN {
            return Err(Error::Malformed {
                layer: "ipv4",
                what: "IHL below 5 words",
            });
        }
        if b.len() < ihl {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: ihl,
                got: b.len(),
            });
        }
        let total = pkt.total_len() as usize;
        if total < ihl {
            return Err(Error::Malformed {
                layer: "ipv4",
                what: "total length below header length",
            });
        }
        if b.len() < total {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: total,
                got: b.len(),
            });
        }
        Ok(pkt)
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// DSCP + ECN byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6] & 0x1f, b[7]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Encapsulated protocol number (17 for UDP).
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src(&self) -> [u8; 4] {
        let b = self.buffer.as_ref();
        [b[12], b[13], b[14], b[15]]
    }

    /// Destination address.
    pub fn dst(&self) -> [u8; 4] {
        let b = self.buffer.as_ref();
        [b[16], b[17], b[18], b[19]]
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.buffer.as_ref()[..self.header_len()])
    }

    /// Payload bytes, as delimited by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[hl..total]
    }
}

/// Owned IPv4 header representation (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Repr {
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// Encapsulated protocol number.
    pub protocol: u8,
    /// Payload length in bytes (excluding the IPv4 header).
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by the simulator for packet ids).
    pub ident: u16,
}

impl Ipv4Repr {
    /// Parses the fields relevant to this library out of a packet view.
    pub fn parse<T: AsRef<[u8]>>(pkt: &Ipv4Packet<T>) -> Self {
        Self {
            src: pkt.src(),
            dst: pkt.dst(),
            protocol: pkt.protocol(),
            payload_len: pkt.total_len() as usize - pkt.header_len(),
            ttl: pkt.ttl(),
            ident: pkt.ident(),
        }
    }

    /// Serialized header length (always 20: options are never emitted).
    pub fn header_len(&self) -> usize {
        MIN_HEADER_LEN
    }

    /// Writes a 20-byte header with a valid checksum into `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than 20 bytes or the total length
    /// overflows 16 bits.
    pub fn emit(&self, buf: &mut [u8]) {
        let total = MIN_HEADER_LEN + self.payload_len;
        assert!(total <= usize::from(u16::MAX), "ipv4 total length overflow");
        buf[0] = 0x45; // version 4, IHL 5
        buf[1] = 0;
        buf[2..4].copy_from_slice(&(total as u16).to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6] = 0x40; // DF set, as WebRTC stacks do to avoid fragmentation
        buf[7] = 0;
        buf[8] = self.ttl;
        buf[9] = self.protocol;
        buf[10] = 0;
        buf[11] = 0;
        buf[12..16].copy_from_slice(&self.src);
        buf[16..20].copy_from_slice(&self.dst);
        let ck = checksum::checksum(&buf[..MIN_HEADER_LEN]);
        buf[10..12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repr() -> Ipv4Repr {
        Ipv4Repr {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            protocol: crate::IP_PROTO_UDP,
            payload_len: 8,
            ttl: 64,
            ident: 0x1234,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample_repr();
        let mut buf = vec![0u8; MIN_HEADER_LEN + 8];
        repr.emit(&mut buf);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src(), [10, 0, 0, 1]);
        assert_eq!(pkt.dst(), [10, 0, 0, 2]);
        assert_eq!(pkt.protocol(), 17);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.ident(), 0x1234);
        assert_eq!(pkt.total_len(), 28);
        assert!(pkt.verify_checksum());
        assert!(pkt.dont_frag());
        assert!(!pkt.more_frags());
        assert_eq!(pkt.frag_offset(), 0);
        assert_eq!(Ipv4Repr::parse(&pkt), repr);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[0] = 0x65; // version 6
        buf[2..4].copy_from_slice(&20u16.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(Error::Malformed {
                what: "version is not 4",
                ..
            })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            Ipv4Packet::new_checked(&[0x45u8; 10][..]),
            Err(Error::Truncated { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_total_len_below_header() {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&10u16.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[0] = 0x44; // IHL = 4 words
        buf[2..4].copy_from_slice(&20u16.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn corrupted_checksum_detected() {
        let repr = sample_repr();
        let mut buf = vec![0u8; MIN_HEADER_LEN + 8];
        repr.emit(&mut buf);
        buf[8] ^= 0xff; // flip TTL
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum());
    }

    #[test]
    fn payload_respects_total_len() {
        let repr = Ipv4Repr {
            payload_len: 4,
            ..sample_repr()
        };
        // Buffer longer than total length (e.g. Ethernet padding).
        let mut buf = vec![0u8; MIN_HEADER_LEN + 10];
        repr.emit(&mut buf);
        buf[MIN_HEADER_LEN..MIN_HEADER_LEN + 4].copy_from_slice(&[1, 2, 3, 4]);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload(), &[1, 2, 3, 4]);
    }
}
