//! Flow identification: the 5-tuple key used to group a VCA session's
//! packets and to tell upstream from downstream.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// Direction of a packet relative to the monitored client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDirection {
    /// Towards the monitored client (the paper infers QoE of the receiver).
    Downstream,
    /// From the monitored client.
    Upstream,
}

/// A canonicalized UDP 5-tuple.
///
/// `FlowKey::canonical` orders the endpoints so that both directions of a
/// conversation map to the same key, which is how a passive monitor groups
/// a VCA session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Lower endpoint address (after canonicalization).
    pub addr_a: IpAddr,
    /// Lower endpoint port.
    pub port_a: u16,
    /// Higher endpoint address.
    pub addr_b: IpAddr,
    /// Higher endpoint port.
    pub port_b: u16,
    /// IP protocol number (always 17 here, kept for completeness).
    pub protocol: u8,
}

impl FlowKey {
    /// Cheap multiplicative 64-bit hash of the 5-tuple, shared by every
    /// layer that routes on flows (worker routing, table shards, and the
    /// open-addressed slot probe) so a key is hashed exactly once per
    /// packet. Distinct layers consume distinct bit ranges of the output:
    /// workers take `hash64() % n`, shards the top 16 bits, slot probes
    /// the middle bits — the final avalanche makes them independent.
    #[inline]
    pub fn hash64(&self) -> u64 {
        fn addr_bits(addr: IpAddr) -> u64 {
            match addr {
                IpAddr::V4(v) => u64::from(u32::from(v)),
                IpAddr::V6(v) => {
                    let bits = v.to_bits();
                    let hi = (bits >> 64) as u64;
                    let lo = bits as u64;
                    hi ^ lo.rotate_left(1)
                }
            }
        }
        let ports = (u64::from(self.port_a) << 32)
            | (u64::from(self.port_b) << 16)
            | u64::from(self.protocol);
        let mut h = addr_bits(self.addr_a).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ addr_bits(self.addr_b).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ ports;
        // splitmix64-style avalanche so every output bit depends on every
        // input bit (routing takes `% n_workers` of this).
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// Builds a canonical key from a directed (src, dst) pair. Returns the
    /// key plus whether the given src was endpoint A.
    pub fn canonical(
        src: IpAddr,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        protocol: u8,
    ) -> (Self, bool) {
        let src_first = (src, src_port) <= (dst, dst_port);
        let key = if src_first {
            FlowKey {
                addr_a: src,
                port_a: src_port,
                addr_b: dst,
                port_b: dst_port,
                protocol,
            }
        } else {
            FlowKey {
                addr_a: dst,
                port_a: dst_port,
                addr_b: src,
                port_b: src_port,
                protocol,
            }
        };
        (key, src_first)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{} proto {}",
            self.addr_a, self.port_a, self.addr_b, self.port_b, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn both_directions_same_key() {
        let (k1, fwd1) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        let (k2, fwd2) = FlowKey::canonical(ip(2), 3478, ip(1), 50000, 17);
        assert_eq!(k1, k2);
        assert_ne!(fwd1, fwd2);
    }

    #[test]
    fn port_breaks_tie_on_same_addr() {
        let (k1, fwd) = FlowKey::canonical(ip(1), 9, ip(1), 5, 17);
        assert!(!fwd);
        assert_eq!(k1.port_a, 5);
        assert_eq!(k1.port_b, 9);
    }

    #[test]
    fn hash64_spreads_similar_keys() {
        // Keys differing in one port bit must land far apart in every bit
        // range a routing layer consumes (workers: low bits, shards: top
        // bits, probes: middle bits).
        let mut buckets = [0usize; 8];
        let mut tops = std::collections::HashSet::new();
        for n in 0..64u16 {
            let (k, _) = FlowKey::canonical(ip(1), 50_000 + n, ip(2), 3478, 17);
            let h = k.hash64();
            buckets[(h % 8) as usize] += 1;
            tops.insert(h >> 48);
        }
        assert!(
            buckets.iter().filter(|&&b| b > 0).count() >= 6,
            "{buckets:?}"
        );
        assert!(tops.len() >= 32, "top bits collapse: {}", tops.len());
    }

    #[test]
    fn display_is_readable() {
        let (k, _) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        assert_eq!(k.to_string(), "10.0.0.1:50000 <-> 10.0.0.2:3478 proto 17");
    }
}
