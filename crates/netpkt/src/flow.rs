//! Flow identification: the 5-tuple key used to group a VCA session's
//! packets and to tell upstream from downstream.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// Direction of a packet relative to the monitored client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDirection {
    /// Towards the monitored client (the paper infers QoE of the receiver).
    Downstream,
    /// From the monitored client.
    Upstream,
}

/// A canonicalized UDP 5-tuple.
///
/// `FlowKey::canonical` orders the endpoints so that both directions of a
/// conversation map to the same key, which is how a passive monitor groups
/// a VCA session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Lower endpoint address (after canonicalization).
    pub addr_a: IpAddr,
    /// Lower endpoint port.
    pub port_a: u16,
    /// Higher endpoint address.
    pub addr_b: IpAddr,
    /// Higher endpoint port.
    pub port_b: u16,
    /// IP protocol number (always 17 here, kept for completeness).
    pub protocol: u8,
}

impl FlowKey {
    /// Builds a canonical key from a directed (src, dst) pair. Returns the
    /// key plus whether the given src was endpoint A.
    pub fn canonical(
        src: IpAddr,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        protocol: u8,
    ) -> (Self, bool) {
        let src_first = (src, src_port) <= (dst, dst_port);
        let key = if src_first {
            FlowKey {
                addr_a: src,
                port_a: src_port,
                addr_b: dst,
                port_b: dst_port,
                protocol,
            }
        } else {
            FlowKey {
                addr_a: dst,
                port_a: dst_port,
                addr_b: src,
                port_b: src_port,
                protocol,
            }
        };
        (key, src_first)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{} proto {}",
            self.addr_a, self.port_a, self.addr_b, self.port_b, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn both_directions_same_key() {
        let (k1, fwd1) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        let (k2, fwd2) = FlowKey::canonical(ip(2), 3478, ip(1), 50000, 17);
        assert_eq!(k1, k2);
        assert_ne!(fwd1, fwd2);
    }

    #[test]
    fn port_breaks_tie_on_same_addr() {
        let (k1, fwd) = FlowKey::canonical(ip(1), 9, ip(1), 5, 17);
        assert!(!fwd);
        assert_eq!(k1.port_a, 5);
        assert_eq!(k1.port_b, 9);
    }

    #[test]
    fn display_is_readable() {
        let (k, _) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        assert_eq!(k.to_string(), "10.0.0.1:50000 <-> 10.0.0.2:3478 proto 17");
    }
}
