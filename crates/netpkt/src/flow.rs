//! Flow identification: the 5-tuple key used to group a VCA session's
//! packets and to tell upstream from downstream.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// Direction of a packet relative to the monitored client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowDirection {
    /// Towards the monitored client (the paper infers QoE of the receiver).
    Downstream,
    /// From the monitored client.
    Upstream,
}

/// A canonicalized UDP 5-tuple.
///
/// `FlowKey::canonical` orders the endpoints so that both directions of a
/// conversation map to the same key, which is how a passive monitor groups
/// a VCA session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Lower endpoint address (after canonicalization).
    pub addr_a: IpAddr,
    /// Lower endpoint port.
    pub port_a: u16,
    /// Higher endpoint address.
    pub addr_b: IpAddr,
    /// Higher endpoint port.
    pub port_b: u16,
    /// IP protocol number (always 17 here, kept for completeness).
    pub protocol: u8,
}

impl FlowKey {
    /// Cheap multiplicative 64-bit hash of the 5-tuple, shared by every
    /// layer that routes on flows (worker routing, table shards, and the
    /// open-addressed slot probe) so a key is hashed exactly once per
    /// packet. Distinct layers consume distinct bit ranges of the output:
    /// workers take `hash64() % n`, shards the top 16 bits, slot probes
    /// the middle bits — the final avalanche makes them independent.
    #[inline]
    pub fn hash64(&self) -> u64 {
        fn addr_bits(addr: IpAddr) -> u64 {
            match addr {
                IpAddr::V4(v) => u64::from(u32::from(v)),
                IpAddr::V6(v) => {
                    let bits = v.to_bits();
                    let hi = (bits >> 64) as u64;
                    let lo = bits as u64;
                    hi ^ lo.rotate_left(1)
                }
            }
        }
        let ports = (u64::from(self.port_a) << 32)
            | (u64::from(self.port_b) << 16)
            | u64::from(self.protocol);
        let mut h = addr_bits(self.addr_a).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ addr_bits(self.addr_b).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ ports;
        // splitmix64-style avalanche so every output bit depends on every
        // input bit (routing takes `% n_workers` of this).
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// Builds a canonical key from a directed (src, dst) pair. Returns the
    /// key plus whether the given src was endpoint A.
    pub fn canonical(
        src: IpAddr,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        protocol: u8,
    ) -> (Self, bool) {
        let src_first = (src, src_port) <= (dst, dst_port);
        let key = if src_first {
            FlowKey {
                addr_a: src,
                port_a: src_port,
                addr_b: dst,
                port_b: dst_port,
                protocol,
            }
        } else {
            FlowKey {
                addr_a: dst,
                port_a: dst_port,
                addr_b: src,
                port_b: src_port,
                protocol,
            }
        };
        (key, src_first)
    }

    /// Compact single-token wire form for control protocols:
    /// `ADDR:PORT-ADDR:PORT/PROTO`, with IPv6 addresses bracketed —
    /// e.g. `10.0.0.1:5000-10.0.0.2:5001/17` or
    /// `[2001:db8::1]:5000-[2001:db8::2]:5001/17`. Whitespace-free, so
    /// a line protocol can carry it as one argument. Round-trips
    /// through [`FlowKey::from_wire`].
    pub fn to_wire(&self) -> String {
        fn endpoint(addr: IpAddr, port: u16) -> String {
            match addr {
                IpAddr::V4(v) => format!("{v}:{port}"),
                IpAddr::V6(v) => format!("[{v}]:{port}"),
            }
        }
        format!(
            "{}-{}/{}",
            endpoint(self.addr_a, self.port_a),
            endpoint(self.addr_b, self.port_b),
            self.protocol
        )
    }

    /// Parses the [`FlowKey::to_wire`] form, canonicalizing endpoint
    /// order (so both directions of a conversation parse to the same
    /// key). Returns `None` on any malformed input — never panics.
    pub fn from_wire(text: &str) -> Option<Self> {
        fn endpoint(text: &str) -> Option<(IpAddr, u16)> {
            let (addr, port) = text.rsplit_once(':')?;
            let addr = addr
                .strip_prefix('[')
                .map_or(addr, |rest| rest.strip_suffix(']').unwrap_or(addr));
            Some((addr.parse().ok()?, port.parse().ok()?))
        }
        let (endpoints, proto) = text.rsplit_once('/')?;
        let protocol: u8 = proto.parse().ok()?;
        // The '-' separating the endpoints is the one outside any
        // bracketed v6 address; scan at depth 0.
        let mut depth = 0usize;
        let split = endpoints.char_indices().find_map(|(i, c)| match c {
            '[' => {
                depth += 1;
                None
            }
            ']' => {
                depth = depth.saturating_sub(1);
                None
            }
            '-' if depth == 0 => Some(i),
            _ => None,
        })?;
        let (a, pa) = endpoint(&endpoints[..split])?;
        let (b, pb) = endpoint(&endpoints[split + 1..])?;
        Some(FlowKey::canonical(a, pa, b, pb, protocol).0)
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} <-> {}:{} proto {}",
            self.addr_a, self.port_a, self.addr_b, self.port_b, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn both_directions_same_key() {
        let (k1, fwd1) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        let (k2, fwd2) = FlowKey::canonical(ip(2), 3478, ip(1), 50000, 17);
        assert_eq!(k1, k2);
        assert_ne!(fwd1, fwd2);
    }

    #[test]
    fn port_breaks_tie_on_same_addr() {
        let (k1, fwd) = FlowKey::canonical(ip(1), 9, ip(1), 5, 17);
        assert!(!fwd);
        assert_eq!(k1.port_a, 5);
        assert_eq!(k1.port_b, 9);
    }

    #[test]
    fn hash64_spreads_similar_keys() {
        // Keys differing in one port bit must land far apart in every bit
        // range a routing layer consumes (workers: low bits, shards: top
        // bits, probes: middle bits).
        let mut buckets = [0usize; 8];
        let mut tops = std::collections::HashSet::new();
        for n in 0..64u16 {
            let (k, _) = FlowKey::canonical(ip(1), 50_000 + n, ip(2), 3478, 17);
            let h = k.hash64();
            buckets[(h % 8) as usize] += 1;
            tops.insert(h >> 48);
        }
        assert!(
            buckets.iter().filter(|&&b| b > 0).count() >= 6,
            "{buckets:?}"
        );
        assert!(tops.len() >= 32, "top bits collapse: {}", tops.len());
    }

    #[test]
    fn display_is_readable() {
        let (k, _) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        assert_eq!(k.to_string(), "10.0.0.1:50000 <-> 10.0.0.2:3478 proto 17");
    }

    #[test]
    fn wire_form_round_trips_v4_and_v6() {
        let (v4, _) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        assert_eq!(v4.to_wire(), "10.0.0.1:50000-10.0.0.2:3478/17");
        assert_eq!(FlowKey::from_wire(&v4.to_wire()), Some(v4));

        let a6: IpAddr = "2001:db8::1".parse().unwrap();
        let b6: IpAddr = "2001:db8::2".parse().unwrap();
        let (v6, _) = FlowKey::canonical(a6, 5000, b6, 5001, 17);
        assert_eq!(v6.to_wire(), "[2001:db8::1]:5000-[2001:db8::2]:5001/17");
        assert_eq!(FlowKey::from_wire(&v6.to_wire()), Some(v6));
    }

    #[test]
    fn wire_parse_canonicalizes_direction() {
        let fwd = FlowKey::from_wire("10.0.0.2:3478-10.0.0.1:50000/17").unwrap();
        let (canon, _) = FlowKey::canonical(ip(1), 50000, ip(2), 3478, 17);
        assert_eq!(fwd, canon);
    }

    #[test]
    fn wire_parse_rejects_malformed_without_panicking() {
        for bad in [
            "",
            "10.0.0.1:5000",
            "10.0.0.1:5000-10.0.0.2:5001",
            "10.0.0.1-10.0.0.2:5001/17",
            "10.0.0.1:5000-10.0.0.2:5001/999",
            "[2001:db8::1:5000-[2001:db8::2]:5001/17",
            "nonsense/17",
            "-:/",
        ] {
            assert_eq!(FlowKey::from_wire(bad), None, "{bad:?}");
        }
    }
}
