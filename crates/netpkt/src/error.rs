//! Error type shared by the packet codecs and pcap I/O.

use std::fmt;

/// Errors produced while decoding packets or reading/writing pcap files.
#[derive(Debug)]
pub enum Error {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// Bytes required by the header.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A header field holds a value the codec cannot interpret.
    Malformed {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// An internet checksum did not verify.
    Checksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
    /// The pcap file magic number is unknown.
    BadMagic(u32),
    /// Wrapper around I/O errors from pcap reading/writing.
    Io(std::io::Error),
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (need {needed} bytes, got {got})")
            }
            Error::Malformed { layer, what } => write!(f, "{layer}: malformed ({what})"),
            Error::Checksum { layer } => write!(f, "{layer}: checksum mismatch"),
            Error::BadMagic(m) => write!(f, "pcap: unknown magic {m:#010x}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = Error::Truncated {
            layer: "ipv4",
            needed: 20,
            got: 7,
        };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, got 7)");
    }

    #[test]
    fn display_malformed() {
        let e = Error::Malformed {
            layer: "udp",
            what: "length field too small",
        };
        assert_eq!(e.to_string(), "udp: malformed (length field too small)");
    }

    #[test]
    fn display_checksum_and_magic() {
        assert_eq!(
            Error::Checksum { layer: "udp" }.to_string(),
            "udp: checksum mismatch"
        );
        assert_eq!(
            Error::BadMagic(0xdead_beef).to_string(),
            "pcap: unknown magic 0xdeadbeef"
        );
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
