//! UDP header codec (RFC 768).

use crate::checksum::{self, Checksum};
use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view over a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    /// Wraps a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self { buffer };
        let b = pkt.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "udp",
                needed: HEADER_LEN,
                got: b.len(),
            });
        }
        let len = pkt.len() as usize;
        if len < HEADER_LEN {
            return Err(Error::Malformed {
                layer: "udp",
                what: "length field below header size",
            });
        }
        if b.len() < len {
            return Err(Error::Truncated {
                layer: "udp",
                needed: len,
                got: b.len(),
            });
        }
        Ok(pkt)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Returns true when the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 means "not computed" over IPv4).
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes, as delimited by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verifies the checksum against an IPv4 pseudo-header. A zero
    /// checksum field is accepted (checksum disabled).
    pub fn verify_checksum_v4(&self, src: [u8; 4], dst: [u8; 4]) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let mut c = checksum::pseudo_header_v4(src, dst, crate::IP_PROTO_UDP, self.len());
        c.add_bytes(&self.buffer.as_ref()[..self.len() as usize]);
        c.finish() == 0
    }
}

/// Owned UDP header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Serialized header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header and computes the IPv4 checksum over
    /// `buf[..HEADER_LEN + payload.len()]`; the payload must already be in
    /// place at `buf[HEADER_LEN..]`.
    ///
    /// # Panics
    /// Panics if `buf` cannot hold header + payload.
    pub fn emit_v4(&self, buf: &mut [u8], payload_len: usize, src: [u8; 4], dst: [u8; 4]) {
        let total = HEADER_LEN + payload_len;
        assert!(buf.len() >= total, "udp buffer too short");
        assert!(total <= usize::from(u16::MAX), "udp length overflow");
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        buf[6] = 0;
        buf[7] = 0;
        let mut c: Checksum =
            checksum::pseudo_header_v4(src, dst, crate::IP_PROTO_UDP, total as u16);
        c.add_bytes(&buf[..total]);
        let mut ck = c.finish();
        // RFC 768: a computed checksum of zero is transmitted as all-ones.
        if ck == 0 {
            ck = 0xffff;
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [192, 168, 1, 1];
    const DST: [u8; 4] = [192, 168, 1, 2];

    fn build(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[HEADER_LEN..].copy_from_slice(payload);
        UdpRepr {
            src_port: 50000,
            dst_port: 3478,
        }
        .emit_v4(&mut buf, payload.len(), SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_with_checksum() {
        let buf = build(b"rtp-payload");
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_port(), 50000);
        assert_eq!(pkt.dst_port(), 3478);
        assert_eq!(pkt.payload(), b"rtp-payload");
        assert!(!pkt.is_empty());
        assert!(pkt.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = build(b"rtp-payload");
        buf[HEADER_LEN + 2] ^= 0x01;
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = build(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(pkt.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn empty_payload() {
        let buf = build(b"");
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert!(pkt.is_empty());
        assert_eq!(pkt.payload(), b"");
        assert!(pkt.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            UdpPacket::new_checked(&[0u8; 4][..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = [0u8; HEADER_LEN];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(
            UdpPacket::new_checked(&buf[..]),
            Err(Error::Malformed { .. })
        ));
        let mut buf = [0u8; HEADER_LEN];
        buf[4..6].copy_from_slice(&64u16.to_be_bytes());
        assert!(matches!(
            UdpPacket::new_checked(&buf[..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn payload_trims_trailing_padding() {
        let mut buf = build(b"abc");
        buf.extend_from_slice(&[0, 0, 0]); // Ethernet padding
        let pkt = UdpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload(), b"abc");
    }
}
