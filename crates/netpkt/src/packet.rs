//! The captured-packet model consumed by the inference pipeline.
//!
//! A passive monitor sees, per packet: a capture timestamp, the IP total
//! length, and the UDP 5-tuple + payload. [`CapturedPacket`] carries exactly
//! that, and [`UdpDatagram::parse`] produces it from raw link-layer bytes.

use crate::error::{Error, Result};
use crate::ethernet::{EtherType, EthernetFrame};
use crate::flow::FlowKey;
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::udp::UdpPacket;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::net::IpAddr;
use std::ops::{Add, Sub};

/// A microsecond-resolution capture timestamp.
///
/// Stored as microseconds since an arbitrary epoch (the pcap epoch for real
/// traces, simulation start for synthetic ones). Microseconds are plenty for
/// per-second QoE windows while keeping arithmetic exact.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Zero timestamp (epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds.
    pub fn from_secs(s: i64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Builds a timestamp from milliseconds.
    pub fn from_millis(ms: i64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Builds a timestamp from microseconds.
    pub fn from_micros(us: i64) -> Self {
        Timestamp(us)
    }

    /// Builds a timestamp from fractional seconds (rounds to the nearest µs).
    pub fn from_secs_f64(s: f64) -> Self {
        Timestamp((s * 1e6).round() as i64)
    }

    /// Whole microseconds.
    pub fn as_micros(&self) -> i64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The whole-second index this timestamp falls into (floor division, so
    /// negative times bucket consistently too).
    pub fn second_index(&self) -> i64 {
        self.0.div_euclid(1_000_000)
    }
}

impl Add for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Timestamp) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl Sub for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Timestamp) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

/// A decoded UDP datagram with its enclosing IP metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source IP address.
    pub src: IpAddr,
    /// Destination IP address.
    pub dst: IpAddr,
    /// Source UDP port.
    pub src_port: u16,
    /// Destination UDP port.
    pub dst_port: u16,
    /// IP total length (IPv4) or 40 + payload length (IPv6): the "packet
    /// size" a monitor reports and every method in the paper consumes.
    pub ip_total_len: u16,
    /// UDP payload (RTP or other application bytes).
    pub payload: Bytes,
}

/// Builds the payload [`Bytes`]: a zero-copy slice of `backing` when the
/// caller's buffer is already refcounted, a copy otherwise.
fn payload_bytes(backing: Option<&Bytes>, payload: &[u8]) -> Bytes {
    match backing {
        Some(buf) => buf.slice_ref(payload),
        None => Bytes::copy_from_slice(payload),
    }
}

impl UdpDatagram {
    /// Parses an Ethernet II frame carrying IPv4/UDP or IPv6/UDP.
    ///
    /// Returns `Ok(None)` for well-formed frames that are simply not UDP
    /// (ARP, TCP, ICMP, ...) so callers can skip them without treating the
    /// trace as corrupt.
    pub fn parse(frame_bytes: &[u8]) -> Result<Option<Self>> {
        Self::parse_inner(frame_bytes, None)
    }

    /// [`Self::parse`] from a [`Bytes`]-backed frame (a pcap record): the
    /// datagram's payload is a zero-copy slice of the record's storage
    /// instead of a fresh allocation — the hot-path form a live monitor
    /// ingests with.
    pub fn parse_shared(frame: &Bytes) -> Result<Option<Self>> {
        Self::parse_inner(frame, Some(frame))
    }

    fn parse_inner(frame_bytes: &[u8], backing: Option<&Bytes>) -> Result<Option<Self>> {
        let frame = EthernetFrame::new_checked(frame_bytes)?;
        match frame.ethertype() {
            EtherType::Ipv4 => Self::parse_ipv4_inner(frame.payload(), backing),
            EtherType::Ipv6 => Self::parse_ipv6_inner(frame.payload(), backing),
            _ => Ok(None),
        }
    }

    /// Parses from the start of an IPv4 header.
    pub fn parse_ipv4(bytes: &[u8]) -> Result<Option<Self>> {
        Self::parse_ipv4_inner(bytes, None)
    }

    /// [`Self::parse_ipv4`] with a zero-copy payload slice (see
    /// [`Self::parse_shared`]).
    pub fn parse_ipv4_shared(bytes: &Bytes) -> Result<Option<Self>> {
        Self::parse_ipv4_inner(bytes, Some(bytes))
    }

    fn parse_ipv4_inner(bytes: &[u8], backing: Option<&Bytes>) -> Result<Option<Self>> {
        let ip = Ipv4Packet::new_checked(bytes)?;
        if ip.protocol() != crate::IP_PROTO_UDP {
            return Ok(None);
        }
        if ip.more_frags() || ip.frag_offset() != 0 {
            // Fragments carry no UDP header; a monitor cannot attribute them.
            return Err(Error::Malformed {
                layer: "ipv4",
                what: "fragmented UDP not supported",
            });
        }
        let udp = UdpPacket::new_checked(ip.payload())?;
        Ok(Some(UdpDatagram {
            src: IpAddr::from(ip.src()),
            dst: IpAddr::from(ip.dst()),
            src_port: udp.src_port(),
            dst_port: udp.dst_port(),
            ip_total_len: ip.total_len(),
            payload: payload_bytes(backing, udp.payload()),
        }))
    }

    /// Parses from the start of an IPv6 header.
    pub fn parse_ipv6(bytes: &[u8]) -> Result<Option<Self>> {
        Self::parse_ipv6_inner(bytes, None)
    }

    /// [`Self::parse_ipv6`] with a zero-copy payload slice (see
    /// [`Self::parse_shared`]).
    pub fn parse_ipv6_shared(bytes: &Bytes) -> Result<Option<Self>> {
        Self::parse_ipv6_inner(bytes, Some(bytes))
    }

    fn parse_ipv6_inner(bytes: &[u8], backing: Option<&Bytes>) -> Result<Option<Self>> {
        let ip = Ipv6Packet::new_checked(bytes)?;
        if ip.next_header() != crate::IP_PROTO_UDP {
            return Ok(None);
        }
        let udp = UdpPacket::new_checked(ip.payload())?;
        Ok(Some(UdpDatagram {
            src: IpAddr::from(ip.src()),
            dst: IpAddr::from(ip.dst()),
            src_port: udp.src_port(),
            dst_port: udp.dst_port(),
            ip_total_len: (crate::ipv6::HEADER_LEN + ip.payload_len() as usize) as u16,
            payload: payload_bytes(backing, udp.payload()),
        }))
    }

    /// Canonical flow key plus whether this datagram runs A→B.
    pub fn flow_key(&self) -> (FlowKey, bool) {
        FlowKey::canonical(
            self.src,
            self.src_port,
            self.dst,
            self.dst_port,
            crate::IP_PROTO_UDP,
        )
    }

    /// UDP payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

/// A datagram paired with its capture timestamp — the unit every stage of
/// the QoE pipeline operates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// Decoded datagram.
    pub datagram: UdpDatagram,
}

impl CapturedPacket {
    /// The IP-layer packet size (what "packet size" means throughout the
    /// paper: IP header + UDP header + payload).
    pub fn size(&self) -> u16 {
        self.datagram.ip_total_len
    }

    /// UDP payload length.
    pub fn payload_len(&self) -> usize {
        self.datagram.payload_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::{EthernetRepr, MacAddr};
    use crate::ipv4::Ipv4Repr;
    use crate::udp::UdpRepr;

    pub(crate) fn build_udp_frame(payload: &[u8]) -> Vec<u8> {
        let eth = EthernetRepr {
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
        };
        let ip = Ipv4Repr {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            protocol: crate::IP_PROTO_UDP,
            payload_len: crate::udp::HEADER_LEN + payload.len(),
            ttl: 64,
            ident: 7,
        };
        let udp = UdpRepr {
            src_port: 40000,
            dst_port: 50000,
        };
        let total = 14 + 20 + 8 + payload.len();
        let mut buf = vec![0u8; total];
        eth.emit(&mut buf);
        ip.emit(&mut buf[14..]);
        buf[42..].copy_from_slice(payload);
        udp.emit_v4(&mut buf[34..], payload.len(), [10, 0, 0, 1], [10, 0, 0, 2]);
        buf
    }

    #[test]
    fn parse_ethernet_ipv4_udp() {
        let frame = build_udp_frame(b"hello-rtp");
        let dg = UdpDatagram::parse(&frame).unwrap().unwrap();
        assert_eq!(dg.src, IpAddr::from([10, 0, 0, 1]));
        assert_eq!(dg.dst, IpAddr::from([10, 0, 0, 2]));
        assert_eq!(dg.src_port, 40000);
        assert_eq!(dg.dst_port, 50000);
        assert_eq!(dg.ip_total_len, 20 + 8 + 9);
        assert_eq!(&dg.payload[..], b"hello-rtp");
    }

    #[test]
    fn non_udp_returns_none() {
        let mut frame = build_udp_frame(b"x");
        frame[23] = 6; // protocol = TCP
                       // Fix IPv4 header checksum after mutation.
        frame[24] = 0;
        frame[25] = 0;
        let ck = crate::checksum::checksum(&frame[14..34]);
        frame[24..26].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(UdpDatagram::parse(&frame).unwrap(), None);
    }

    #[test]
    fn arp_returns_none() {
        let mut frame = build_udp_frame(b"x");
        frame[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert_eq!(UdpDatagram::parse(&frame).unwrap(), None);
    }

    #[test]
    fn fragment_rejected() {
        let mut frame = build_udp_frame(b"x");
        frame[20] |= 0x20; // MF bit
        frame[24] = 0;
        frame[25] = 0;
        let ck = crate::checksum::checksum(&frame[14..34]);
        frame[24..26].copy_from_slice(&ck.to_be_bytes());
        assert!(UdpDatagram::parse(&frame).is_err());
    }

    #[test]
    fn ipv6_udp_parses() {
        use crate::ipv6::Ipv6Repr;
        let mut src = [0u8; 16];
        src[15] = 1;
        let mut dst = [0u8; 16];
        dst[15] = 2;
        let payload = b"v6-payload";
        let ip = Ipv6Repr {
            src,
            dst,
            next_header: crate::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            hop_limit: 64,
        };
        let mut buf = vec![0u8; 40 + 8 + payload.len()];
        ip.emit(&mut buf);
        buf[48..].copy_from_slice(payload);
        let udp = UdpRepr {
            src_port: 1111,
            dst_port: 2222,
        };
        // Emit with a dummy v4 pseudo-header then zero the checksum: the
        // parser does not verify v6 checksums.
        udp.emit_v4(&mut buf[40..], payload.len(), [0; 4], [0; 4]);
        let dg = UdpDatagram::parse_ipv6(&buf).unwrap().unwrap();
        assert_eq!(dg.ip_total_len as usize, 40 + 8 + payload.len());
        assert_eq!(&dg.payload[..], payload);
    }

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp::from_millis(1500);
        let b = Timestamp::from_secs(1);
        assert_eq!((a - b).as_micros(), 500_000);
        assert_eq!((a + b).as_secs_f64(), 2.5);
        assert_eq!(a.second_index(), 1);
        assert_eq!(Timestamp::from_micros(-1).second_index(), -1);
        assert_eq!(Timestamp::from_secs_f64(0.0000015).as_micros(), 2);
    }

    #[test]
    fn captured_packet_size() {
        let frame = build_udp_frame(&[0u8; 100]);
        let dg = UdpDatagram::parse(&frame).unwrap().unwrap();
        let cap = CapturedPacket {
            ts: Timestamp::from_millis(10),
            datagram: dg,
        };
        assert_eq!(cap.size(), 128);
        assert_eq!(cap.payload_len(), 100);
    }

    #[test]
    fn flow_key_direction() {
        let frame = build_udp_frame(b"x");
        let dg = UdpDatagram::parse(&frame).unwrap().unwrap();
        let (key, a_to_b) = dg.flow_key();
        assert!(a_to_b);
        assert_eq!(key.port_a, 40000);
    }
}
