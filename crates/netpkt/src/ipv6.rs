//! IPv6 header codec (RFC 8200). Extension headers are not interpreted;
//! the next-header value is surfaced as-is, which is sufficient for the
//! UDP-only traffic this library observes.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// Zero-copy view over an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wraps a buffer, validating the version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Self { buffer };
        let b = pkt.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated {
                layer: "ipv6",
                needed: HEADER_LEN,
                got: b.len(),
            });
        }
        if b[0] >> 4 != 6 {
            return Err(Error::Malformed {
                layer: "ipv6",
                what: "version is not 6",
            });
        }
        let total = HEADER_LEN + pkt.payload_len() as usize;
        if b.len() < total {
            return Err(Error::Truncated {
                layer: "ipv6",
                needed: total,
                got: b.len(),
            });
        }
        Ok(pkt)
    }

    /// Payload length field (everything after the fixed header).
    pub fn payload_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Next-header protocol number.
    pub fn next_header(&self) -> u8 {
        self.buffer.as_ref()[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src(&self) -> [u8; 16] {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[8..24]);
        a
    }

    /// Destination address.
    pub fn dst(&self) -> [u8; 16] {
        let mut a = [0u8; 16];
        a.copy_from_slice(&self.buffer.as_ref()[24..40]);
        a
    }

    /// Payload bytes, as delimited by the payload-length field.
    pub fn payload(&self) -> &[u8] {
        let total = HEADER_LEN + self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }
}

/// Owned IPv6 header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv6Repr {
    /// Source address.
    pub src: [u8; 16],
    /// Destination address.
    pub dst: [u8; 16],
    /// Next-header protocol number.
    pub next_header: u8,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Hop limit.
    pub hop_limit: u8,
}

impl Ipv6Repr {
    /// Parses the header fields out of a packet view.
    pub fn parse<T: AsRef<[u8]>>(pkt: &Ipv6Packet<T>) -> Self {
        Self {
            src: pkt.src(),
            dst: pkt.dst(),
            next_header: pkt.next_header(),
            payload_len: pkt.payload_len() as usize,
            hop_limit: pkt.hop_limit(),
        }
    }

    /// Serialized header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the 40-byte header into `buf`.
    ///
    /// # Panics
    /// Panics if `buf` is shorter than 40 bytes or the payload length
    /// overflows 16 bits.
    pub fn emit(&self, buf: &mut [u8]) {
        assert!(
            self.payload_len <= usize::from(u16::MAX),
            "ipv6 payload length overflow"
        );
        buf[0] = 0x60;
        buf[1] = 0;
        buf[2] = 0;
        buf[3] = 0;
        buf[4..6].copy_from_slice(&(self.payload_len as u16).to_be_bytes());
        buf[6] = self.next_header;
        buf[7] = self.hop_limit;
        buf[8..24].copy_from_slice(&self.src);
        buf[24..40].copy_from_slice(&self.dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> [u8; 16] {
        let mut a = [0u8; 16];
        a[0] = 0xfd;
        a[15] = last;
        a
    }

    #[test]
    fn roundtrip() {
        let repr = Ipv6Repr {
            src: addr(1),
            dst: addr(2),
            next_header: crate::IP_PROTO_UDP,
            payload_len: 8,
            hop_limit: 64,
        };
        let mut buf = vec![0u8; HEADER_LEN + 8];
        repr.emit(&mut buf);
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src(), addr(1));
        assert_eq!(pkt.dst(), addr(2));
        assert_eq!(pkt.next_header(), 17);
        assert_eq!(pkt.hop_limit(), 64);
        assert_eq!(pkt.payload_len(), 8);
        assert_eq!(Ipv6Repr::parse(&pkt), repr);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x45;
        assert!(matches!(
            Ipv6Packet::new_checked(&buf[..]),
            Err(Error::Malformed {
                what: "version is not 6",
                ..
            })
        ));
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(matches!(
            Ipv6Packet::new_checked(&[0x60u8; 20][..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_payload_len_beyond_buffer() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x60;
        buf[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            Ipv6Packet::new_checked(&buf[..]),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn payload_trims_padding() {
        let repr = Ipv6Repr {
            src: addr(1),
            dst: addr(2),
            next_header: 17,
            payload_len: 3,
            hop_limit: 64,
        };
        let mut buf = vec![0u8; HEADER_LEN + 8];
        repr.emit(&mut buf);
        buf[HEADER_LEN..HEADER_LEN + 3].copy_from_slice(&[7, 8, 9]);
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload(), &[7, 8, 9]);
    }
}
