//! # vcaml-netpkt — packet substrate
//!
//! Byte-level codecs for the protocol layers the QoE-inference pipeline
//! observes (Ethernet II, IPv4, IPv6, UDP), a [`CapturedPacket`] model that
//! carries capture timestamps alongside decoded headers, and a classic
//! libpcap file reader/writer so traces can be exchanged with tcpdump and
//! Wireshark.
//!
//! The design follows smoltcp's convention: each protocol has a cheap
//! *view* type wrapping a byte slice (`Ipv4Packet<&[u8]>` style accessors)
//! plus an owned *repr* struct (`Ipv4Repr`) used when constructing packets.
//! Nothing here allocates on the parse path except the payload copy taken
//! when a packet is retained.
//!
//! Downstream crates only ever consume IP/UDP header fields — packet sizes,
//! timestamps and the 5-tuple — which is exactly the measurement model of
//! the paper ("a network operator ... uses only IP and UDP headers").

pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod ipv6;
pub mod packet;
pub mod pcap;
pub mod udp;

pub use error::{Error, Result};
pub use ethernet::{EtherType, EthernetFrame, EthernetRepr, MacAddr};
pub use flow::{FlowDirection, FlowKey};
pub use ipv4::{Ipv4Packet, Ipv4Repr};
pub use ipv6::{Ipv6Packet, Ipv6Repr};
pub use packet::{CapturedPacket, Timestamp, UdpDatagram};
pub use pcap::{LinkType, PcapReader, PcapWriter};
pub use udp::{UdpPacket, UdpRepr};

/// IP protocol number for UDP (RFC 768).
pub const IP_PROTO_UDP: u8 = 17;
