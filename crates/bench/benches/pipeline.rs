//! Criterion micro-benchmarks for the pipeline stages, addressing the
//! paper's §7 "system considerations": how cheap is per-packet processing
//! and per-window inference if an operator deploys this at scale?

// Bench target: panicking on setup failure is idiomatic.
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use vcaml::api::build_engine;
use vcaml::engine::{FlowTable, IpUdpHeuristicEngine};
use vcaml::{
    build_samples, estimate_windows, AlertThresholds, ChannelSink, CountingSink, EngineConfig,
    EstimationMethod, EventBus, EventFilter, HeuristicParams, IpUdpHeuristic, MediaClassifier,
    Method, MonitorBuilder, MonitorRunner, PipelineOpts, QoeEstimator, QoeEvent, ReplaySource,
};
use vcaml_datasets::{inlab_corpus, to_core_trace, CorpusConfig};
use vcaml_features::{ipudp_features, windows_by_second, PktObs, DEFAULT_THETA_IAT_US};
use vcaml_mlcore::{Dataset, RandomForest, RandomForestParams, Task};
use vcaml_netem::{synth_ndt_schedule, LinkConfig, Perturbation, Perturber};
use vcaml_netpkt::{FlowKey, Timestamp, UdpDatagram};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

fn sample_trace() -> vcaml::Trace {
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(1, 30),
        duration_secs: 30,
        seed: 1,
        link: LinkConfig::default(),
    })
    .run();
    to_core_trace(&session, profile.payload_map)
}

fn bench_packet_parse(c: &mut Criterion) {
    // A realistic IPv4/UDP/RTP packet off the simulator.
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile: profile.clone(),
        schedule: synth_ndt_schedule(2, 5),
        duration_secs: 5,
        seed: 2,
        link: LinkConfig::default(),
    })
    .run();
    let cap = &session.to_captured()[100];
    let payload = &cap.datagram.payload;
    let mut frame = vec![0u8; 20 + 8 + payload.len()];
    vcaml_netpkt::Ipv4Repr {
        src: [203, 0, 113, 10],
        dst: [192, 168, 1, 100],
        protocol: vcaml_netpkt::IP_PROTO_UDP,
        payload_len: 8 + payload.len(),
        ttl: 58,
        ident: 0,
    }
    .emit(&mut frame);
    frame[28..].copy_from_slice(payload);
    vcaml_netpkt::UdpRepr {
        src_port: 3478,
        dst_port: 51820,
    }
    .emit_v4(
        &mut frame[20..],
        payload.len(),
        [203, 0, 113, 10],
        [192, 168, 1, 100],
    );

    let mut g = c.benchmark_group("packet_parse");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("ipv4_udp_decode", |b| {
        b.iter(|| UdpDatagram::parse_ipv4(std::hint::black_box(&frame)).unwrap())
    });
    g.finish();
}

fn bench_media_classification(c: &mut Criterion) {
    let trace = sample_trace();
    let classifier = MediaClassifier::default();
    let mut g = c.benchmark_group("media_classification");
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("vmin_filter_30s_trace", |b| {
        b.iter(|| classifier.video_packets(std::hint::black_box(&trace)).len())
    });
    g.finish();
}

fn bench_heuristic(c: &mut Criterion) {
    let trace = sample_trace();
    let classifier = MediaClassifier::default();
    let video: Vec<(Timestamp, u16)> = trace
        .packets
        .iter()
        .filter(|p| classifier.is_video(p))
        .map(|p| (p.ts, p.size))
        .collect();
    let heuristic = IpUdpHeuristic::new(HeuristicParams::paper(VcaKind::Teams));
    let mut g = c.benchmark_group("frame_assembly");
    g.throughput(Throughput::Elements(video.len() as u64));
    g.bench_function("ipudp_heuristic_30s_trace", |b| {
        b.iter(|| heuristic.assemble(std::hint::black_box(&video)).0.len())
    });
    g.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let trace = sample_trace();
    let classifier = MediaClassifier::default();
    let window: Vec<PktObs> = trace
        .packets
        .iter()
        .filter(|p| classifier.is_video(p) && p.ts.second_index() == 10)
        .map(|p| PktObs {
            ts: p.ts,
            size: p.size,
        })
        .collect();
    let mut g = c.benchmark_group("feature_extraction");
    g.throughput(Throughput::Elements(window.len() as u64));
    g.bench_function("ipudp_features_1s_window", |b| {
        b.iter(|| ipudp_features(std::hint::black_box(&window), 1.0, DEFAULT_THETA_IAT_US))
    });
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let traces = inlab_corpus(
        VcaKind::Teams,
        &CorpusConfig {
            n_calls: 4,
            min_secs: 25,
            max_secs: 30,
            seed: 3,
        },
    );
    let opts = PipelineOpts::paper(VcaKind::Teams);
    let set = build_samples(&traces, &opts);
    let mut d = Dataset::new(set.ipudp_names.clone());
    for s in &set.samples {
        d.push(&s.ipudp_features, s.truth.fps);
    }
    let params = RandomForestParams {
        n_trees: 40,
        seed: 1,
        ..Default::default()
    };
    let forest = RandomForest::fit(&d, Task::Regression, &params);
    let row = set.samples[0].ipudp_features.clone();

    let mut g = c.benchmark_group("random_forest");
    g.bench_function("predict_one_window", |b| {
        b.iter(|| forest.predict(std::hint::black_box(&row)))
    });
    let small = RandomForestParams {
        n_trees: 10,
        seed: 1,
        ..Default::default()
    };
    g.sample_size(10);
    g.bench_function("fit_10_trees", |b| {
        b.iter_batched(
            || d.clone(),
            |d| RandomForest::fit(&d, Task::Regression, &small),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    g.bench_function("teams_30s_call", |b| {
        b.iter(|| {
            let profile = VcaProfile::lab(VcaKind::Teams);
            Session::new(SessionConfig {
                profile,
                schedule: synth_ndt_schedule(5, 30),
                duration_secs: 30,
                seed: 5,
                link: LinkConfig::default(),
            })
            .run()
            .packets
            .len()
        })
    });
    g.finish();
}

/// Old-batch vs incremental-engine throughput on the same 30 s trace:
/// the batch path buffers the trace, assembles frames over the whole
/// capture, and re-computes features per window slice; the engine path
/// makes one pass, packet by packet.
/// Tap-side perturbation cost on a full 30 s capture — the per-cell
/// setup overhead of the `vcaml-scenario` impairment grid. The stages
/// mirror the grid's reordering + duplication scenarios.
fn bench_tap_perturb(c: &mut Criterion) {
    let profile = VcaProfile::lab(VcaKind::Teams);
    let session = Session::new(SessionConfig {
        profile,
        schedule: synth_ndt_schedule(1, 30),
        duration_secs: 30,
        seed: 1,
        link: LinkConfig::default(),
    })
    .run();
    let timed: Vec<_> = session
        .to_captured()
        .into_iter()
        .map(|p| (p.ts, p.datagram))
        .collect();
    let stages = vec![
        Perturbation::Reorder {
            pct: 12.0,
            delay_ms: 25.0,
        },
        Perturbation::Duplicate {
            pct: 10.0,
            delay_ms: 2.0,
        },
    ];

    let mut g = c.benchmark_group("tap_perturb");
    g.throughput(Throughput::Elements(timed.len() as u64));
    g.bench_function("reorder_dup_30s_capture", |b| {
        b.iter_batched(
            || timed.clone(),
            |pkts| Perturber::new(stages.clone(), 7).apply(pkts),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_batch_vs_engine(c: &mut Criterion) {
    let trace = sample_trace();
    let config = EngineConfig::paper(VcaKind::Teams);
    let n_pkts = trace.packets.len() as u64;

    let mut g = c.benchmark_group("batch_vs_engine");
    g.throughput(Throughput::Elements(n_pkts));
    g.bench_function("batch_30s_trace", |b| {
        b.iter(|| {
            let classifier = MediaClassifier::new(config.vmin);
            let video: Vec<PktObs> = trace
                .packets
                .iter()
                .filter(|p| classifier.is_video(p))
                .map(|p| PktObs {
                    ts: p.ts,
                    size: p.size,
                })
                .collect();
            let pairs: Vec<(Timestamp, u16)> = video.iter().map(|p| (p.ts, p.size)).collect();
            let (frames, _) = IpUdpHeuristic::new(config.heuristic).assemble(&pairs);
            let est = estimate_windows(&frames, trace.duration_secs as usize, 1);
            let windows = windows_by_second(&video, trace.duration_secs, 1);
            let feats: usize = windows
                .iter()
                .map(|w| ipudp_features(w, 1.0, config.theta_iat_us).len())
                .sum();
            est.len() + feats
        })
    });
    g.bench_function("engine_30s_trace", |b| {
        b.iter(|| {
            let mut heur = build_engine(Method::IpUdpHeuristic, config, trace.payload_map, None);
            let mut ml = build_engine(Method::IpUdpMl, config, trace.payload_map, None);
            let mut n = 0usize;
            for p in &trace.packets {
                n += heur.push(p).len();
                n += ml.push(p).len();
            }
            n + heur.finish().len() + ml.finish().len()
        })
    });
    g.finish();
}

/// 64 concurrent calls interleaved into one arrival-ordered feed — the
/// multi-household monitoring shape.
fn feed_64_flows() -> Vec<(FlowKey, vcaml::TracePacket)> {
    let trace = sample_trace();
    let mut feed: Vec<(FlowKey, vcaml::TracePacket)> = Vec::new();
    for flow in 0..64usize {
        let client = IpAddr::V4(Ipv4Addr::new(
            10,
            1,
            (flow / 200) as u8,
            (flow % 200) as u8 + 1,
        ));
        let relay = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 9));
        let (key, _) = FlowKey::canonical(relay, 3478, client, 51_000 + flow as u16, 17);
        // Offset each copy a little so flows are not in lockstep.
        let shift = (flow as i64 % 16) * 1_731;
        feed.extend(trace.packets.iter().map(|p| {
            let mut q = *p;
            q.ts = Timestamp::from_micros(p.ts.as_micros() + shift);
            (key, q)
        }));
    }
    feed.sort_by_key(|(_, p)| p.ts);
    feed
}

/// Splits the feed across `n_sources` replay sources by flow (a flow
/// must not span sources), preserving arrival order within each.
fn split_feed(feed: &[(FlowKey, vcaml::TracePacket)], n_sources: usize) -> Vec<ReplaySource> {
    let mut parts: Vec<Vec<(FlowKey, vcaml::TracePacket)>> = vec![Vec::new(); n_sources];
    for (key, p) in feed {
        parts[(key.port_a as usize + key.port_b as usize) % n_sources].push((*key, *p));
    }
    parts.into_iter().map(ReplaySource::from_packets).collect()
}

/// The full I/O pipeline: replay source(s) → `MonitorRunner` → counting
/// sink. With a threaded monitor, each source ingests on its own thread.
fn run_64_flows_runner(
    feed: &[(FlowKey, vcaml::TracePacket)],
    threads: usize,
    n_sources: usize,
) -> usize {
    let mut runner = MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .shards(8)
            .threads(threads)
            .idle_timeout(Timestamp::from_secs(60)),
    )
    .sink(CountingSink::default());
    for source in split_feed(feed, n_sources) {
        runner = runner.source(source);
    }
    runner.run().events as usize
}

fn run_64_flows(feed: &[(FlowKey, vcaml::TracePacket)], threads: usize) -> usize {
    run_64_flows_runner(feed, threads, 1)
}

/// Monitor-facade throughput with 64 concurrent calls — the facade's
/// demux, eviction sweep, and event bookkeeping on one thread.
fn bench_flow_table_64_flows(c: &mut Criterion) {
    let feed = feed_64_flows();
    let mut g = c.benchmark_group("flow_table");
    g.sample_size(10);
    g.throughput(Throughput::Elements(feed.len() as u64));
    g.bench_function("heuristic_64_flows", |b| b.iter(|| run_64_flows(&feed, 1)));
    g.finish();
}

/// Single-thread vs N-thread 64-flow throughput through the same feed:
/// the parallel monitor's reason to exist. The N-thread number includes
/// worker spawn/join, channel hand-offs, and the event-queue merge, so
/// the speedup shown is the end-to-end one an operator gets.
fn bench_monitor_threads(c: &mut Criterion) {
    let feed = feed_64_flows();
    let mut g = c.benchmark_group("monitor_threads");
    g.sample_size(10);
    g.throughput(Throughput::Elements(feed.len() as u64));
    g.bench_function("heuristic_64_flows_1_thread", |b| {
        b.iter(|| run_64_flows(&feed, 1))
    });
    g.bench_function("heuristic_64_flows_4_threads", |b| {
        b.iter(|| run_64_flows(&feed, 4))
    });
    g.finish();
}

/// End-to-end I/O pipeline throughput — source(s) → `MonitorRunner` →
/// sink — with 1 vs. 2 ingest threads over the same 64-flow feed and the
/// same 2-worker monitor. The 2-source number includes the second ingest
/// thread's spawn and the split of the feed, so the speedup shown is the
/// end-to-end one an operator gets from feeding a monitor off two RX
/// queues instead of one.
fn bench_runner_ingest(c: &mut Criterion) {
    let feed = feed_64_flows();
    let mut g = c.benchmark_group("runner_ingest");
    g.sample_size(10);
    g.throughput(Throughput::Elements(feed.len() as u64));
    g.bench_function("heuristic_64_flows_1_ingest", |b| {
        b.iter(|| run_64_flows_runner(&feed, 2, 1))
    });
    g.bench_function("heuristic_64_flows_2_ingest", |b| {
        b.iter(|| run_64_flows_runner(&feed, 2, 2))
    });
    g.finish();
}

/// N-subscriber event fan-out: the Arc event bus (one allocation shared
/// by every subscriber) against the pre-bus baseline that deep-cloned
/// each event per subscriber, on a realistic 64-flow event stream —
/// plus the end-to-end runner with 1 vs 8 channel subscribers, so the
/// JSON trajectory records both the isolated fan-out cost and what an
/// operator sees.
fn bench_runner_fanout(c: &mut Criterion) {
    // Produce one realistic event stream (window reports with feature
    // vectors, lifecycle, seals) to replay through the delivery paths.
    let feed = feed_64_flows();
    let (subscriber, rx) = ChannelSink::bounded(1 << 20);
    MonitorRunner::new(
        MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
            .shards(8),
    )
    .source(ReplaySource::from_packets(feed.clone()))
    .sink(subscriber)
    .run();
    let events: Vec<Arc<QoeEvent>> = rx.try_iter().collect();
    assert!(events.len() > 1000, "need a meaningful stream to fan out");
    const SUBS: usize = 8;

    let mut g = c.benchmark_group("runner_fanout");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("publish_8_subscribers_arc", |b| {
        b.iter_batched(
            || {
                let mut bus = EventBus::new(AlertThresholds::new());
                let rxs: Vec<_> = (0..SUBS)
                    .map(|_| {
                        let (sink, rx) = ChannelSink::bounded(events.len() + 1);
                        bus.subscribe(EventFilter::all(), sink);
                        rx
                    })
                    .collect();
                (bus, rxs)
            },
            |(mut bus, rxs)| {
                for event in &events {
                    bus.publish(event);
                }
                rxs.iter().map(|rx| rx.try_iter().count()).sum::<usize>()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("publish_8_subscribers_clone", |b| {
        // The ROADMAP-flagged pre-bus baseline: every subscriber gets
        // its own deep copy of every event.
        b.iter_batched(
            || {
                let (txs, rxs): (Vec<_>, Vec<_>) = (0..SUBS)
                    .map(|_| std::sync::mpsc::sync_channel::<QoeEvent>(events.len() + 1))
                    .unzip();
                (txs, rxs)
            },
            |(txs, rxs)| {
                for event in &events {
                    for tx in &txs {
                        tx.try_send((**event).clone()).expect("channel sized");
                    }
                }
                rxs.iter().map(|rx| rx.try_iter().count()).sum::<usize>()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();

    // End-to-end: the full pipeline with 1 vs 8 live subscribers.
    let run_with_subscribers = |n: usize| {
        let mut runner = MonitorRunner::new(
            MonitorBuilder::new(VcaKind::Teams)
                .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
                .shards(8),
        )
        .source(ReplaySource::from_packets(feed.clone()));
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (sink, rx) = ChannelSink::bounded(1 << 20);
            runner = runner.sink(sink);
            rxs.push(rx);
        }
        let report = runner.run();
        let delivered: usize = rxs.iter().map(|rx| rx.try_iter().count()).sum();
        report.events as usize + delivered
    };
    let mut g = c.benchmark_group("runner_fanout_e2e");
    g.sample_size(10);
    g.throughput(Throughput::Elements(feed.len() as u64));
    g.bench_function("heuristic_64_flows_1_subscriber", |b| {
        b.iter(|| run_with_subscribers(1))
    });
    g.bench_function("heuristic_64_flows_8_subscribers", |b| {
        b.iter(|| run_with_subscribers(8))
    });
    g.finish();
}

/// The hot-path wins in isolation, so the JSON trajectory records each
/// one separately from the end-to-end monitor numbers:
/// `alloc_free_engine` — the push-into engine API with reusable report
/// buffers (vs. `engine_30s_trace`'s allocating wrappers);
/// `open_addressed_table` — the linear-probe `FlowTable` hot loop with
/// the flow hash computed once per packet, as the shard router does;
/// `batched_seal` — one window-crossing batch sealing every flow's
/// expired windows in a single pass over a warm 64-flow table.
fn bench_hot_path(c: &mut Criterion) {
    let trace = sample_trace();
    let config = EngineConfig::paper(VcaKind::Teams);

    let mut g = c.benchmark_group("hot_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.packets.len() as u64));
    g.bench_function("alloc_free_engine", |b| {
        b.iter(|| {
            let mut heur = build_engine(Method::IpUdpHeuristic, config, trace.payload_map, None);
            let mut ml = build_engine(Method::IpUdpMl, config, trace.payload_map, None);
            let mut out = Vec::with_capacity(64);
            let mut n = 0usize;
            for p in &trace.packets {
                heur.push_into(p, &mut out);
                ml.push_into(p, &mut out);
                n += out.len();
                out.clear();
            }
            heur.finish_into(&mut out);
            ml.finish_into(&mut out);
            n + out.len()
        })
    });

    // Pre-route the 64-flow feed the way the dispatcher does: one
    // multiplicative hash per packet, carried alongside the key.
    let feed = feed_64_flows();
    let routed: Vec<(u64, FlowKey, vcaml::TracePacket)> =
        feed.iter().map(|(k, p)| (k.hash64(), *k, *p)).collect();
    let fresh_table = move || {
        FlowTable::new(8, Timestamp::from_secs(60), move |_: &FlowKey| {
            IpUdpHeuristicEngine::new(config)
        })
    };
    g.throughput(Throughput::Elements(routed.len() as u64));
    g.bench_function("open_addressed_table", |b| {
        b.iter_batched(
            fresh_table,
            |mut table| {
                let mut out = Vec::with_capacity(64);
                let mut n = 0usize;
                for (hash, key, pkt) in &routed {
                    table.push_hashed_into(*hash, *key, pkt, &mut out);
                    n += out.len();
                    out.clear();
                }
                n
            },
            BatchSize::LargeInput,
        )
    });

    // Warm one window per flow, then push a single batch of
    // window-crossing packets: all 64 flows seal in one pass.
    let warm: Vec<_> = routed
        .iter()
        .filter(|(_, _, p)| p.ts.as_micros() < 1_000_000)
        .cloned()
        .collect();
    let boundary: Vec<(u64, FlowKey, vcaml::TracePacket)> = {
        let mut seen = std::collections::HashSet::new();
        routed
            .iter()
            .filter(|(_, k, _)| seen.insert(*k))
            .map(|(h, k, p)| {
                let mut q = *p;
                q.ts = Timestamp::from_micros(2_100_000);
                (*h, *k, q)
            })
            .collect()
    };
    g.throughput(Throughput::Elements(boundary.len() as u64));
    g.bench_function("batched_seal", |b| {
        b.iter_batched(
            || {
                let mut table = fresh_table();
                let mut out = Vec::new();
                for (hash, key, pkt) in &warm {
                    table.push_hashed_into(*hash, *key, pkt, &mut out);
                    out.clear();
                }
                table
            },
            |mut table| {
                let mut out = Vec::with_capacity(256);
                for (hash, key, pkt) in &boundary {
                    table.push_hashed_into(*hash, *key, pkt, &mut out);
                }
                out.len()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_packet_parse,
    bench_media_classification,
    bench_heuristic,
    bench_feature_extraction,
    bench_batch_vs_engine,
    bench_hot_path,
    bench_flow_table_64_flows,
    bench_monitor_threads,
    bench_runner_ingest,
    bench_runner_fanout,
    bench_forest,
    bench_simulation,
    bench_tap_perturb
);
criterion_main!(benches);
