//! # vcaml-bench — experiment harness
//!
//! Regenerates every table and figure of the paper from simulated corpora.
//! The `repro` binary dispatches to [`experiments`]; [`ctx`] caches the
//! generated corpora and fitted sample sets so one invocation can run the
//! whole suite without recomputation; [`report`] renders paper-style
//! tables and CDFs.

pub mod ctx;
pub mod experiments;
pub mod report;
