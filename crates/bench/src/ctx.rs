//! Experiment context: corpus/sample caching and global configuration.

use std::collections::HashMap;
use vcaml::{build_samples, PipelineOpts, SampleSet, Trace};
use vcaml_datasets::{inlab_corpus, realworld_corpus, CorpusConfig};
use vcaml_mlcore::RandomForestParams;
use vcaml_rtp::VcaKind;

/// How large the generated corpora are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick smoke-test corpora (seconds of compute).
    Small,
    /// The full reproduction scale used for EXPERIMENTS.md.
    Full,
}

/// Which corpus an experiment draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corpus {
    /// NDT-driven lab conditions.
    InLab,
    /// Household deployment model.
    RealWorld,
}

/// Lazily generated, cached corpora and window samples.
pub struct Ctx {
    /// Corpus scale.
    pub scale: Scale,
    traces: HashMap<(Corpus, VcaKind), Vec<Trace>>,
    samples: HashMap<(Corpus, VcaKind, u32), SampleSet>,
}

impl Ctx {
    /// Creates an empty context.
    pub fn new(scale: Scale) -> Self {
        Ctx {
            scale,
            traces: HashMap::new(),
            samples: HashMap::new(),
        }
    }

    fn corpus_config(&self, corpus: Corpus, vca: VcaKind) -> CorpusConfig {
        let seed = 0xbead + vca as u64 * 101;
        match (corpus, self.scale) {
            (Corpus::InLab, Scale::Full) => CorpusConfig::inlab_default(seed),
            (Corpus::RealWorld, Scale::Full) => {
                // Paper: 320 Meet / 178 Teams / 417 Webex calls; keep the
                // proportions at reduced scale.
                let n_calls = match vca {
                    VcaKind::Meet => 64,
                    VcaKind::Teams => 36,
                    VcaKind::Webex => 80,
                };
                CorpusConfig {
                    n_calls,
                    ..CorpusConfig::realworld_default(seed)
                }
            }
            (Corpus::InLab, Scale::Small) => CorpusConfig {
                n_calls: 8,
                min_secs: 25,
                max_secs: 40,
                seed,
            },
            (Corpus::RealWorld, Scale::Small) => CorpusConfig {
                n_calls: 12,
                min_secs: 15,
                max_secs: 25,
                seed,
            },
        }
    }

    /// The pipeline options used everywhere (paper §4.3), with a forest
    /// sized to the scale.
    pub fn opts(&self, vca: VcaKind) -> PipelineOpts {
        let mut o = PipelineOpts::paper(vca);
        o.forest = match self.scale {
            Scale::Full => RandomForestParams {
                n_trees: 40,
                seed: 7,
                ..Default::default()
            },
            Scale::Small => RandomForestParams {
                n_trees: 15,
                seed: 7,
                ..Default::default()
            },
        };
        o
    }

    /// The traces of a corpus (generated on first use).
    pub fn traces(&mut self, corpus: Corpus, vca: VcaKind) -> &[Trace] {
        if !self.traces.contains_key(&(corpus, vca)) {
            let cfg = self.corpus_config(corpus, vca);
            let traces = match corpus {
                Corpus::InLab => inlab_corpus(vca, &cfg),
                Corpus::RealWorld => realworld_corpus(vca, &cfg),
            };
            self.traces.insert((corpus, vca), traces);
        }
        &self.traces[&(corpus, vca)]
    }

    /// Window samples for a corpus at a window size (built on first use).
    pub fn samples(&mut self, corpus: Corpus, vca: VcaKind, window_secs: u32) -> &SampleSet {
        if !self.samples.contains_key(&(corpus, vca, window_secs)) {
            let mut opts = self.opts(vca);
            opts.window_secs = window_secs;
            // Ensure the traces exist before borrowing immutably.
            self.traces(corpus, vca);
            let set = build_samples(&self.traces[&(corpus, vca)], &opts);
            self.samples.insert((corpus, vca, window_secs), set);
        }
        &self.samples[&(corpus, vca, window_secs)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_are_reused() {
        let mut ctx = Ctx::new(Scale::Small);
        let n1 = ctx.traces(Corpus::InLab, VcaKind::Webex).len();
        let p1 = ctx.traces(Corpus::InLab, VcaKind::Webex).as_ptr();
        let p2 = ctx.traces(Corpus::InLab, VcaKind::Webex).as_ptr();
        assert_eq!(p1, p2);
        assert_eq!(n1, 8);
        let s1 = ctx.samples(Corpus::InLab, VcaKind::Webex, 1).samples.len();
        assert!(s1 > 100);
    }

    #[test]
    fn realworld_scale_keeps_paper_proportions() {
        let ctx = Ctx::new(Scale::Full);
        let meet = ctx.corpus_config(Corpus::RealWorld, VcaKind::Meet).n_calls;
        let teams = ctx.corpus_config(Corpus::RealWorld, VcaKind::Teams).n_calls;
        let webex = ctx.corpus_config(Corpus::RealWorld, VcaKind::Webex).n_calls;
        assert!(webex > meet && meet > teams);
    }
}
