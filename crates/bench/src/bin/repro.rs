//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale small|full] [--out DIR] [ids...]
//! repro --list
//! ```
//!
//! With no ids, the whole suite runs. Artifacts land in `--out`
//! (default `bench_results/`), one JSON per experiment, alongside the
//! printed paper-style tables.

use vcaml_bench::ctx::{Ctx, Scale};
use vcaml_bench::experiments::registry;
use vcaml_bench::report::Sink;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut out_dir = "bench_results".to_string();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (use small|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or(out_dir);
            }
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<6} {desc}");
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale small|full] [--out DIR] [ids...] | --list");
                return;
            }
            id => ids.push(id.to_lowercase()),
        }
        i += 1;
    }

    let reg = registry();
    let to_run: Vec<_> = if ids.is_empty() {
        reg.iter().collect()
    } else {
        let known: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        for id in &ids {
            if !known.contains(&id.as_str()) {
                eprintln!("unknown experiment id '{id}' — try --list");
                std::process::exit(2);
            }
        }
        reg.iter()
            .filter(|(id, _, _)| ids.iter().any(|w| w == id))
            .collect()
    };

    let sink = Sink::new(&out_dir).expect("create output dir");
    let mut ctx = Ctx::new(scale);
    let started = std::time::Instant::now();
    for (id, desc, run) in &to_run {
        eprintln!("[{:>7.1?}] running {id}: {desc}", started.elapsed());
        run(&mut ctx, &sink);
    }
    eprintln!(
        "[{:>7.1?}] done — artifacts in {out_dir}/",
        started.elapsed()
    );
}
