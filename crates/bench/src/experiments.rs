//! One function per paper table/figure. Each prints a paper-style text
//! rendering and writes a JSON artifact via [`crate::report::Sink`].

// The experiment harness fails fast: artifact IO and corpus invariants
// are fatal here (each site carries a `// lint: allow` justification).
#![allow(clippy::unwrap_used)]

use crate::ctx::{Corpus, Ctx};
use crate::report::{cdf_points, fraction_le, section, table, Sink};
use serde_json::json;
use std::collections::HashMap;
use vcaml::{
    errors::{analyze_window, ErrorCounts},
    eval_heuristic, eval_ml_regression, eval_ml_resolution, feature_importances,
    heuristic::IpUdpHeuristic,
    media::MediaClassifier,
    pipeline::{summarize, transfer_regression},
    qoe::estimate_windows,
    Method, Target, Trace,
};
use vcaml_mlcore::{mae, percentile, Dataset, RandomForest, Task};
use vcaml_netem::{ImpairmentDim, ImpairmentProfile};
use vcaml_netpkt::Timestamp;
use vcaml_rtp::{MediaKind, VcaKind};

type ExpFn = fn(&mut Ctx, &Sink);

/// The experiment registry: (id, description, runner).
pub fn registry() -> Vec<(&'static str, &'static str, ExpFn)> {
    vec![
        ("f1", "Fig 1: packet sizes vs payload type (Teams)", f1),
        (
            "f2",
            "Fig 2: intra-/inter-frame packet size difference (Teams)",
            f2,
        ),
        ("t2", "Table 2: media classification confusion (Meet)", t2),
        (
            "ta1",
            "Table A.1: media classification confusion (Webex)",
            ta1,
        ),
        (
            "ta2",
            "Table A.2: media classification confusion (Teams)",
            ta2,
        ),
        ("f3", "Fig 3: in-lab frame rate errors", f3),
        ("f4", "Fig 4: heuristic error taxonomy", f4),
        (
            "f5",
            "Fig 5: top-5 IP/UDP ML frame-rate features (Teams)",
            f5,
        ),
        ("f6a", "Fig 6a: in-lab bitrate relative errors", f6a),
        ("f6b", "Fig 6b: in-lab frame jitter errors", f6b),
        ("f7", "Fig 7: top-5 IP/UDP ML bitrate features (Webex)", f7),
        ("f8", "Fig 8: frame jitter time series (Meet)", f8),
        (
            "f9",
            "Fig 9: top-5 IP/UDP ML resolution features (Webex)",
            f9,
        ),
        ("t3", "Table 3: resolution accuracy", t3),
        ("t4", "Table 4: Teams resolution confusion (in-lab)", t4),
        (
            "f10",
            "Fig 10: real-world errors (frame rate, bitrate, jitter)",
            f10,
        ),
        ("t5", "Table 5: transferability, frame rate MAE", t5),
        ("f11", "Fig 11: frame-rate MAE vs packet loss", f11),
        ("f12", "Fig 12: frame-rate MAE vs prediction window", f12),
        ("fa1", "Fig A.1: ground-truth QoE CDFs (in-lab)", fa1),
        ("fa2", "Fig A.2: ground-truth QoE CDFs (real-world)", fa2),
        (
            "fa3",
            "Fig A.3: heuristic frame-assignment illustration",
            fa3,
        ),
        (
            "fa4",
            "Fig A.4: IP/UDP ML frame-rate features (Meet, Webex)",
            fa4,
        ),
        ("fa5", "Fig A.5: RTP ML frame-rate features (all VCAs)", fa5),
        (
            "fa6",
            "Fig A.6: IP/UDP ML bitrate features (Meet, Teams)",
            fa6,
        ),
        ("fa7", "Fig A.7: RTP ML bitrate features (all VCAs)", fa7),
        (
            "fa8",
            "Fig A.8: IP/UDP ML resolution features (Meet, Teams)",
            fa8,
        ),
        ("fa9", "Fig A.9: RTP ML resolution features (all VCAs)", fa9),
        (
            "fa10",
            "Fig A.10: frame-rate MAE vs heuristic lookback",
            fa10,
        ),
        (
            "ta3",
            "Table A.3: Teams resolution confusion (real-world)",
            ta3,
        ),
        ("ta4", "Table A.4: transferability, bitrate MAE", ta4),
        ("ta5", "Table A.5: transferability, frame jitter MAE", ta5),
        ("ta6", "Table A.6: impairment profiles", ta6),
        ("ab1", "Ablation: Vmin threshold sweep", ab1),
        ("ab2", "Ablation: semantics features on/off", ab2),
        ("ab3", "Ablation: forest size vs accuracy", ab3),
        ("ab4", "Ablation: microburst threshold sweep", ab4),
        ("ab5", "Ablation: heuristic size-delta sweep", ab5),
        ("ab6", "Ablation: model family comparison", ab6),
        (
            "am1",
            "Extension: application modes (video-off, multi-party)",
            am1,
        ),
    ]
}

// ---------------------------------------------------------------------
// Packet-level characterization (Figs 1, 2, A.1–A.3; Tables 2, A.1, A.2)
// ---------------------------------------------------------------------

fn media_sizes(traces: &[Trace]) -> HashMap<&'static str, Vec<f64>> {
    let mut by_kind: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for t in traces {
        for p in &t.packets {
            let key = match p.truth_media {
                Some(MediaKind::Audio) => "Audio",
                Some(MediaKind::Video) => "Video",
                Some(MediaKind::VideoRtx) => "Video-RTx",
                _ => continue,
            };
            by_kind.entry(key).or_default().push(f64::from(p.size));
        }
    }
    by_kind
}

fn f1(ctx: &mut Ctx, sink: &Sink) {
    section("F1", "Packet sizes vs payload type, Teams in-lab");
    let traces = ctx.traces(Corpus::InLab, VcaKind::Teams).to_vec();
    let by_kind = media_sizes(&traces);
    let total: usize = by_kind.values().map(Vec::len).sum();
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for kind in ["Audio", "Video-RTx", "Video"] {
        let sizes = &by_kind[kind];
        let share = sizes.len() as f64 / total as f64 * 100.0;
        let p1 = percentile(sizes, 1.0);
        let p99 = percentile(sizes, 99.0);
        rows.push(vec![
            kind.to_string(),
            format!("{share:.0}%"),
            format!(
                "[{:.0}, {:.0}]",
                percentile(sizes, 0.0),
                percentile(sizes, 100.0)
            ),
            format!("{p1:.0}"),
            format!("{p99:.0}"),
        ]);
        artifact.insert(
            kind.into(),
            json!({ "share_pct": share, "cdf": cdf_points(sizes, 21) }),
        );
    }
    println!(
        "{}",
        table(&["Media", "Share", "Size range [B]", "p1", "p99"], &rows)
    );
    let video = &by_kind["Video"];
    println!(
        "video packets > 564 B: {:.1}% (paper: 99%)",
        (1.0 - fraction_le(video, 564.0)) * 100.0
    );
    sink.write("f1", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// Per-frame packet sizes from PT-classified video packets, in arrival
/// order, grouped by RTP timestamp.
fn truth_frames_sizes(trace: &Trace) -> Vec<Vec<u16>> {
    let mut frames: Vec<(u32, Vec<u16>)> = Vec::new();
    for p in trace.rtp_video_packets() {
        let ts = p.rtp.unwrap().timestamp; // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
        match frames.iter_mut().rev().take(8).find(|(t, _)| *t == ts) {
            Some((_, v)) => v.push(p.size),
            None => frames.push((ts, vec![p.size])),
        }
    }
    frames.into_iter().map(|(_, v)| v).collect()
}

fn f2(ctx: &mut Ctx, sink: &Sink) {
    section(
        "F2",
        "Intra- vs inter-frame packet size difference, Teams in-lab",
    );
    let traces = ctx.traces(Corpus::InLab, VcaKind::Teams).to_vec();
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for t in &traces {
        let frames = truth_frames_sizes(t);
        for f in &frames {
            if f.len() >= 2 {
                let lo = *f.iter().min().unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
                let hi = *f.iter().max().unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
                intra.push(f64::from(hi - lo));
            }
        }
        for w in frames.windows(2) {
            let last = *w[0].last().unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
            let first = w[1][0];
            inter.push(f64::from(last.abs_diff(first)));
        }
    }
    println!(
        "frames analyzed: {} multi-packet, {} consecutive pairs",
        intra.len(),
        inter.len()
    );
    println!(
        "intra-frame diff < 2 B: {:.2}% (paper: ~100%)",
        fraction_le(&intra, 1.99) * 100.0
    );
    println!(
        "inter-frame diff >= 2 B: {:.2}% (paper: 99.4%)",
        (1.0 - fraction_le(&inter, 1.99)) * 100.0
    );
    sink.write(
        "f2",
        &json!({
            "intra_cdf": cdf_points(&intra, 21),
            "inter_cdf": cdf_points(&inter, 21),
            "intra_le_2": fraction_le(&intra, 1.99),
            "inter_ge_2": 1.0 - fraction_le(&inter, 1.99),
        }),
    )
    .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn media_confusion(ctx: &mut Ctx, sink: &Sink, id: &str, vca: VcaKind) {
    section(
        &id.to_uppercase(),
        &format!("Media classification confusion, {vca} in-lab"),
    );
    let traces = ctx.traces(Corpus::InLab, vca).to_vec();
    let opts = ctx.opts(vca);
    let classifier = MediaClassifier::new(opts.vmin);
    let mut m = vcaml_mlcore::ConfusionMatrix::new(vec!["Non-video".into(), "Video".into()]);
    for t in &traces {
        let part = classifier.evaluate(t, 304);
        for a in 0..2 {
            for p in 0..2 {
                for _ in 0..part.count(a, p) {
                    m.record(a, p);
                }
            }
        }
    }
    println!("{}", m.render());
    sink.write(
        id,
        &json!({
            "vca": vca.name(),
            "non_video": { "correct_pct": m.percent(0,0), "misclassified_pct": m.percent(0,1), "total": m.row_total(0) },
            "video": { "correct_pct": m.percent(1,1), "missed_pct": m.percent(1,0), "total": m.row_total(1) },
        }),
    )
    .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn t2(ctx: &mut Ctx, sink: &Sink) {
    media_confusion(ctx, sink, "t2", VcaKind::Meet);
}
fn ta1(ctx: &mut Ctx, sink: &Sink) {
    media_confusion(ctx, sink, "ta1", VcaKind::Webex);
}
fn ta2(ctx: &mut Ctx, sink: &Sink) {
    media_confusion(ctx, sink, "ta2", VcaKind::Teams);
}

fn truth_cdfs(ctx: &mut Ctx, sink: &Sink, id: &str, corpus: Corpus) {
    let label = if corpus == Corpus::InLab {
        "in-lab"
    } else {
        "real-world"
    };
    section(
        &id.to_uppercase(),
        &format!("Ground-truth QoE CDFs, {label}"),
    );
    let mut artifact = serde_json::Map::new();
    let mut rows = Vec::new();
    for vca in VcaKind::ALL {
        let traces = ctx.traces(corpus, vca).to_vec();
        let mut fps = Vec::new();
        let mut br = Vec::new();
        let mut jit = Vec::new();
        for t in &traces {
            for r in &t.truth {
                fps.push(r.fps);
                br.push(r.bitrate_kbps);
                jit.push(r.frame_jitter_ms);
            }
        }
        rows.push(vec![
            vca.name().to_string(),
            format!("{:.1}", percentile(&fps, 50.0)),
            format!("{:.0}", percentile(&br, 50.0)),
            format!("{:.1}", percentile(&jit, 50.0)),
            format!("{}", fps.len()),
        ]);
        artifact.insert(
            vca.name().into(),
            json!({
                "fps_cdf": cdf_points(&fps, 21),
                "bitrate_cdf": cdf_points(&br, 21),
                "jitter_cdf": cdf_points(&jit, 21),
            }),
        );
    }
    println!(
        "{}",
        table(
            &[
                "VCA",
                "median FPS",
                "median kbps",
                "median jitter ms",
                "seconds"
            ],
            &rows
        )
    );
    sink.write(id, &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn fa1(ctx: &mut Ctx, sink: &Sink) {
    truth_cdfs(ctx, sink, "fa1", Corpus::InLab);
}
fn fa2(ctx: &mut Ctx, sink: &Sink) {
    truth_cdfs(ctx, sink, "fa2", Corpus::RealWorld);
}

fn fa3(ctx: &mut Ctx, sink: &Sink) {
    section(
        "FA3",
        "IP/UDP Heuristic frame assignment over one 1-s window (Teams)",
    );
    let traces = ctx.traces(Corpus::InLab, VcaKind::Teams).to_vec();
    let opts = ctx.opts(VcaKind::Teams);
    let trace = &traces[0];
    // Take the PT-video packets of second 5.
    let pkts: Vec<(Timestamp, u16, u32)> = trace
        .rtp_video_packets()
        .filter(|p| p.ts.second_index() == 5)
        .map(|p| (p.ts, p.size, p.rtp.unwrap().timestamp)) // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
        .collect();
    let input: Vec<(Timestamp, u16)> = pkts.iter().map(|&(t, s, _)| (t, s)).collect();
    let (_, asg) = IpUdpHeuristic::new(opts.heuristic).assemble(&input);
    // Renumber RTP timestamps and frame ids for readability.
    let mut ts_ids: Vec<u32> = Vec::new();
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for (i, &(_, size, ts)) in pkts.iter().enumerate().take(24) {
        let ts_id = match ts_ids.iter().position(|&t| t == ts) {
            Some(p) => p + 1,
            None => {
                ts_ids.push(ts);
                ts_ids.len()
            }
        };
        rows.push(vec![
            format!("{i}"),
            format!("{size}"),
            format!("{ts_id}"),
            format!("{}", asg[i].frame_id + 1),
        ]);
        artifact.push(
            json!({"pkt": i, "size": size, "rtp_frame": ts_id, "assigned": asg[i].frame_id + 1}),
        );
    }
    println!(
        "{}",
        table(&["Pkt", "Size [B]", "True frame", "Assigned frame"], &rows)
    );
    sink.write("fa3", &artifact).unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

// ---------------------------------------------------------------------
// Method accuracy (Figs 3, 6a, 6b, 10; Fig 8 time series)
// ---------------------------------------------------------------------

/// (preds, truths) for any (method, regression target).
fn run_method(
    ctx: &mut Ctx,
    corpus: Corpus,
    vca: VcaKind,
    method: Method,
    target: Target,
) -> (Vec<f64>, Vec<f64>) {
    let opts = ctx.opts(vca);
    let set = ctx.samples(corpus, vca, 1);
    if method.is_ml() {
        eval_ml_regression(set, method, target, &opts)
    } else {
        eval_heuristic(set, method, target)
    }
}

fn error_figure(
    ctx: &mut Ctx,
    sink: &Sink,
    id: &str,
    title: &str,
    corpus: Corpus,
    target: Target,
    relative: bool,
) {
    section(&id.to_uppercase(), title);
    let metric_label = if relative { "MRAE" } else { "MAE" };
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        for method in Method::ALL {
            let (preds, truths) = run_method(ctx, corpus, vca, method, target);
            let errs: Vec<f64> = if relative {
                preds
                    .iter()
                    .zip(&truths)
                    .filter(|(_, t)| t.abs() > 1e-9)
                    .map(|(p, t)| (p - t) / t)
                    .collect()
            } else {
                preds.iter().zip(&truths).map(|(p, t)| p - t).collect()
            };
            let headline = if relative {
                vcaml_mlcore::mrae(&preds, &truths)
            } else {
                mae(&preds, &truths)
            };
            rows.push(vec![
                vca.name().to_string(),
                method.name().to_string(),
                if relative {
                    format!("{:.0}%", headline * 100.0)
                } else {
                    format!("{headline:.2}")
                },
                format!("{:.2}", percentile(&errs, 10.0)),
                format!("{:.2}", percentile(&errs, 50.0)),
                format!("{:.2}", percentile(&errs, 90.0)),
            ]);
            artifact.insert(
                format!("{}/{}", vca.name(), method.name()),
                json!({
                    "headline": headline,
                    "p10": percentile(&errs, 10.0),
                    "median": percentile(&errs, 50.0),
                    "p90": percentile(&errs, 90.0),
                    "n": errs.len(),
                }),
            );
        }
    }
    println!(
        "{}",
        table(
            &["VCA", "Method", metric_label, "p10", "median", "p90"],
            &rows
        )
    );
    sink.write(id, &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn f3(ctx: &mut Ctx, sink: &Sink) {
    error_figure(
        ctx,
        sink,
        "f3",
        "In-lab frame rate errors [FPS]",
        Corpus::InLab,
        Target::FrameRate,
        false,
    );
}

fn f6a(ctx: &mut Ctx, sink: &Sink) {
    error_figure(
        ctx,
        sink,
        "f6a",
        "In-lab bitrate relative errors",
        Corpus::InLab,
        Target::Bitrate,
        true,
    );
}

fn f6b(ctx: &mut Ctx, sink: &Sink) {
    error_figure(
        ctx,
        sink,
        "f6b",
        "In-lab frame jitter errors [ms]",
        Corpus::InLab,
        Target::FrameJitter,
        false,
    );
}

fn f10(ctx: &mut Ctx, sink: &Sink) {
    error_figure(
        ctx,
        sink,
        "f10a",
        "Real-world frame rate errors [FPS]",
        Corpus::RealWorld,
        Target::FrameRate,
        false,
    );
    error_figure(
        ctx,
        sink,
        "f10b",
        "Real-world bitrate relative errors",
        Corpus::RealWorld,
        Target::Bitrate,
        true,
    );
    error_figure(
        ctx,
        sink,
        "f10c",
        "Real-world frame jitter errors [ms]",
        Corpus::RealWorld,
        Target::FrameJitter,
        false,
    );
    sink.write("f10", &json!({"see": ["f10a", "f10b", "f10c"]}))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn f4(ctx: &mut Ctx, sink: &Sink) {
    section("F4", "Heuristic error taxonomy (avg frames per 1-s window)");
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let opts = ctx.opts(vca);
        let traces = ctx.traces(Corpus::InLab, vca).to_vec();
        let mut total = ErrorCounts::default();
        for t in &traces {
            // Per-second windows of PT-video packets.
            let mut by_sec: HashMap<i64, Vec<(Timestamp, u16, u32)>> = HashMap::new();
            for p in t.rtp_video_packets() {
                by_sec.entry(p.ts.second_index()).or_default().push((
                    p.ts,
                    p.size,
                    p.rtp.unwrap().timestamp, // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
                ));
            }
            for pkts in by_sec.values() {
                if pkts.len() < 2 {
                    continue;
                }
                let input: Vec<(Timestamp, u16)> = pkts.iter().map(|&(t, s, _)| (t, s)).collect();
                let (_, asg) = IpUdpHeuristic::new(opts.heuristic).assemble(&input);
                let st: Vec<(u16, u32)> = pkts.iter().map(|&(_, s, ts)| (s, ts)).collect();
                total.add(&analyze_window(&st, &asg, &opts.heuristic));
            }
        }
        let (s, i, c) = total.averages();
        rows.push(vec![
            vca.name().to_string(),
            format!("{s:.2}"),
            format!("{i:.2}"),
            format!("{c:.2}"),
        ]);
        artifact.insert(
            vca.name().into(),
            json!({"splits": s, "interleaves": i, "coalesces": c, "windows": total.windows}),
        );
    }
    println!(
        "{}",
        table(&["VCA", "Splits", "Interleaves", "Coalesces"], &rows)
    );
    sink.write("f4", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn f8(ctx: &mut Ctx, sink: &Sink) {
    section("F8", "Frame jitter time series for one Meet in-lab trace");
    let opts = ctx.opts(VcaKind::Meet);
    let set = ctx.samples(Corpus::InLab, VcaKind::Meet, 1).clone();
    // Pick the trace with the biggest jitter spike.
    let spike_trace = set
        .samples
        .iter()
        .max_by(|a, b| a.truth.frame_jitter_ms.total_cmp(&b.truth.frame_jitter_ms))
        .map(|s| s.trace_id)
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
                   // Train on every other trace, predict the chosen one.
    let mut train = Dataset::new(set.ipudp_names.clone());
    let mut test_feats: Vec<(i64, Vec<f64>, f64)> = Vec::new();
    for s in &set.samples {
        if s.trace_id == spike_trace {
            test_feats.push((
                s.truth.second,
                s.ipudp_features.clone(),
                s.truth.frame_jitter_ms,
            ));
        } else {
            train.push(&s.ipudp_features, s.truth.frame_jitter_ms);
        }
    }
    let forest = RandomForest::fit(&train, Task::Regression, &opts.forest);
    test_feats.sort_by_key(|(sec, _, _)| *sec);
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for (sec, feats, truth) in &test_feats {
        let pred = forest.predict(feats);
        rows.push(vec![
            format!("{sec}"),
            format!("{pred:.1}"),
            format!("{truth:.1}"),
        ]);
        artifact.push(json!({"t": sec, "pred_ms": pred, "truth_ms": truth}));
    }
    println!(
        "{}",
        table(&["t [s]", "IP/UDP ML [ms]", "Ground truth [ms]"], &rows)
    );
    sink.write("f8", &artifact).unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

// ---------------------------------------------------------------------
// Feature importances (Figs 5, 7, 9, A.4–A.9)
// ---------------------------------------------------------------------

fn importance_figure(
    ctx: &mut Ctx,
    sink: &Sink,
    id: &str,
    title: &str,
    method: Method,
    target: Target,
    vcas: &[VcaKind],
) {
    section(&id.to_uppercase(), title);
    let mut artifact = serde_json::Map::new();
    for &vca in vcas {
        let opts = ctx.opts(vca);
        let set = ctx.samples(Corpus::InLab, vca, 1).clone();
        let top = feature_importances(&set, method, target, &opts, 5);
        let rows: Vec<Vec<String>> = top
            .iter()
            .map(|(name, imp)| vec![name.clone(), format!("{:.1}%", imp * 100.0)])
            .collect();
        println!("-- {vca}");
        println!("{}", table(&["Feature", "Importance"], &rows));
        artifact.insert(
            vca.name().into(),
            json!(top
                .iter()
                .map(|(n, v)| json!({"feature": n, "importance": v}))
                .collect::<Vec<_>>()),
        );
    }
    sink.write(id, &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn f5(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "f5",
        "IP/UDP ML frame-rate importances (Teams)",
        Method::IpUdpMl,
        Target::FrameRate,
        &[VcaKind::Teams],
    );
}
fn fa4(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa4",
        "IP/UDP ML frame-rate importances (Meet, Webex)",
        Method::IpUdpMl,
        Target::FrameRate,
        &[VcaKind::Meet, VcaKind::Webex],
    );
}
fn fa5(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa5",
        "RTP ML frame-rate importances",
        Method::RtpMl,
        Target::FrameRate,
        &VcaKind::ALL,
    );
}
fn f7(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "f7",
        "IP/UDP ML bitrate importances (Webex)",
        Method::IpUdpMl,
        Target::Bitrate,
        &[VcaKind::Webex],
    );
}
fn fa6(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa6",
        "IP/UDP ML bitrate importances (Meet, Teams)",
        Method::IpUdpMl,
        Target::Bitrate,
        &[VcaKind::Meet, VcaKind::Teams],
    );
}
fn fa7(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa7",
        "RTP ML bitrate importances",
        Method::RtpMl,
        Target::Bitrate,
        &VcaKind::ALL,
    );
}
fn f9(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "f9",
        "IP/UDP ML resolution importances (Webex)",
        Method::IpUdpMl,
        Target::Resolution,
        &[VcaKind::Webex],
    );
}
fn fa8(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa8",
        "IP/UDP ML resolution importances (Meet, Teams)",
        Method::IpUdpMl,
        Target::Resolution,
        &[VcaKind::Meet, VcaKind::Teams],
    );
}
fn fa9(ctx: &mut Ctx, sink: &Sink) {
    importance_figure(
        ctx,
        sink,
        "fa9",
        "RTP ML resolution importances",
        Method::RtpMl,
        Target::Resolution,
        &VcaKind::ALL,
    );
}

// ---------------------------------------------------------------------
// Resolution classification (Tables 3, 4, A.3)
// ---------------------------------------------------------------------

fn t3(ctx: &mut Ctx, sink: &Sink) {
    section("T3", "Resolution estimation accuracy (in-lab)");
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for method in [Method::IpUdpMl, Method::RtpMl] {
        let mut row = vec![method.name().to_string()];
        for vca in VcaKind::ALL {
            let opts = ctx.opts(vca);
            let set = ctx.samples(Corpus::InLab, vca, 1).clone();
            let acc = eval_ml_resolution(&set, method, &opts)
                .map_or("n/a".to_string(), |(_, a)| format!("{:.2}%", a * 100.0));
            artifact.insert(format!("{}/{}", method.name(), vca.name()), json!(acc));
            row.push(acc);
        }
        rows.push(row);
    }
    println!("{}", table(&["Method", "Meet", "Teams", "Webex"], &rows));
    sink.write("t3", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn resolution_confusion(ctx: &mut Ctx, sink: &Sink, id: &str, corpus: Corpus) {
    let label = if corpus == Corpus::InLab {
        "in-lab"
    } else {
        "real-world"
    };
    section(
        &id.to_uppercase(),
        &format!("Teams resolution confusion, IP/UDP ML, {label}"),
    );
    let opts = ctx.opts(VcaKind::Teams);
    let set = ctx.samples(corpus, VcaKind::Teams, 1).clone();
    match eval_ml_resolution(&set, Method::IpUdpMl, &opts) {
        Some((m, acc)) => {
            println!("{}", m.render());
            println!("overall accuracy: {:.2}%", acc * 100.0);
            let labels = m.labels().to_vec();
            let cells: Vec<serde_json::Value> = (0..labels.len())
                .map(|a| {
                    json!({
                        "actual": labels[a],
                        "total": m.row_total(a),
                        "pct": (0..labels.len()).map(|p| m.percent(a, p)).collect::<Vec<_>>(),
                    })
                })
                .collect();
            sink.write(id, &json!({"accuracy": acc, "cells": cells}))
                .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
        }
        None => println!("not classifiable (single resolution class)"),
    }
}

fn t4(ctx: &mut Ctx, sink: &Sink) {
    resolution_confusion(ctx, sink, "t4", Corpus::InLab);
}
fn ta3(ctx: &mut Ctx, sink: &Sink) {
    resolution_confusion(ctx, sink, "ta3", Corpus::RealWorld);
}

// ---------------------------------------------------------------------
// Transferability (Tables 5, A.4, A.5)
// ---------------------------------------------------------------------

fn transfer_table(ctx: &mut Ctx, sink: &Sink, id: &str, target: Target, unit: &str) {
    section(
        &id.to_uppercase(),
        &format!("Lab-trained models on real-world data ({unit} MAE)"),
    );
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for method in [Method::IpUdpMl, Method::RtpMl] {
        let mut row = vec![method.name().to_string()];
        for vca in VcaKind::ALL {
            let opts = ctx.opts(vca);
            let train = ctx.samples(Corpus::InLab, vca, 1).clone();
            let test = ctx.samples(Corpus::RealWorld, vca, 1).clone();
            let (p, t) = transfer_regression(&train, &test, method, target, &opts);
            let m = mae(&p, &t);
            artifact.insert(format!("{}/{}", method.name(), vca.name()), json!(m));
            row.push(format!("{m:.2}"));
        }
        rows.push(row);
    }
    println!("{}", table(&["Method", "Meet", "Teams", "Webex"], &rows));
    sink.write(id, &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn t5(ctx: &mut Ctx, sink: &Sink) {
    transfer_table(ctx, sink, "t5", Target::FrameRate, "FPS");
}
fn ta4(ctx: &mut Ctx, sink: &Sink) {
    transfer_table(ctx, sink, "ta4", Target::Bitrate, "kbps");
}
fn ta5(ctx: &mut Ctx, sink: &Sink) {
    transfer_table(ctx, sink, "ta5", Target::FrameJitter, "ms");
}

// ---------------------------------------------------------------------
// Sensitivity studies (Figs 11, 12, A.10; Table A.6)
// ---------------------------------------------------------------------

fn f11(ctx: &mut Ctx, sink: &Sink) {
    section("F11", "IP/UDP ML frame-rate MAE vs packet loss");
    let (calls, secs) = match ctx.scale {
        crate::ctx::Scale::Full => (4, 30),
        crate::ctx::Scale::Small => (2, 15),
    };
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let mut opts = ctx.opts(vca);
        opts.cv_folds = 2;
        let mut per_value = Vec::new();
        // Build one sample set per loss value, split 50/50 train/test
        // (§5.4: models trained on half the data across all conditions).
        let mut train = Dataset::new(vcaml_features::ipudp_feature_names());
        type TestRows = Vec<(Vec<f64>, f64)>;
        let mut tests: Vec<(f64, TestRows)> = Vec::new();
        for &loss in ImpairmentDim::PacketLoss.values() {
            let traces = vcaml_datasets::sweep_value_corpus(
                vca,
                ImpairmentProfile {
                    dim: ImpairmentDim::PacketLoss,
                    value: loss,
                },
                calls,
                secs,
                0xf11 + vca as u64,
            );
            let set = vcaml::build_samples(&traces, &opts);
            let mut test_rows = Vec::new();
            for (i, s) in set.samples.iter().enumerate() {
                if i % 2 == 0 {
                    train.push(&s.ipudp_features, s.truth.fps);
                } else {
                    test_rows.push((s.ipudp_features.clone(), s.truth.fps));
                }
            }
            tests.push((loss, test_rows));
        }
        let forest = RandomForest::fit(&train, Task::Regression, &opts.forest);
        for (loss, test_rows) in tests {
            let preds: Vec<f64> = test_rows.iter().map(|(f, _)| forest.predict(f)).collect();
            let truths: Vec<f64> = test_rows.iter().map(|(_, t)| *t).collect();
            let m = mae(&preds, &truths);
            per_value.push((loss, m));
        }
        rows.push({
            let mut r = vec![vca.name().to_string()];
            r.extend(per_value.iter().map(|(_, m)| format!("{m:.2}")));
            r
        });
        artifact.insert(
            vca.name().into(),
            json!(per_value
                .iter()
                .map(|(l, m)| json!({"loss_pct": l, "mae": m}))
                .collect::<Vec<_>>()),
        );
    }
    let mut headers = vec!["VCA"];
    let labels: Vec<String> = ImpairmentDim::PacketLoss
        .values()
        .iter()
        .map(|v| format!("{v}%"))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    println!("{}", table(&headers, &rows));
    sink.write("f11", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn f12(ctx: &mut Ctx, sink: &Sink) {
    section(
        "F12",
        "IP/UDP ML frame-rate MAE vs prediction window (in-lab)",
    );
    let windows = [1u32, 2, 4, 6, 8, 10];
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let mut per_w = Vec::new();
        for &w in &windows {
            let mut opts = ctx.opts(vca);
            opts.window_secs = w;
            let set = ctx.samples(Corpus::InLab, vca, w).clone();
            let (p, t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
            per_w.push((w, mae(&p, &t)));
        }
        rows.push({
            let mut r = vec![vca.name().to_string()];
            r.extend(per_w.iter().map(|(_, m)| format!("{m:.2}")));
            r
        });
        artifact.insert(
            vca.name().into(),
            json!(per_w
                .iter()
                .map(|(w, m)| json!({"window_s": w, "mae": m}))
                .collect::<Vec<_>>()),
        );
    }
    let headers: Vec<String> = std::iter::once("VCA".to_string())
        .chain(windows.iter().map(|w| format!("{w}s")))
        .collect();
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&href, &rows));
    sink.write("f12", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn fa10(ctx: &mut Ctx, sink: &Sink) {
    section(
        "FA10",
        "IP/UDP Heuristic frame-rate MAE vs packet lookback (in-lab)",
    );
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let opts = ctx.opts(vca);
        let traces = ctx.traces(Corpus::InLab, vca).to_vec();
        let classifier = MediaClassifier::new(opts.vmin);
        let mut per_lb = Vec::new();
        for lookback in 1..=10usize {
            let params = vcaml::HeuristicParams {
                delta_max_size: 2,
                lookback,
            };
            let mut preds = Vec::new();
            let mut truths = Vec::new();
            for t in &traces {
                let video: Vec<(Timestamp, u16)> = t
                    .packets
                    .iter()
                    .filter(|p| classifier.is_video(p))
                    .map(|p| (p.ts, p.size))
                    .collect();
                let (frames, _) = IpUdpHeuristic::new(params).assemble(&video);
                let est = estimate_windows(&frames, t.duration_secs as usize, 1);
                for r in &t.truth {
                    if let Some(e) = est.get(r.second as usize) {
                        preds.push(e.fps);
                        truths.push(r.fps);
                    }
                }
            }
            per_lb.push(mae(&preds, &truths));
        }
        rows.push({
            let mut r = vec![vca.name().to_string()];
            r.extend(per_lb.iter().map(|m| format!("{m:.2}")));
            r
        });
        artifact.insert(vca.name().into(), json!(per_lb));
    }
    let headers: Vec<String> = std::iter::once("VCA".to_string())
        .chain((1..=10).map(|l| format!("lb{l}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&href, &rows));
    sink.write("fa10", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

fn ta6(_ctx: &mut Ctx, sink: &Sink) {
    section("TA6", "Impairment profiles (emulation grid)");
    let mut rows = Vec::new();
    for dim in ImpairmentDim::ALL {
        let vals: Vec<String> = dim.values().iter().map(|v| format!("{v}")).collect();
        rows.push(vec![dim.label().to_string(), vals.join(", ")]);
    }
    println!("{}", table(&["Impairment", "Values"], &rows));
    sink.write(
        "ta6",
        &json!(ImpairmentDim::ALL
            .iter()
            .map(|d| json!({"dim": d.label(), "values": d.values()}))
            .collect::<Vec<_>>()),
    )
    .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

// ---------------------------------------------------------------------
// Per-method summaries (used by the summarize helper re-export)
// ---------------------------------------------------------------------

/// Convenience for external callers: full (method × target) summary for a
/// corpus.
pub fn full_summary(
    ctx: &mut Ctx,
    corpus: Corpus,
    vca: VcaKind,
) -> Vec<(Method, Target, vcaml::EvalSummary)> {
    let mut out = Vec::new();
    for method in Method::ALL {
        for target in [Target::FrameRate, Target::Bitrate, Target::FrameJitter] {
            let (p, t) = run_method(ctx, corpus, vca, method, target);
            out.push((method, target, summarize(&p, &t)));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5) — design-choice sensitivity beyond the paper
// ---------------------------------------------------------------------

/// AB1: `Vmin` media-classification threshold sweep. Too low pulls audio
/// into the video stream; too high drops real video packets.
pub fn ab1(ctx: &mut Ctx, sink: &Sink) {
    section("AB1", "Media classification accuracy vs Vmin threshold");
    let vmins = [300u16, 400, 450, 500, 564, 700, 900];
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let traces = ctx.traces(Corpus::InLab, vca).to_vec();
        let mut row = vec![vca.name().to_string()];
        let mut per_v = Vec::new();
        for &vmin in &vmins {
            let classifier = MediaClassifier::new(vmin);
            let (mut correct, mut total) = (0u64, 0u64);
            for t in &traces {
                let m = classifier.evaluate(t, 304);
                correct += m.count(0, 0) + m.count(1, 1);
                total += m.row_total(0) + m.row_total(1);
            }
            let acc = correct as f64 / total as f64;
            row.push(format!("{:.2}%", acc * 100.0));
            per_v.push(json!({"vmin": vmin, "accuracy": acc}));
        }
        rows.push(row);
        artifact.insert(vca.name().into(), json!(per_v));
    }
    let headers: Vec<String> = std::iter::once("VCA".to_string())
        .chain(vmins.iter().map(|v| format!("{v}B")))
        .collect();
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&href, &rows));
    sink.write("ab1", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AB2: value of the semantics features — IP/UDP ML with flow statistics
/// only vs the full 14-feature set (frame rate, in-lab).
pub fn ab2(ctx: &mut Ctx, sink: &Sink) {
    section(
        "AB2",
        "IP/UDP ML frame-rate MAE: flow-stats-only vs +semantics features",
    );
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let opts = ctx.opts(vca);
        let set = ctx.samples(Corpus::InLab, vca, 1).clone();
        // Full 14-feature model.
        let (p_full, t_full) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
        let mae_full = mae(&p_full, &t_full);
        // Flow-stats-only model: drop the last two (semantics) features.
        let flow_names: Vec<String> = set.ipudp_names[..12].to_vec();
        let mut d = Dataset::new(flow_names);
        for s in &set.samples {
            d.push(&s.ipudp_features[..12], s.truth.fps);
        }
        let preds = vcaml_mlcore::cross_val_predict(
            &d,
            Task::Regression,
            &opts.forest,
            opts.cv_folds,
            opts.forest.seed,
        );
        let mae_flow = mae(&preds, d.targets());
        rows.push(vec![
            vca.name().to_string(),
            format!("{mae_flow:.2}"),
            format!("{mae_full:.2}"),
            format!("{:+.1}%", (mae_full / mae_flow - 1.0) * 100.0),
        ]);
        artifact.insert(
            vca.name().into(),
            json!({"flow_only_mae": mae_flow, "full_mae": mae_full}),
        );
    }
    println!(
        "{}",
        table(&["VCA", "Flow-only MAE", "Full MAE", "Δ"], &rows)
    );
    sink.write("ab2", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AB3: forest size vs accuracy — the accuracy/cost trade-off an operator
/// would tune (§7 system considerations).
pub fn ab3(ctx: &mut Ctx, sink: &Sink) {
    section(
        "AB3",
        "IP/UDP ML frame-rate MAE vs forest size (Teams, in-lab)",
    );
    let vca = VcaKind::Teams;
    let set = ctx.samples(Corpus::InLab, vca, 1).clone();
    let sizes = [1usize, 5, 10, 20, 40, 80];
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for &n in &sizes {
        let mut opts = ctx.opts(vca);
        opts.forest.n_trees = n;
        let (p, t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
        let m = mae(&p, &t);
        rows.push(vec![format!("{n}"), format!("{m:.2}")]);
        artifact.push(json!({"n_trees": n, "mae": m}));
    }
    println!("{}", table(&["Trees", "MAE"], &rows));
    sink.write("ab3", &artifact).unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AB4: microburst θ_IAT sensitivity — how the only timing-based semantics
/// feature reacts to its threshold.
pub fn ab4(ctx: &mut Ctx, sink: &Sink) {
    section(
        "AB4",
        "IP/UDP ML frame-rate MAE vs microburst threshold (Webex, in-lab)",
    );
    let vca = VcaKind::Webex;
    let thetas = [500i64, 1_000, 3_000, 5_000, 10_000, 20_000];
    let traces = ctx.traces(Corpus::InLab, vca).to_vec();
    let mut rows = Vec::new();
    let mut artifact = Vec::new();
    for &theta in &thetas {
        let mut opts = ctx.opts(vca);
        opts.theta_iat_us = theta;
        let set = vcaml::build_samples(&traces, &opts);
        let (p, t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
        let m = mae(&p, &t);
        rows.push(vec![
            format!("{:.1} ms", theta as f64 / 1000.0),
            format!("{m:.2}"),
        ]);
        artifact.push(json!({"theta_us": theta, "mae": m}));
    }
    println!("{}", table(&["θ_IAT", "MAE"], &rows));
    sink.write("ab4", &artifact).unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AB5: Δmax_size sensitivity for the IP/UDP Heuristic.
pub fn ab5(ctx: &mut Ctx, sink: &Sink) {
    section(
        "AB5",
        "IP/UDP Heuristic frame-rate MAE vs Δmax_size (in-lab)",
    );
    let deltas = [0u16, 1, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let opts = ctx.opts(vca);
        let traces = ctx.traces(Corpus::InLab, vca).to_vec();
        let classifier = MediaClassifier::new(opts.vmin);
        let mut row = vec![vca.name().to_string()];
        let mut per_d = Vec::new();
        for &delta in &deltas {
            let params = vcaml::HeuristicParams {
                delta_max_size: delta,
                lookback: opts.heuristic.lookback,
            };
            let mut preds = Vec::new();
            let mut truths = Vec::new();
            for t in &traces {
                let video: Vec<(Timestamp, u16)> = t
                    .packets
                    .iter()
                    .filter(|p| classifier.is_video(p))
                    .map(|p| (p.ts, p.size))
                    .collect();
                let (frames, _) = IpUdpHeuristic::new(params).assemble(&video);
                let est = estimate_windows(&frames, t.duration_secs as usize, 1);
                for r in &t.truth {
                    if let Some(e) = est.get(r.second as usize) {
                        preds.push(e.fps);
                        truths.push(r.fps);
                    }
                }
            }
            let m = mae(&preds, &truths);
            row.push(format!("{m:.2}"));
            per_d.push(json!({"delta": delta, "mae": m}));
        }
        rows.push(row);
        artifact.insert(vca.name().into(), json!(per_d));
    }
    let headers: Vec<String> = std::iter::once("VCA".to_string())
        .chain(deltas.iter().map(|d| format!("Δ{d}")))
        .collect();
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", table(&href, &rows));
    sink.write("ab5", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AB6: model-family comparison (§4.3: "we experiment with several
/// classical supervised ML models ... random forests consistently yield
/// the highest accuracy"). Compares ridge regression, a single CART tree,
/// and the forest on frame rate.
pub fn ab6(ctx: &mut Ctx, sink: &Sink) {
    section(
        "AB6",
        "Model family comparison, IP/UDP features, frame rate (in-lab)",
    );
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for vca in VcaKind::ALL {
        let opts = ctx.opts(vca);
        let set = ctx.samples(Corpus::InLab, vca, 1).clone();
        let mut d = Dataset::new(set.ipudp_names.clone());
        for s in &set.samples {
            d.push(&s.ipudp_features, s.truth.fps);
        }
        // 2-fold manual split for the non-forest models (cheap + unbiased
        // enough for a ranking).
        let folds = vcaml_mlcore::kfold_indices(d.len(), 2, 17);
        let mut linear_preds = vec![0.0; d.len()];
        let mut tree_preds = vec![0.0; d.len()];
        for (fi, test) in folds.iter().enumerate() {
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != fi)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            let train = d.subset(&train_idx);
            let ridge = vcaml_mlcore::RidgeRegression::fit(&train, 1.0);
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(fi as u64);
            let all: Vec<usize> = (0..train.len()).collect();
            let tree = vcaml_mlcore::DecisionTree::fit(
                &train,
                &all,
                Task::Regression,
                &vcaml_mlcore::tree::TreeParams::default(),
                &mut rng,
            );
            for &i in test {
                linear_preds[i] = ridge.predict(d.row(i));
                tree_preds[i] = tree.predict(d.row(i));
            }
        }
        let (forest_preds, truths) =
            eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts);
        let m_lin = mae(&linear_preds, d.targets());
        let m_tree = mae(&tree_preds, d.targets());
        let m_forest = mae(&forest_preds, &truths);
        rows.push(vec![
            vca.name().to_string(),
            format!("{m_lin:.2}"),
            format!("{m_tree:.2}"),
            format!("{m_forest:.2}"),
        ]);
        artifact.insert(
            vca.name().into(),
            json!({"ridge": m_lin, "tree": m_tree, "forest": m_forest}),
        );
    }
    println!(
        "{}",
        table(&["VCA", "Ridge MAE", "Tree MAE", "Forest MAE"], &rows)
    );
    sink.write("ab6", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

/// AM1: application modes (§7) — video-off detection accuracy and
/// multi-party participant-count estimation.
pub fn am1(ctx: &mut Ctx, sink: &Sink) {
    use vcaml_vcasim::{merge_multiparty, video_off, Session, SessionConfig, VcaProfile};
    section(
        "AM1",
        "Application modes: video-off detection and participant counting",
    );
    let _ = &ctx.scale;
    let profile = VcaProfile::lab(VcaKind::Teams);
    let classifier = MediaClassifier::default();
    let run_one = |seed: u64| {
        Session::new(SessionConfig {
            profile: profile.clone(),
            schedule: vcaml_netem::synth_ndt_schedule(seed, 20),
            duration_secs: 20,
            seed,
            link: vcaml_netem::LinkConfig::default(),
        })
        .run()
    };

    // Video-off detection over a mixed set of calls.
    let mut correct = 0usize;
    let mut total = 0usize;
    for seed in 0..10u64 {
        let on = run_one(seed);
        let off = video_off(&on);
        for (session, truth_off) in [(&on, false), (&off, true)] {
            let trace = vcaml_datasets::to_core_trace(session, profile.payload_map);
            let detected = vcaml::modes::detect_video_off(&trace.packets, &classifier);
            correct += usize::from(detected == truth_off);
            total += 1;
        }
    }
    println!("video-off detection: {correct}/{total} calls correct");

    // Participant counting on merged multi-party flows.
    let mut rows = Vec::new();
    let mut artifact = serde_json::Map::new();
    for n in [2usize, 3, 4] {
        let sessions: Vec<_> = (0..n).map(|i| run_one(100 + i as u64)).collect();
        let merged = merge_multiparty(&sessions);
        let trace = vcaml_datasets::to_core_trace(&merged, profile.payload_map);
        // IP/UDP estimate: aggregate heuristic fps / nominal 30.
        let video: Vec<(Timestamp, u16)> = trace
            .packets
            .iter()
            .filter(|p| classifier.is_video(p))
            .map(|p| (p.ts, p.size))
            .collect();
        let (frames, _) =
            IpUdpHeuristic::new(vcaml::HeuristicParams::paper(VcaKind::Teams)).assemble(&video);
        let est = estimate_windows(&frames, 20, 1);
        let stable: Vec<f64> = est[5..].iter().map(|e| e.fps).collect();
        let agg_fps = stable.iter().sum::<f64>() / stable.len() as f64;
        let ipudp_n = vcaml::modes::estimate_participants_ipudp(agg_fps, 30.0);
        let rtp_n =
            vcaml::modes::estimate_participants_rtp(&trace.packets, profile.payload_map.video);
        rows.push(vec![
            format!("{n}"),
            format!("{agg_fps:.1}"),
            format!("{ipudp_n}"),
            format!("{rtp_n}"),
        ]);
        artifact.insert(
            format!("{n}"),
            json!({"aggregate_fps": agg_fps, "ipudp_estimate": ipudp_n, "rtp_estimate": rtp_n}),
        );
    }
    println!(
        "{}",
        table(
            &[
                "True participants",
                "Aggregate FPS",
                "IP/UDP estimate",
                "RTP estimate"
            ],
            &rows
        )
    );
    artifact.insert(
        "video_off_accuracy".into(),
        json!(correct as f64 / total as f64),
    );
    sink.write("am1", &serde_json::Value::Object(artifact))
        .unwrap(); // lint: allow(no-unwrap-in-lib) -- experiment harness fails fast: artifact IO and corpus invariants are fatal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::Scale;

    fn tmp_sink() -> Sink {
        Sink::new(std::env::temp_dir().join("vcaml_exp_tests")).unwrap()
    }

    #[test]
    fn registry_ids_unique_and_complete() {
        let reg = registry();
        assert_eq!(reg.len(), 40);
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "duplicate experiment ids");
    }

    #[test]
    fn ta6_runs_without_corpora() {
        let mut ctx = Ctx::new(Scale::Small);
        ta6(&mut ctx, &tmp_sink());
    }

    #[test]
    fn media_confusion_small() {
        let mut ctx = Ctx::new(Scale::Small);
        media_confusion(&mut ctx, &tmp_sink(), "t2_test", VcaKind::Meet);
    }

    #[test]
    fn f2_small_matches_fragmentation_model() {
        let mut ctx = Ctx::new(Scale::Small);
        f2(&mut ctx, &tmp_sink());
    }

    #[test]
    fn full_summary_produces_all_cells() {
        let mut ctx = Ctx::new(Scale::Small);
        let cells = full_summary(&mut ctx, Corpus::InLab, VcaKind::Webex);
        assert_eq!(cells.len(), 12);
        for (_, _, s) in &cells {
            assert!(s.n > 0);
            assert!(s.mae.is_finite());
        }
    }
}
