//! Rendering helpers: paper-style tables, CDF summaries, and JSON result
//! artifacts.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Prints a section header for one experiment.
pub fn section(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Renders an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Evenly spaced CDF points `(value, cumulative_probability)`.
pub fn cdf_points(values: &[f64], n_points: usize) -> Vec<(f64, f64)> {
    assert!(!values.is_empty() && n_points >= 2);
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    (0..n_points)
        .map(|i| {
            let p = i as f64 / (n_points - 1) as f64;
            let idx = ((v.len() - 1) as f64 * p).round() as usize;
            (v[idx], p)
        })
        .collect()
}

/// Fraction of values at or below a threshold.
pub fn fraction_le(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

/// Writes one experiment's machine-readable result next to the text
/// output.
pub struct Sink {
    dir: PathBuf,
}

impl Sink {
    /// Creates (and mkdirs) a sink rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Sink { dir })
    }

    /// Serializes `value` to `<dir>/<id>.json`.
    pub fn write<T: Serialize>(&self, id: &str, value: &T) -> std::io::Result<()> {
        let path = self.dir.join(format!("{id}.json"));
        let mut f = std::fs::File::create(path)?;
        f.write_all(
            serde_json::to_string_pretty(value)
                .expect("serialize") // lint: allow(no-unwrap-in-lib) -- serializing an in-memory artifact via the serde shim cannot fail
                .as_bytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["Method", "MAE"],
            &[
                vec!["IP/UDP ML".into(), "1.30".into()],
                vec!["RTP Heuristic".into(), "1.80".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].contains("1.30"));
    }

    #[test]
    fn cdf_monotone() {
        let pts = cdf_points(&[3.0, 1.0, 2.0, 5.0, 4.0], 5);
        assert_eq!(pts.first().unwrap().0, 1.0);
        assert_eq!(pts.last().unwrap().0, 5.0);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn fraction_le_counts() {
        assert_eq!(fraction_le(&[1.0, 2.0, 3.0, 4.0], 2.0), 0.5);
        assert_eq!(fraction_le(&[], 1.0), 0.0);
    }

    #[test]
    fn sink_writes_json() {
        let dir = std::env::temp_dir().join("vcaml_sink_test");
        let sink = Sink::new(&dir).unwrap();
        sink.write("t", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(dir.join("t.json")).unwrap();
        assert!(content.contains('2'));
    }
}
