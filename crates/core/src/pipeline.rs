//! End-to-end estimation pipelines for all four methods of the paper:
//! `IP/UDP Heuristic`, `IP/UDP ML`, `RTP Heuristic`, `RTP ML` — feature
//! extraction, cross-validated training, transfer evaluation, and
//! summaries.
//!
//! Window construction is a *replay* over the incremental engines of
//! [`crate::engine`]: each trace is streamed packet-by-packet through one
//! engine per method, so the batch evaluation exercises exactly the code a
//! live monitor runs (no separate batch windowing/frame-assembly path).

use crate::api::build_engine;
use crate::engine::{place_windows, EngineConfig, WindowReport};
use crate::heuristic::HeuristicParams;
use crate::qoe::QoeEstimate;
use crate::resolution::ResolutionScheme;
use crate::source::{PacketSource, ReplaySource, SourcePacket};
use crate::trace::{Trace, TruthRow};
use serde::{Deserialize, Serialize};
use vcaml_features::flow_stats::flow_feature_names;
use vcaml_features::{ipudp_feature_names, rtp_feature_names};
use vcaml_mlcore::{
    accuracy, cross_val_predict, mae, mrae, percentile, ConfusionMatrix, Dataset, RandomForest,
    RandomForestParams, Task,
};
#[cfg(test)]
use vcaml_netpkt::Timestamp;
#[cfg(test)]
use vcaml_rtp::MediaKind;
use vcaml_rtp::VcaKind;

/// The four methods compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Frame reconstruction from packet sizes only (Algorithm 1).
    IpUdpHeuristic,
    /// Random forest on IP/UDP features.
    IpUdpMl,
    /// Frame reconstruction from RTP timestamps + marker bits.
    RtpHeuristic,
    /// Random forest on flow + RTP features.
    RtpMl,
}

impl Method {
    /// All four, in the paper's legend order.
    pub const ALL: [Method; 4] = [
        Method::RtpMl,
        Method::IpUdpMl,
        Method::RtpHeuristic,
        Method::IpUdpHeuristic,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::IpUdpHeuristic => "IP/UDP Heuristic",
            Method::IpUdpMl => "IP/UDP ML",
            Method::RtpHeuristic => "RTP Heuristic",
            Method::RtpMl => "RTP ML",
        }
    }

    /// Whether this is one of the ML methods.
    pub fn is_ml(&self) -> bool {
        matches!(self, Method::IpUdpMl | Method::RtpMl)
    }

    /// Stable machine-readable slug (metric labels, JSON keys).
    pub fn slug(&self) -> &'static str {
        match self {
            Method::IpUdpHeuristic => "ip_udp_heuristic",
            Method::IpUdpMl => "ip_udp_ml",
            Method::RtpHeuristic => "rtp_heuristic",
            Method::RtpMl => "rtp_ml",
        }
    }

    /// Position in [`Method::ALL`] — a dense slot for per-method
    /// counter arrays.
    pub fn index(&self) -> usize {
        match self {
            Method::RtpMl => 0,
            Method::IpUdpMl => 1,
            Method::RtpHeuristic => 2,
            Method::IpUdpHeuristic => 3,
        }
    }
}

/// The four estimated QoE metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Frames per second (regression; MAE).
    FrameRate,
    /// Video bitrate in kbps (regression; MRAE).
    Bitrate,
    /// Frame jitter in ms (regression; MAE).
    FrameJitter,
    /// Frame height class (classification; accuracy).
    Resolution,
}

/// Pipeline configuration (paper defaults via [`PipelineOpts::paper`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineOpts {
    /// Media-classification size threshold.
    pub vmin: u16,
    /// IP/UDP Heuristic parameters.
    pub heuristic: HeuristicParams,
    /// Microburst IAT threshold, microseconds.
    pub theta_iat_us: i64,
    /// Prediction window length, seconds.
    pub window_secs: u32,
    /// Random-forest hyperparameters.
    pub forest: RandomForestParams,
    /// Cross-validation folds (paper: 5).
    pub cv_folds: usize,
}

impl PipelineOpts {
    /// The paper's configuration for a VCA (§4.3).
    pub fn paper(vca: VcaKind) -> Self {
        PipelineOpts {
            vmin: crate::media::DEFAULT_VMIN,
            heuristic: HeuristicParams::paper(vca),
            theta_iat_us: vcaml_features::DEFAULT_THETA_IAT_US,
            window_secs: 1,
            forest: RandomForestParams::default(),
            cv_folds: 5,
        }
    }

    /// The streaming-engine configuration these options describe.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            vmin: self.vmin,
            heuristic: self.heuristic,
            window_secs: self.window_secs,
            theta_iat_us: self.theta_iat_us,
            stats: vcaml_features::StatsMode::Exact,
        }
    }
}

/// One prediction window with every method's inputs and outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowSample {
    /// IP/UDP ML feature vector (14 features).
    pub ipudp_features: Vec<f64>,
    /// RTP ML feature vector (12 flow + 12 RTP features).
    pub rtp_features: Vec<f64>,
    /// Ground truth for the window.
    pub truth: TruthRow,
    /// IP/UDP Heuristic estimate.
    pub heur: QoeEstimate,
    /// RTP Heuristic estimate.
    pub rtp_heur: QoeEstimate,
    /// Which trace the window came from.
    pub trace_id: usize,
}

/// A corpus of windows ready for training/evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleSet {
    /// The VCA the corpus belongs to.
    pub vca: VcaKind,
    /// All windows across all traces.
    pub samples: Vec<WindowSample>,
    /// Feature names for the IP/UDP ML model.
    pub ipudp_names: Vec<String>,
    /// Feature names for the RTP ML model.
    pub rtp_names: Vec<String>,
    /// Window length used.
    pub window_secs: u32,
}

impl SampleSet {
    /// Distinct ground-truth frame heights observed (for resolution
    /// schemes).
    pub fn observed_heights(&self) -> Vec<u32> {
        let mut hs: Vec<u32> = self
            .samples
            .iter()
            .map(|s| s.truth.height)
            .filter(|&h| h > 0)
            .collect();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// The resolution scheme for this corpus.
    pub fn resolution_scheme(&self) -> ResolutionScheme {
        ResolutionScheme::for_vca(self.vca, &self.observed_heights())
    }
}

/// Aggregates per-second truth rows into one row for a multi-second
/// window.
fn aggregate_truth(rows: &[TruthRow]) -> TruthRow {
    assert!(!rows.is_empty());
    let n = rows.len() as f64;
    let height = {
        let mut counts = std::collections::HashMap::new();
        for r in rows {
            *counts.entry(r.height).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(h, c)| (c, h))
            .map(|(h, _)| h)
            .unwrap_or(0)
    };
    TruthRow {
        second: rows[0].second,
        bitrate_kbps: rows.iter().map(|r| r.bitrate_kbps).sum::<f64>() / n,
        fps: rows.iter().map(|r| r.fps).sum::<f64>() / n,
        frame_jitter_ms: rows.iter().map(|r| r.frame_jitter_ms).sum::<f64>() / n,
        height,
    }
}

/// Builds one trace's window samples (the per-shard unit of
/// [`build_samples`]): one [`ReplaySource`] pass through all four
/// engines at once, then truth alignment. The source is the same
/// abstraction a live [`crate::runner::MonitorRunner`] drives, so the
/// batch evaluation's feed path and the monitor's feed path are one
/// mechanism — and a single pass over the packets beats four.
fn trace_samples(
    trace_id: usize,
    trace: &Trace,
    config: EngineConfig,
    w: u32,
) -> Vec<WindowSample> {
    // Engines in replay order, each built by the facade's single
    // construction point. The flow key is nominal: engines are per-flow
    // state machines and the replay is one flow by construction.
    let methods = [
        Method::IpUdpHeuristic,
        Method::IpUdpMl,
        Method::RtpHeuristic,
        Method::RtpMl,
    ];
    let mut engines: Vec<_> = methods
        .iter()
        .map(|m| build_engine(*m, config, trace.payload_map, None))
        .collect();
    let mut reports: Vec<Vec<WindowReport>> = methods.iter().map(|_| Vec::new()).collect();
    let flow = vcaml_netpkt::FlowKey::canonical(
        std::net::IpAddr::V4(std::net::Ipv4Addr::new(127, 0, 0, 1)),
        1,
        std::net::IpAddr::V4(std::net::Ipv4Addr::new(127, 0, 0, 2)),
        2,
        17,
    )
    .0;
    let mut source = ReplaySource::from_trace(trace, flow);
    while let Some(pkt) = source
        .next_packet()
        // lint: allow(no-unwrap-in-lib) -- replay over an in-memory trace never returns an IO error
        .expect("in-memory replay is infallible")
    {
        let SourcePacket::Parsed { packet, .. } = pkt else {
            unreachable!("trace replays yield pre-parsed packets");
        };
        for (engine, out) in engines.iter_mut().zip(&mut reports) {
            engine.push_into(&packet, out);
        }
    }
    let mut placed = engines.iter_mut().zip(reports).map(|(engine, mut out)| {
        engine.finish_into(&mut out);
        place_windows(engine.as_ref(), out, trace.duration_secs, w)
    });
    let heur_r = placed.next().expect("four replays"); // lint: allow(no-unwrap-in-lib) -- the engines vec is constructed with exactly four entries above
    let ip_ml_r = placed.next().expect("four replays"); // lint: allow(no-unwrap-in-lib) -- the engines vec is constructed with exactly four entries above
    let rtp_heur_r = placed.next().expect("four replays"); // lint: allow(no-unwrap-in-lib) -- the engines vec is constructed with exactly four entries above
    let rtp_ml_r = placed.next().expect("four replays"); // lint: allow(no-unwrap-in-lib) -- the engines vec is constructed with exactly four entries above

    let mut samples = Vec::new();
    for wi in 0..heur_r.len() {
        // Truth rows covered by this window.
        let rows: Vec<TruthRow> = trace
            .truth
            .iter()
            .filter(|r| {
                r.second >= wi as i64 * i64::from(w) && r.second < (wi as i64 + 1) * i64::from(w)
            })
            .copied()
            .collect();
        if rows.is_empty() {
            continue;
        }
        let truth = aggregate_truth(&rows);

        samples.push(WindowSample {
            ipudp_features: ip_ml_r[wi]
                .features
                .clone()
                .expect("ML report carries features"), // lint: allow(no-unwrap-in-lib) -- ML engines always attach features to their reports
            rtp_features: rtp_ml_r[wi]
                .features
                .clone()
                .expect("ML report carries features"), // lint: allow(no-unwrap-in-lib) -- ML engines always attach features to their reports
            truth,
            heur: heur_r[wi]
                .estimate
                .expect("heuristic report carries estimate"), // lint: allow(no-unwrap-in-lib) -- heuristic engines always attach an estimate to their reports
            rtp_heur: rtp_heur_r[wi]
                .estimate
                .expect("heuristic report carries estimate"), // lint: allow(no-unwrap-in-lib) -- heuristic engines always attach an estimate to their reports
            trace_id,
        });
    }
    samples
}

/// Builds the window samples for a corpus of traces by replaying each
/// trace through the four streaming engines — one packet pass per method,
/// no per-trace buffering of windowed packet lists.
///
/// Traces are independent, so the replays fan out across scoped worker
/// threads (the batch-side analogue of the monitor's shard workers: the
/// engines are `Send`, each worker owns its trace's engines outright)
/// and the per-trace sample lists are collected back **in trace order**
/// — the output is bit-identical to the sequential loop it replaces.
pub fn build_samples(traces: &[Trace], opts: &PipelineOpts) -> SampleSet {
    assert!(!traces.is_empty(), "empty corpus");
    let vca = traces[0].vca;
    let w = opts.window_secs;
    let config = opts.engine_config();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(traces.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let collected = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= traces.len() {
                    break;
                }
                if !traces[i].is_complete() {
                    continue; // §4.1 filtering
                }
                let samples = trace_samples(i, &traces[i], config, w);
                collected
                    .lock()
                    .expect("collector poisoned") // lint: allow(no-unwrap-in-lib) -- poisoned collector lock means a worker already panicked; escalate
                    .push((i, samples));
            });
        }
    });
    let mut collected = collected.into_inner().expect("collector poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned collector lock means a worker already panicked; escalate
    collected.sort_by_key(|(i, _)| *i);
    let samples: Vec<WindowSample> = collected.into_iter().flat_map(|(_, s)| s).collect();

    let mut rtp_names = flow_feature_names();
    rtp_names.extend(rtp_feature_names());
    SampleSet {
        vca,
        samples,
        ipudp_names: ipudp_feature_names(),
        rtp_names,
        window_secs: opts.window_secs,
    }
}

/// Summary statistics for one (method, target) cell of the evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Mean absolute error.
    pub mae: f64,
    /// Mean relative absolute error (meaningful for bitrate).
    pub mrae: f64,
    /// 10th percentile of signed errors (box-plot whisker).
    pub p10: f64,
    /// 90th percentile of signed errors.
    pub p90: f64,
    /// Median signed error.
    pub median_err: f64,
    /// Number of windows evaluated.
    pub n: usize,
}

/// Summarizes predictions against ground truth.
pub fn summarize(preds: &[f64], truths: &[f64]) -> EvalSummary {
    let errs: Vec<f64> = preds.iter().zip(truths).map(|(p, t)| p - t).collect();
    EvalSummary {
        mae: mae(preds, truths),
        mrae: if truths.iter().any(|t| t.abs() > 1e-9) {
            mrae(preds, truths)
        } else {
            0.0
        },
        p10: percentile(&errs, 10.0),
        p90: percentile(&errs, 90.0),
        median_err: percentile(&errs, 50.0),
        n: preds.len(),
    }
}

fn regression_truth(s: &WindowSample, target: Target) -> f64 {
    match target {
        Target::FrameRate => s.truth.fps,
        Target::Bitrate => s.truth.bitrate_kbps,
        Target::FrameJitter => s.truth.frame_jitter_ms,
        Target::Resolution => unreachable!("resolution is a classification target"),
    }
}

fn heuristic_estimate(s: &WindowSample, method: Method, target: Target) -> f64 {
    let est = match method {
        Method::IpUdpHeuristic => &s.heur,
        Method::RtpHeuristic => &s.rtp_heur,
        _ => unreachable!("not a heuristic method"),
    };
    match target {
        Target::FrameRate => est.fps,
        Target::Bitrate => est.bitrate_kbps,
        Target::FrameJitter => est.frame_jitter_ms,
        Target::Resolution => unreachable!("heuristics do not estimate resolution"),
    }
}

fn features_of(s: &WindowSample, method: Method) -> &[f64] {
    match method {
        Method::IpUdpMl => &s.ipudp_features,
        Method::RtpMl => &s.rtp_features,
        _ => unreachable!("not an ML method"),
    }
}

fn names_of(set: &SampleSet, method: Method) -> &[String] {
    match method {
        Method::IpUdpMl => &set.ipudp_names,
        Method::RtpMl => &set.rtp_names,
        _ => unreachable!("not an ML method"),
    }
}

/// Builds the regression dataset for an ML method.
fn regression_dataset(set: &SampleSet, method: Method, target: Target) -> Dataset {
    let mut d = Dataset::new(names_of(set, method).to_vec());
    for s in &set.samples {
        d.push(features_of(s, method), regression_truth(s, target));
    }
    d
}

/// Cross-validated predictions + truths for a regression target.
pub fn eval_ml_regression(
    set: &SampleSet,
    method: Method,
    target: Target,
    opts: &PipelineOpts,
) -> (Vec<f64>, Vec<f64>) {
    assert!(method.is_ml(), "ML evaluation on a heuristic method");
    let d = regression_dataset(set, method, target);
    let preds = cross_val_predict(
        &d,
        Task::Regression,
        &opts.forest,
        opts.cv_folds,
        opts.forest.seed,
    );
    (preds, d.targets().to_vec())
}

/// Heuristic predictions + truths for a regression target.
pub fn eval_heuristic(set: &SampleSet, method: Method, target: Target) -> (Vec<f64>, Vec<f64>) {
    assert!(!method.is_ml(), "heuristic evaluation on an ML method");
    let preds: Vec<f64> = set
        .samples
        .iter()
        .map(|s| heuristic_estimate(s, method, target))
        .collect();
    let truths: Vec<f64> = set
        .samples
        .iter()
        .map(|s| regression_truth(s, target))
        .collect();
    (preds, truths)
}

/// Cross-validated resolution classification: returns (confusion matrix,
/// accuracy). `None` when the corpus shows fewer than two classes (the
/// paper skips Webex real-world, §5.2.4).
pub fn eval_ml_resolution(
    set: &SampleSet,
    method: Method,
    opts: &PipelineOpts,
) -> Option<(ConfusionMatrix, f64)> {
    assert!(method.is_ml());
    let scheme = set.resolution_scheme();
    if !scheme.is_classifiable() {
        return None;
    }
    let mut d = Dataset::new(names_of(set, method).to_vec());
    for s in &set.samples {
        if let Some(cls) = scheme.class_of(s.truth.height) {
            d.push(features_of(s, method), cls as f64);
        }
    }
    if d.len() < opts.cv_folds {
        return None;
    }
    let task = Task::Classification {
        n_classes: scheme.n_classes(),
    };
    let preds = cross_val_predict(&d, task, &opts.forest, opts.cv_folds, opts.forest.seed);
    let acc = accuracy(&preds, d.targets());
    let m = ConfusionMatrix::from_predictions(scheme.labels(), &preds, d.targets());
    Some((m, acc))
}

/// Fits on the full corpus and returns the top-k feature importances
/// (paper Figs. 5, 7, 9, A.4–A.9).
pub fn feature_importances(
    set: &SampleSet,
    method: Method,
    target: Target,
    opts: &PipelineOpts,
    k: usize,
) -> Vec<(String, f64)> {
    assert!(method.is_ml());
    match target {
        Target::Resolution => {
            let scheme = set.resolution_scheme();
            let mut d = Dataset::new(names_of(set, method).to_vec());
            for s in &set.samples {
                if let Some(cls) = scheme.class_of(s.truth.height) {
                    d.push(features_of(s, method), cls as f64);
                }
            }
            let f = RandomForest::fit(
                &d,
                Task::Classification {
                    n_classes: scheme.n_classes(),
                },
                &opts.forest,
            );
            f.top_features(k)
        }
        _ => {
            let d = regression_dataset(set, method, target);
            let f = RandomForest::fit(&d, Task::Regression, &opts.forest);
            f.top_features(k)
        }
    }
}

/// Transferability (§5.3): trains on one corpus, tests on another.
/// Returns (predictions, truths) on the test corpus.
pub fn transfer_regression(
    train: &SampleSet,
    test: &SampleSet,
    method: Method,
    target: Target,
    opts: &PipelineOpts,
) -> (Vec<f64>, Vec<f64>) {
    assert!(method.is_ml());
    let d_train = regression_dataset(train, method, target);
    let forest = RandomForest::fit(&d_train, Task::Regression, &opts.forest);
    let preds: Vec<f64> = test
        .samples
        .iter()
        .map(|s| forest.predict(features_of(s, method)))
        .collect();
    let truths: Vec<f64> = test
        .samples
        .iter()
        .map(|s| regression_truth(s, target))
        .collect();
    (preds, truths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TracePacket;
    use vcaml_rtp::{PayloadMap, RtpHeader};

    /// Builds a toy trace: `fps` equal-size-fragmented frames per second
    /// for `secs` seconds, plus audio packets, with exact ground truth.
    fn toy_trace(fps: u32, secs: u32, frame_bytes: u16, seed: u64) -> Trace {
        let mut packets = Vec::new();
        let mut seq = 0u16;
        let frame_gap_us = 1_000_000 / i64::from(fps);
        for s in 0..secs {
            for f in 0..fps {
                let t0 = i64::from(s) * 1_000_000 + i64::from(f) * frame_gap_us;
                // Two packets per frame, sizes within 1 byte; frame sizes
                // alternate so consecutive frames differ.
                let bump = ((s * fps + f + seed as u32) % 7 * 20) as u16;
                let size = frame_bytes + bump;
                let ts = (s * fps + f) * 3000;
                for i in 0..2u16 {
                    packets.push(TracePacket {
                        ts: Timestamp::from_micros(t0 + i64::from(i) * 300),
                        size: size + (i % 2),
                        rtp: Some(RtpHeader::basic(102, seq, ts, 1, i == 1)),
                        truth_media: Some(MediaKind::Video),
                    });
                    seq = seq.wrapping_add(1);
                }
            }
            // Audio packets: 50/s at 20 ms.
            for a in 0..50 {
                packets.push(TracePacket {
                    ts: Timestamp::from_micros(i64::from(s) * 1_000_000 + a * 20_000),
                    size: 150,
                    rtp: Some(RtpHeader::basic(111, a as u16, 0, 2, false)),
                    truth_media: Some(MediaKind::Audio),
                });
            }
        }
        packets.sort_by_key(|p| p.ts);
        let truth = (0..secs)
            .map(|s| TruthRow {
                second: i64::from(s),
                bitrate_kbps: f64::from(fps) * f64::from(frame_bytes) * 2.0 * 8.0 / 1000.0,
                fps: f64::from(fps),
                frame_jitter_ms: 2.0,
                height: if frame_bytes > 800 { 360 } else { 180 },
            })
            .collect();
        Trace {
            vca: VcaKind::Teams,
            payload_map: PayloadMap::lab(VcaKind::Teams),
            packets,
            truth,
            duration_secs: secs,
        }
    }

    fn toy_corpus() -> Vec<Trace> {
        vec![
            toy_trace(30, 10, 1000, 1),
            toy_trace(15, 10, 600, 2),
            toy_trace(24, 10, 900, 3),
            toy_trace(10, 10, 700, 4),
        ]
    }

    fn opts() -> PipelineOpts {
        let mut o = PipelineOpts::paper(VcaKind::Teams);
        o.forest = RandomForestParams {
            n_trees: 12,
            seed: 1,
            ..Default::default()
        };
        o
    }

    #[test]
    fn build_samples_counts_windows() {
        let set = build_samples(&toy_corpus(), &opts());
        assert_eq!(set.samples.len(), 40);
        assert_eq!(set.ipudp_names.len(), 14);
        assert_eq!(set.rtp_names.len(), 24);
        assert_eq!(set.samples[0].ipudp_features.len(), 14);
        assert_eq!(set.samples[0].rtp_features.len(), 24);
    }

    #[test]
    fn heuristics_recover_exact_fps_on_clean_traces() {
        let set = build_samples(&toy_corpus(), &opts());
        let (hp, ht) = eval_heuristic(&set, Method::IpUdpHeuristic, Target::FrameRate);
        let m = mae(&hp, &ht);
        assert!(m < 1.0, "IP/UDP heuristic fps MAE {m}");
        let (rp, rt) = eval_heuristic(&set, Method::RtpHeuristic, Target::FrameRate);
        let m = mae(&rp, &rt);
        assert!(m < 0.5, "RTP heuristic fps MAE {m}");
    }

    #[test]
    fn ml_learns_fps_from_features() {
        let set = build_samples(&toy_corpus(), &opts());
        let (p, t) = eval_ml_regression(&set, Method::IpUdpMl, Target::FrameRate, &opts());
        let m = mae(&p, &t);
        assert!(m < 4.0, "IP/UDP ML fps MAE {m}");
    }

    #[test]
    fn ml_bitrate_tracks_truth() {
        let set = build_samples(&toy_corpus(), &opts());
        let (p, t) = eval_ml_regression(&set, Method::RtpMl, Target::Bitrate, &opts());
        let rel = mrae(&p, &t);
        assert!(rel < 0.35, "RTP ML bitrate MRAE {rel}");
    }

    #[test]
    fn resolution_classification_works() {
        let set = build_samples(&toy_corpus(), &opts());
        let (m, acc) = eval_ml_resolution(&set, Method::IpUdpMl, &opts()).unwrap();
        assert!(acc > 0.8, "resolution accuracy {acc}");
        assert_eq!(m.labels().len(), 3); // Teams → low/medium/high
    }

    #[test]
    fn importances_sorted_and_named() {
        let set = build_samples(&toy_corpus(), &opts());
        let imp = feature_importances(&set, Method::IpUdpMl, Target::FrameRate, &opts(), 5);
        assert_eq!(imp.len(), 5);
        assert!(imp.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(set.ipudp_names.contains(&imp[0].0));
    }

    #[test]
    fn transfer_produces_predictions() {
        let train = build_samples(&toy_corpus(), &opts());
        let test_traces = vec![toy_trace(20, 8, 800, 9)];
        let test = build_samples(&test_traces, &opts());
        let (p, t) =
            transfer_regression(&train, &test, Method::IpUdpMl, Target::FrameRate, &opts());
        assert_eq!(p.len(), test.samples.len());
        let m = mae(&p, &t);
        assert!(m < 8.0, "transfer MAE {m}");
    }

    #[test]
    fn summarize_reports_percentiles() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.n, 4);
        assert!((s.mae - 1.5).abs() < 1e-9);
        assert!(s.p10 >= 0.0 && s.p90 <= 3.0);
    }

    #[test]
    fn incomplete_traces_filtered() {
        let mut t = toy_trace(30, 10, 1000, 1);
        t.truth.truncate(5); // fewer logs than duration → dropped (§4.1)
        let good = toy_trace(15, 10, 600, 2);
        let set = build_samples(&[t, good], &opts());
        assert_eq!(set.samples.len(), 10);
    }

    #[test]
    fn wider_windows_aggregate_truth() {
        let mut o = opts();
        o.window_secs = 2;
        let set = build_samples(&toy_corpus(), &o);
        assert_eq!(set.samples.len(), 20);
        // fps truth equals per-second fps (constant in the toy traces).
        assert!(set.samples.iter().all(|s| s.truth.fps >= 10.0));
    }

    #[test]
    fn observed_heights_and_scheme() {
        let set = build_samples(&toy_corpus(), &opts());
        let hs = set.observed_heights();
        assert_eq!(hs, vec![180, 360]);
    }

    #[test]
    #[should_panic(expected = "empty corpus")]
    fn empty_corpus_rejected() {
        let _ = build_samples(&[], &opts());
    }
}
