//! The unified incremental estimation engine (§7's "streaming versions of
//! the methods", scaled out to many concurrent calls).
//!
//! **Stability: unstable internals.** This module is the machine room
//! under the [`crate::api`] facade. It stays `pub` so parity tests and
//! benchmarks can drive engines directly, but its types and signatures
//! may change without notice; applications should construct monitors
//! through [`crate::api::MonitorBuilder`] and consume
//! [`crate::api::QoeEvent`]s instead of wiring engines and [`FlowTable`]s
//! by hand.
//!
//! All four methods of the paper implement one trait — [`QoeEstimator`]:
//! feed captured packets in arrival order via `push`, receive finalized
//! [`WindowReport`]s as window boundaries become safe, and `finish` at end
//! of stream. The engines share the incremental building blocks the batch
//! pipeline is itself built from (the assemblers in [`crate::heuristic`] /
//! [`crate::rtp_heuristic`], the [`crate::qoe::QoeWindower`], and the
//! feature accumulators in `vcaml_features::incremental`), so a streaming
//! run reproduces the batch pipeline's numbers exactly — the batch
//! [`crate::pipeline::build_samples`] is in fact a replay over these
//! engines (see [`replay`]).
//!
//! For network-wide deployment, [`FlowTable`] demuxes a mixed packet feed
//! onto per-flow engines keyed by the canonical UDP 5-tuple
//! (`vcaml_netpkt::FlowKey`), sharded for cache locality and future
//! parallelism, with idle-flow eviction so memory tracks the set of
//! *active* calls.
//!
//! ## Emission latency
//!
//! Heuristic reports are emitted as soon as every frame that could still
//! land in a window has been sealed (a few packets after the boundary for
//! the IP/UDP method, up to [`SCAN_DEPTH`](crate::rtp_heuristic) frames
//! for the RTP method); ML feature reports are emitted at the first
//! packet past the boundary. `finish` flushes everything.

use crate::frames::Frame;
use crate::heuristic::{HeuristicParams, IpUdpAssembler};
use crate::media::MediaClassifier;
use crate::pipeline::Method;
use crate::qoe::{QoeEstimate, QoeWindower};
use crate::rtp_heuristic::RtpAssembler;
use crate::trace::{Trace, TracePacket};
use serde::{Deserialize, Serialize};
use vcaml_features::rtp_feats::LagReference;
use vcaml_features::{FlowFeatureAcc, IpUdpFeatureAcc, RtpWindowAcc, StatsMode};
use vcaml_mlcore::RandomForest;
use vcaml_netpkt::{FlowKey, Timestamp};
use vcaml_rtp::{MediaKind, PayloadMap, VcaKind};

/// Engine configuration shared by all four methods.
///
/// Stability: stable — re-exported from the crate root as part of the
/// supported API surface (see `ARCHITECTURE.md` § stability).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Media-classification size threshold (IP/UDP methods).
    pub vmin: u16,
    /// Algorithm 1 parameters (IP/UDP Heuristic).
    pub heuristic: HeuristicParams,
    /// Prediction window length, seconds.
    pub window_secs: u32,
    /// Microburst inter-arrival threshold, microseconds.
    pub theta_iat_us: i64,
    /// Order-statistic accumulation mode: `Exact` reproduces the batch
    /// formulas bit-compatibly; `Sketch` caps per-flow state at O(1).
    pub stats: StatsMode,
}

impl EngineConfig {
    /// The paper's configuration for a VCA (§4.3).
    pub fn paper(vca: VcaKind) -> Self {
        EngineConfig {
            vmin: crate::media::DEFAULT_VMIN,
            heuristic: HeuristicParams::paper(vca),
            window_secs: 1,
            theta_iat_us: vcaml_features::DEFAULT_THETA_IAT_US,
            stats: StatsMode::Exact,
        }
    }

    fn window_us(&self) -> i64 {
        i64::from(self.window_secs) * 1_000_000
    }
}

/// Largest run of consecutive empty windows an engine will emit for one
/// arrival gap. A packet whose window index jumps further than this — in
/// either direction, covering a corrupt timestamp on the *first* packet
/// followed by sane traffic "in the past" — is *quarantined*: the packet
/// is dropped, and only after
/// [`DISCONTINUITY_CORROBORATION`] consecutive packets land near the same
/// new epoch does the engine treat the jump as a genuine capture
/// discontinuity (very long idle, capture restart) — flushing pending
/// windows, skipping the gap without per-window reports, and re-anchoring
/// emission at the new window. Isolated corrupt timestamps (a mangled
/// pcap record) are therefore dropped without poisoning the flow, while
/// per-packet work and allocation stay bounded no matter what timestamps
/// arrive. [`replay`] fills skipped windows explicitly, so batch outputs
/// are unaffected.
pub const MAX_WINDOW_GAP: u64 = 4_096;

/// How many consecutive packets must agree with a new far-future epoch
/// before an engine re-anchors to it (see [`MAX_WINDOW_GAP`]).
pub const DISCONTINUITY_CORROBORATION: u32 = 3;

/// Verdict for one packet's window index against the flow's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapVerdict {
    /// Within the bounded gap: process normally.
    Normal,
    /// Quarantined outlier: drop the packet.
    Drop,
    /// Corroborated discontinuity: flush, skip, and re-anchor at this
    /// packet's window.
    Reanchor,
}

/// Shared quarantine logic for far-future timestamp jumps.
#[derive(Debug, Clone, Copy, Default)]
struct GapGuard {
    /// `(first suspect window, corroborating packets seen)`.
    suspect: Option<(u64, u32)>,
}

impl GapGuard {
    // lint: hot_path
    fn check(&mut self, clock: u64, started: bool, w: u64) -> GapVerdict {
        if !started || w.abs_diff(clock) <= MAX_WINDOW_GAP {
            // Near the established epoch: any earlier outlier was corrupt.
            self.suspect = None;
            return GapVerdict::Normal;
        }
        match self.suspect {
            Some((epoch, seen)) if w.abs_diff(epoch) <= MAX_WINDOW_GAP => {
                if seen + 1 >= DISCONTINUITY_CORROBORATION {
                    self.suspect = None;
                    GapVerdict::Reanchor
                } else {
                    self.suspect = Some((epoch, seen + 1));
                    GapVerdict::Drop
                }
            }
            // First suspect, or a jump that does not cluster with the
            // previous suspect (random corruption): restart quarantine.
            _ => {
                self.suspect = Some((w, 1));
                GapVerdict::Drop
            }
        }
    }
}

/// One finalized prediction window from an engine.
///
/// Stability: stable — re-exported from the crate root as part of the
/// supported API surface (see `ARCHITECTURE.md` § stability).
#[derive(Debug, Clone, Serialize)]
pub struct WindowReport {
    /// Window index (0-based from stream start).
    pub window: u64,
    /// The method that produced the report.
    pub method: Method,
    /// Heuristic QoE estimate (heuristic methods only).
    pub estimate: Option<QoeEstimate>,
    /// Feature vector (ML methods only): 14 IP/UDP or 24 RTP features.
    pub features: Option<Vec<f64>>,
    /// Frame-rate prediction from an attached model, if any.
    pub model_fps: Option<f64>,
    /// Packets the method attributed to video in this window (by arrival).
    pub video_packets: usize,
}

/// The unified per-flow estimator interface all four methods implement.
///
/// Contract: packets arrive with non-decreasing timestamps; negative
/// timestamps are outside every window and are dropped. Reports come out
/// in strict window order with no gaps (idle windows yield zero
/// estimates / zero features). Call `finish` exactly once at end of
/// stream to flush the remaining windows.
///
/// Stability: stable — re-exported from the crate root as part of the
/// supported API surface (see `ARCHITECTURE.md` § stability).
pub trait QoeEstimator {
    /// Which of the paper's four methods this engine implements.
    fn method(&self) -> Method;

    /// Offers one captured packet, appending any windows it finalizes
    /// into `out`. This is the hot-path form: with a warmed caller-owned
    /// buffer the steady-state per-packet path performs no heap
    /// allocation.
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>);

    /// Flushes every remaining window at end of stream into `out`. Call
    /// exactly once.
    fn finish_into(&mut self, out: &mut Vec<WindowReport>);

    /// The report an idle (empty) window produces — used by [`replay`] to
    /// pad a fixed-duration evaluation.
    fn empty_report(&self, window: u64) -> WindowReport;

    /// Snapshots every window that has started but is not yet final —
    /// the still-accumulating current window and, for the heuristic
    /// engines, boundary windows held back by open frames — into `out`.
    /// The reports are *provisional*: metrics are lower bounds that the
    /// eventual final report supersedes, and nothing is consumed from the
    /// engine. Used by the facade's optional max-lag flush; engines that
    /// cannot snapshot append nothing (the default).
    fn provisional_into(&self, _out: &mut Vec<WindowReport>) {}

    /// Approximate resident size of this flow's state — the engine value
    /// itself plus owned heap — feeding the monitor's bytes-per-flow
    /// gauge. Engines that do not account return 0.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Allocating convenience form of [`Self::push_into`].
    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        let mut out = Vec::new();
        self.push_into(pkt, &mut out);
        out
    }

    /// Allocating convenience form of [`Self::finish_into`].
    fn finish(&mut self) -> Vec<WindowReport> {
        let mut out = Vec::new();
        self.finish_into(&mut out);
        out
    }

    /// Allocating convenience form of [`Self::provisional_into`].
    fn provisional(&self) -> Vec<WindowReport> {
        let mut out = Vec::new();
        self.provisional_into(&mut out);
        out
    }
}

impl<T: QoeEstimator + ?Sized> QoeEstimator for Box<T> {
    fn method(&self) -> Method {
        (**self).method()
    }

    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        (**self).push_into(pkt, out)
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        (**self).finish_into(out)
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        (**self).empty_report(window)
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        (**self).provisional_into(out)
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }
}

/// Tracks per-window video-packet counts for reporting. A flow holds
/// counts for at most a handful of pending windows, so a small sorted
/// vector beats a tree map: no per-entry allocation, and the common bump
/// (newest window) is a one-element scan from the back.
#[derive(Debug, Clone, Default)]
struct ArrivalCounts {
    /// `(window, count)` in ascending window order.
    counts: Vec<(u64, usize)>,
}

impl ArrivalCounts {
    // lint: hot_path
    fn bump(&mut self, window: u64) {
        match self.counts.binary_search_by_key(&window, |&(w, _)| w) {
            Ok(i) => self.counts[i].1 += 1,
            // lint: allow(hot-path-alloc) -- counts is bounded by the drain lookback; capacity is warmed after the first windows
            Err(i) => self.counts.insert(i, (window, 1)),
        }
    }

    // lint: hot_path
    fn take(&mut self, window: u64) -> usize {
        match self.counts.binary_search_by_key(&window, |&(w, _)| w) {
            Ok(i) => self.counts.remove(i).1,
            Err(_) => 0,
        }
    }

    // lint: hot_path
    fn peek(&self, window: u64) -> usize {
        match self.counts.binary_search_by_key(&window, |&(w, _)| w) {
            Ok(i) => self.counts[i].1,
            Err(_) => 0,
        }
    }

    /// Drops all counts in place, retaining capacity.
    fn clear(&mut self) {
        self.counts.clear();
    }

    fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<(u64, usize)>()
    }
}

// ---------------------------------------------------------------------------
// Shared per-flow windowing state
// ---------------------------------------------------------------------------

/// Clock, window epoch, and safe-drain logic shared by the two heuristic
/// engines.
///
/// The window *indices* are absolute (window `w` always covers
/// `[w·W, (w+1)·W)` on the capture clock), but emission is **anchored at
/// the first packet the flow sees**: a flow first observed an hour into a
/// capture starts reporting at that hour's window instead of emitting
/// thousands of empty windows from t = 0. Replay fills any leading gap
/// explicitly, so batch outputs are unaffected.
struct HeuristicState {
    windower: QoeWindower,
    counts: ArrivalCounts,
    window_us: i64,
    clock: u64,
    started: bool,
    gap: GapGuard,
    /// One-window memo over the timestamp→index map: consecutive packets
    /// overwhelmingly land in the same window, so the common case is two
    /// compares instead of an `i64` division. `memo_lo > memo_hi` until
    /// the first lookup. (`memo_lo`, `memo_hi`] bound is exclusive.
    memo_lo: i64,
    memo_hi: i64,
    memo_w: u64,
}

impl HeuristicState {
    fn new(config: EngineConfig) -> Self {
        HeuristicState {
            windower: QoeWindower::new(config.window_secs),
            counts: ArrivalCounts::default(),
            window_us: config.window_us(),
            clock: 0,
            started: false,
            gap: GapGuard::default(),
            memo_lo: 1,
            memo_hi: 0,
            memo_w: 0,
        }
    }

    /// Window index for a non-negative microsecond timestamp, memoized
    /// on the window of the previous lookup.
    #[inline]
    // lint: hot_path
    fn memo_map(&mut self, us: i64) -> u64 {
        if us >= self.memo_lo && us < self.memo_hi {
            return self.memo_w;
        }
        let w = us.div_euclid(self.window_us);
        self.memo_lo = w * self.window_us;
        self.memo_hi = self.memo_lo + self.window_us;
        self.memo_w = w as u64;
        self.memo_w
    }

    /// Window index for a timestamp, or `None` for negative timestamps
    /// (outside every window).
    #[inline]
    // lint: hot_path
    fn window_of(&mut self, ts: Timestamp) -> Option<u64> {
        let us = ts.as_micros();
        (us >= 0).then(|| self.memo_map(us))
    }

    /// Classifies a packet's window against the bounded emission gap
    /// ([`MAX_WINDOW_GAP`]): process, quarantine-drop, or re-anchor.
    // lint: hot_path
    fn gap_check(&mut self, w: u64) -> GapVerdict {
        self.gap.check(self.clock, self.started, w)
    }

    /// Skips across a discontinuity: drops pending arrival counts and
    /// re-anchors emission at `w`. The caller must seal its assembler and
    /// flush via [`Self::drain_finish`] first.
    fn skip_to(&mut self, w: u64) {
        self.counts.clear();
        self.windower.skip_to(w);
        self.clock = w;
    }

    /// Advances the clock for one accepted packet in window `w`.
    // lint: hot_path
    fn observe(&mut self, w: u64) {
        if !self.started {
            self.started = true;
            self.windower.start_at(w);
            self.clock = w;
        }
        self.clock = self.clock.max(w);
    }

    /// Emits every window that is final — arrivals have moved past it and
    /// no still-open frame (bounded below by `min_open_end`) could seal
    /// into it — appending into `out`.
    // lint: hot_path
    fn drain_safe_into(
        &mut self,
        min_open_end: Option<Timestamp>,
        out: &mut Vec<(u64, QoeEstimate)>,
    ) {
        let open_bound = match min_open_end {
            // Open-frame end timestamps are never negative (their packets
            // were window-mapped first); route through the same memo as
            // the arrival path — they share the packet's window almost
            // always.
            Some(ts) if ts.as_micros() >= 0 => self.memo_map(ts.as_micros()),
            _ => self.clock,
        };
        self.windower
            .drain_until_into(self.clock.min(open_bound), out);
    }

    /// Emits everything through the last arrival window and the last
    /// window holding a frame (end of stream), appending into `out`.
    fn drain_finish_into(&mut self, out: &mut Vec<(u64, QoeEstimate)>) {
        if !self.started {
            return;
        }
        let through = (self.clock + 1).max(self.windower.last_open_window().map_or(0, |w| w + 1));
        self.windower.drain_until_into(through, out);
    }

    fn report(&mut self, method: Method, window: u64, estimate: QoeEstimate) -> WindowReport {
        WindowReport {
            window,
            method,
            estimate: Some(estimate),
            features: None,
            model_fps: None,
            video_packets: self.counts.take(window),
        }
    }

    fn empty_report(&self, method: Method, window: u64) -> WindowReport {
        WindowReport {
            window,
            method,
            estimate: Some(self.windower.empty_estimate()),
            features: None,
            model_fps: None,
            video_packets: 0,
        }
    }

    /// Snapshots every pending window (`next emission ..= clock`) without
    /// consuming anything: frames still open in the assembler are not
    /// included, so the estimates are lower bounds.
    fn provisional_into(&self, method: Method, out: &mut Vec<WindowReport>) {
        if !self.started {
            return;
        }
        out.extend(
            (self.windower.next_window()..=self.clock).map(|w| WindowReport {
                window: w,
                method,
                estimate: Some(self.windower.peek(w)),
                features: None,
                model_fps: None,
                video_packets: self.counts.peek(w),
            }),
        );
    }

    fn heap_bytes(&self) -> usize {
        self.windower.heap_bytes() + self.counts.heap_bytes()
    }
}

// ---------------------------------------------------------------------------
// Heuristic engines (shared driver over two frame sources)
// ---------------------------------------------------------------------------

/// What a heuristic engine's frame assembly must provide; implemented by
/// the two classification+assembler pairings so the (subtle) push/finish
/// orchestration exists exactly once in [`HeuristicDriver`].
trait FrameSource {
    /// Classifies one packet and, for video, feeds the assembler,
    /// appending any frames this packet seals into `sealed`. Returns
    /// `false` for non-video packets, `true` for video packets.
    fn accept_into(&mut self, pkt: &TracePacket, sealed: &mut Vec<(u64, Frame)>) -> bool;

    /// Seals every open frame (end of stream or discontinuity) into `out`.
    fn seal_all_into(&mut self, out: &mut Vec<(u64, Frame)>);

    /// Earliest end time any open frame can still finalize with.
    fn min_open_end(&self) -> Option<Timestamp>;

    /// Heap bytes the assembler currently holds.
    fn heap_bytes(&self) -> usize;
}

/// The shared heuristic state machine: gap quarantine, window clock,
/// frame offering, and safe/final draining. Owns two scratch buffers
/// (sealed frames, drained windows) so the per-packet cycle recycles
/// capacity instead of allocating.
struct HeuristicDriver<S> {
    source: S,
    state: HeuristicState,
    method: Method,
    sealed: Vec<(u64, Frame)>,
    drained: Vec<(u64, QoeEstimate)>,
}

impl<S: FrameSource> HeuristicDriver<S> {
    fn new(config: EngineConfig, method: Method, source: S) -> Self {
        HeuristicDriver {
            source,
            state: HeuristicState::new(config),
            method,
            sealed: Vec::new(),
            drained: Vec::new(),
        }
    }

    /// Offers freshly sealed frames from `self.sealed` to the windower,
    /// clearing the scratch buffer.
    // lint: hot_path
    fn offer_sealed(&mut self) {
        for &(id, ref frame) in &self.sealed {
            self.state.windower.offer(id, frame);
        }
        self.sealed.clear();
    }

    /// Converts windows drained into `self.drained` to reports, clearing
    /// the scratch buffer.
    // lint: hot_path
    fn report_drained(&mut self, out: &mut Vec<WindowReport>) {
        let method = self.method;
        // (index loop: `drained` and `state` are disjoint fields, but the
        // report call needs `&mut self.state` while we read `drained`)
        for i in 0..self.drained.len() {
            let (dw, e) = self.drained[i];
            out.push(self.state.report(method, dw, e));
        }
        self.drained.clear();
    }

    // lint: hot_path
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        let Some(w) = self.state.window_of(pkt.ts) else {
            return;
        };
        match self.state.gap_check(w) {
            GapVerdict::Drop => return,
            GapVerdict::Reanchor => {
                // Flush everything pending before jumping: report
                // construction must precede skip_to so window counts are
                // consumed at their own indices.
                self.source.seal_all_into(&mut self.sealed);
                self.offer_sealed();
                self.state.drain_finish_into(&mut self.drained);
                self.report_drained(out);
                self.state.skip_to(w);
            }
            GapVerdict::Normal => {}
        }
        self.state.observe(w);
        if self.source.accept_into(pkt, &mut self.sealed) {
            self.state.counts.bump(w);
        }
        self.offer_sealed();
        let min_open_end = self.source.min_open_end();
        self.state.drain_safe_into(min_open_end, &mut self.drained);
        self.report_drained(out);
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        self.source.seal_all_into(&mut self.sealed);
        self.offer_sealed();
        self.state.drain_finish_into(&mut self.drained);
        self.report_drained(out);
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.state.empty_report(self.method, window)
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        self.state.provisional_into(self.method, out);
    }

    fn heap_bytes(&self) -> usize {
        self.source.heap_bytes()
            + self.state.heap_bytes()
            + self.sealed.capacity() * std::mem::size_of::<(u64, Frame)>()
            + self.drained.capacity() * std::mem::size_of::<(u64, QoeEstimate)>()
    }
}

/// Size-threshold classification feeding Algorithm 1.
struct IpUdpSource {
    classifier: MediaClassifier,
    assembler: IpUdpAssembler,
}

impl FrameSource for IpUdpSource {
    // lint: hot_path
    fn accept_into(&mut self, pkt: &TracePacket, sealed: &mut Vec<(u64, Frame)>) -> bool {
        if !self.classifier.is_video(pkt) {
            return false;
        }
        self.assembler.push_into(pkt.ts, pkt.size, sealed);
        true
    }

    fn seal_all_into(&mut self, out: &mut Vec<(u64, Frame)>) {
        self.assembler.finish_into(out);
    }

    fn min_open_end(&self) -> Option<Timestamp> {
        self.assembler.min_open_end()
    }

    fn heap_bytes(&self) -> usize {
        self.assembler.heap_bytes()
    }
}

/// Payload-type classification feeding RTP timestamp/marker grouping.
struct RtpSource {
    payload_map: PayloadMap,
    assembler: RtpAssembler,
}

impl FrameSource for RtpSource {
    // lint: hot_path
    fn accept_into(&mut self, pkt: &TracePacket, sealed: &mut Vec<(u64, Frame)>) -> bool {
        let Some(h) = pkt
            .rtp
            .filter(|h| self.payload_map.classify(h.payload_type) == Some(MediaKind::Video))
        else {
            return false;
        };
        self.assembler
            .push_into(pkt.ts, h.timestamp, h.marker, pkt.size, sealed);
        true
    }

    fn seal_all_into(&mut self, out: &mut Vec<(u64, Frame)>) {
        self.assembler.finish_into(out);
    }

    fn min_open_end(&self) -> Option<Timestamp> {
        self.assembler.min_open_end()
    }

    fn heap_bytes(&self) -> usize {
        self.assembler.heap_bytes()
    }
}

/// Streaming IP/UDP Heuristic: size-threshold media classification,
/// incremental Algorithm 1, per-window QoE estimation.
pub struct IpUdpHeuristicEngine {
    driver: HeuristicDriver<IpUdpSource>,
}

impl IpUdpHeuristicEngine {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        IpUdpHeuristicEngine {
            driver: HeuristicDriver::new(
                config,
                Method::IpUdpHeuristic,
                IpUdpSource {
                    classifier: MediaClassifier::new(config.vmin),
                    assembler: IpUdpAssembler::new(config.heuristic),
                },
            ),
        }
    }
}

impl QoeEstimator for IpUdpHeuristicEngine {
    fn method(&self) -> Method {
        Method::IpUdpHeuristic
    }

    // lint: hot_path
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        self.driver.push_into(pkt, out)
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        self.driver.finish_into(out)
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.driver.empty_report(window)
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        self.driver.provisional_into(out)
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.driver.heap_bytes()
    }
}

/// Streaming RTP Heuristic: payload-type media classification, incremental
/// timestamp/marker frame grouping, per-window QoE estimation.
pub struct RtpHeuristicEngine {
    driver: HeuristicDriver<RtpSource>,
}

impl RtpHeuristicEngine {
    /// Creates an engine; the payload map supplies PT→media classification.
    pub fn new(config: EngineConfig, payload_map: PayloadMap) -> Self {
        RtpHeuristicEngine {
            driver: HeuristicDriver::new(
                config,
                Method::RtpHeuristic,
                RtpSource {
                    payload_map,
                    assembler: RtpAssembler::new(),
                },
            ),
        }
    }
}

impl QoeEstimator for RtpHeuristicEngine {
    fn method(&self) -> Method {
        Method::RtpHeuristic
    }

    // lint: hot_path
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        self.driver.push_into(pkt, out)
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        self.driver.finish_into(out)
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.driver.empty_report(window)
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        self.driver.provisional_into(out)
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.driver.heap_bytes()
    }
}

/// Window clock shared by the two ML engines: first-packet anchoring,
/// bounded gap emission, and the advance/finish bookkeeping.
struct MlWindowClock {
    window_us: i64,
    current: u64,
    started: bool,
    gap: GapGuard,
    /// Bounds of the `current` window (`cur_lo > cur_hi` until started):
    /// a packet inside them is in the accumulating window — no division,
    /// no gap check, nothing to emit. The steady-state common case.
    cur_lo: i64,
    cur_hi: i64,
}

impl MlWindowClock {
    fn new(config: EngineConfig) -> Self {
        MlWindowClock {
            window_us: config.window_us(),
            current: 0,
            started: false,
            gap: GapGuard::default(),
            cur_lo: 1,
            cur_hi: 0,
        }
    }

    /// Re-anchors the current-window bounds memo after `current` moved.
    // lint: hot_path
    fn rememo(&mut self) {
        self.cur_lo = self.current as i64 * self.window_us;
        self.cur_hi = self.cur_lo + self.window_us;
    }

    /// Accepts one packet timestamp. Returns the (bounded) range of
    /// window indices to finalize before accumulating the packet, or
    /// `None` when the packet must be dropped (negative timestamp, or a
    /// quarantined far-future jump — see [`MAX_WINDOW_GAP`]). A
    /// corroborated discontinuity finalizes only the in-progress window,
    /// then skips to the new window without per-window reports.
    // lint: hot_path
    fn advance(&mut self, ts: Timestamp) -> Option<std::ops::Range<u64>> {
        let us = ts.as_micros();
        if us < 0 {
            return None;
        }
        if us >= self.cur_lo && us < self.cur_hi {
            // Inside the accumulating window (started is implied: the
            // bounds are empty until the first packet): nothing emits.
            // An in-window packet is a Normal verdict, which clears any
            // quarantine streak — preserve that here.
            self.gap.suspect = None;
            return Some(self.current..self.current);
        }
        let w = us.div_euclid(self.window_us) as u64;
        if !self.started {
            self.started = true;
            self.current = w;
            self.rememo();
            return Some(w..w);
        }
        match self.gap.check(self.current, self.started, w) {
            GapVerdict::Drop => None,
            GapVerdict::Reanchor => {
                let emit = self.current..self.current + 1;
                self.current = w;
                self.rememo();
                Some(emit)
            }
            GapVerdict::Normal => {
                let emit = self.current..w.max(self.current);
                self.current = w.max(self.current);
                self.rememo();
                Some(emit)
            }
        }
    }

    /// The window to finalize at end of stream, if any packet was seen.
    fn finish(&mut self) -> Option<u64> {
        self.started.then(|| {
            let w = self.current;
            self.current += 1;
            w
        })
    }

    /// The window currently accumulating, if any packet was seen.
    fn in_progress(&self) -> Option<u64> {
        self.started.then_some(self.current)
    }
}

// ---------------------------------------------------------------------------
// IP/UDP ML
// ---------------------------------------------------------------------------

/// Streaming IP/UDP ML feature extraction (+ optional model inference):
/// the 14-feature vector per window, computed incrementally.
pub struct IpUdpMlEngine {
    classifier: MediaClassifier,
    acc: IpUdpFeatureAcc,
    /// The (constant) feature vector of an empty window, derived once
    /// from a pristine accumulator so the formulas stay single-sourced.
    empty_features: Vec<f64>,
    window_secs: f64,
    clock: MlWindowClock,
    model: Option<RandomForest>,
}

impl IpUdpMlEngine {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        let window_secs = f64::from(config.window_secs);
        IpUdpMlEngine {
            classifier: MediaClassifier::new(config.vmin),
            acc: IpUdpFeatureAcc::new(config.stats, config.theta_iat_us),
            empty_features: IpUdpFeatureAcc::new(config.stats, config.theta_iat_us)
                .features(window_secs),
            window_secs,
            clock: MlWindowClock::new(config),
            model: None,
        }
    }

    /// Attaches a trained frame-rate model; its prediction is included in
    /// every report.
    pub fn with_model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    fn emit_window(&mut self, window: u64) -> WindowReport {
        let report = self.snapshot_window(window);
        self.acc.reset();
        report
    }

    fn snapshot_window(&self, window: u64) -> WindowReport {
        let features = self.acc.features(self.window_secs);
        WindowReport {
            window,
            method: Method::IpUdpMl,
            estimate: None,
            model_fps: self.model.as_ref().map(|m| m.predict(&features)),
            video_packets: self.acc.packets() as usize,
            features: Some(features),
        }
    }
}

impl QoeEstimator for IpUdpMlEngine {
    fn method(&self) -> Method {
        Method::IpUdpMl
    }

    // lint: hot_path
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        let Some(emit) = self.clock.advance(pkt.ts) else {
            return;
        };
        for w in emit {
            // lint: allow(hot-path-alloc-transitive) -- per-window snapshot; amortized across every packet in the window
            let r = self.emit_window(w);
            out.push(r);
        }
        if self.classifier.is_video(pkt) {
            self.acc.push(pkt.ts, pkt.size);
        }
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        if let Some(w) = self.clock.finish() {
            let r = self.emit_window(w);
            out.push(r);
        }
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        WindowReport {
            window,
            method: Method::IpUdpMl,
            estimate: None,
            features: Some(self.empty_features.clone()),
            model_fps: None,
            video_packets: 0,
        }
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        if let Some(w) = self.clock.in_progress() {
            out.push(self.snapshot_window(w));
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.acc.state_bytes() - std::mem::size_of::<IpUdpFeatureAcc>())
            + self.empty_features.capacity() * std::mem::size_of::<f64>()
    }
}

// ---------------------------------------------------------------------------
// RTP ML
// ---------------------------------------------------------------------------

/// Streaming RTP ML feature extraction (+ optional model inference): the
/// 12 flow features over PT-classified video packets plus the 12 RTP
/// features, computed incrementally per window.
pub struct RtpMlEngine {
    payload_map: PayloadMap,
    flow: FlowFeatureAcc,
    rtp: RtpWindowAcc,
    lag_ref: Option<LagReference>,
    /// The (constant) feature vector of an empty window.
    empty_features: Vec<f64>,
    window_secs: f64,
    clock: MlWindowClock,
    video_packets: usize,
    model: Option<RandomForest>,
}

impl RtpMlEngine {
    /// Creates an engine; the payload map supplies PT→media classification.
    pub fn new(config: EngineConfig, payload_map: PayloadMap) -> Self {
        let window_secs = f64::from(config.window_secs);
        // An empty window's features are lag-ref independent (no frames
        // means no lags), so one pristine-accumulator evaluation covers
        // every empty report.
        let mut empty_features = FlowFeatureAcc::new(config.stats).features(window_secs);
        empty_features.extend(RtpWindowAcc::with_mode(config.stats).features(None));
        RtpMlEngine {
            payload_map,
            flow: FlowFeatureAcc::new(config.stats),
            rtp: RtpWindowAcc::with_mode(config.stats),
            lag_ref: None,
            empty_features,
            window_secs,
            clock: MlWindowClock::new(config),
            video_packets: 0,
            model: None,
        }
    }

    /// Attaches a trained frame-rate model.
    pub fn with_model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    fn emit_window(&mut self, window: u64) -> WindowReport {
        let report = self.snapshot_window(window);
        self.flow.reset();
        self.rtp.reset();
        self.video_packets = 0;
        report
    }

    fn snapshot_window(&self, window: u64) -> WindowReport {
        let mut features = self.flow.features(self.window_secs);
        features.extend(self.rtp.features(self.lag_ref));
        WindowReport {
            window,
            method: Method::RtpMl,
            estimate: None,
            model_fps: self.model.as_ref().map(|m| m.predict(&features)),
            video_packets: self.video_packets,
            features: Some(features),
        }
    }
}

impl QoeEstimator for RtpMlEngine {
    fn method(&self) -> Method {
        Method::RtpMl
    }

    // lint: hot_path
    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        let Some(emit) = self.clock.advance(pkt.ts) else {
            return;
        };
        for w in emit {
            // lint: allow(hot-path-alloc-transitive) -- per-window snapshot; amortized across every packet in the window
            let r = self.emit_window(w);
            out.push(r);
        }
        if let Some(h) = pkt.rtp {
            match self.payload_map.classify(h.payload_type) {
                Some(MediaKind::Video) => {
                    // The lag clock anchors at the session's first video
                    // packet ("we assume that the first frame had zero
                    // delay", §3.3).
                    let lr = *self.lag_ref.get_or_insert(LagReference {
                        t0: pkt.ts,
                        ts0: h.timestamp,
                    });
                    // The accumulator's window-local anchor resets each
                    // window; re-arm it with the session anchor so Sketch
                    // mode folds ring-evicted frame lags correctly.
                    self.rtp.set_lag_anchor(lr);
                    self.flow.push(pkt.ts, pkt.size);
                    self.rtp.push_video(pkt.ts, &h);
                    self.video_packets += 1;
                }
                Some(MediaKind::VideoRtx) => self.rtp.push_rtx(pkt.ts, &h),
                _ => {}
            }
        }
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        if let Some(w) = self.clock.finish() {
            let r = self.emit_window(w);
            out.push(r);
        }
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        WindowReport {
            window,
            method: Method::RtpMl,
            estimate: None,
            features: Some(self.empty_features.clone()),
            model_fps: None,
            video_packets: 0,
        }
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        if let Some(w) = self.clock.in_progress() {
            out.push(self.snapshot_window(w));
        }
    }

    fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.flow.state_bytes() - std::mem::size_of::<FlowFeatureAcc>())
            + (self.rtp.state_bytes() - std::mem::size_of::<RtpWindowAcc>())
            + self.empty_features.capacity() * std::mem::size_of::<f64>()
    }
}

// ---------------------------------------------------------------------------
// Replay (batch = streaming)
// ---------------------------------------------------------------------------

/// Replays a trace through an engine and returns exactly
/// `ceil(duration / window_secs)` reports: the batch evaluation as a thin
/// layer over the streaming path. Windows past the end of the stream are
/// padded with [`QoeEstimator::empty_report`]; windows past the nominal
/// duration are dropped (they carry no ground truth).
pub fn replay<E: QoeEstimator + ?Sized>(
    engine: &mut E,
    trace: &Trace,
    window_secs: u32,
) -> Vec<WindowReport> {
    replay_packets(engine, &trace.packets, trace.duration_secs, window_secs)
}

/// [`replay`] over a raw packet list with an explicit nominal duration.
pub fn replay_packets<E: QoeEstimator + ?Sized>(
    engine: &mut E,
    packets: &[TracePacket],
    duration_secs: u32,
    window_secs: u32,
) -> Vec<WindowReport> {
    assert!(window_secs > 0, "zero window");
    let mut reports = Vec::new();
    for p in packets {
        engine.push_into(p, &mut reports);
    }
    engine.finish_into(&mut reports);
    place_windows(engine, reports, duration_secs, window_secs)
}

/// Aligns a finished engine's reports onto the nominal duration grid:
/// engines are anchored at their first packet's window, so each report
/// lands at its absolute index, leading/trailing gaps are padded with
/// [`QoeEstimator::empty_report`], and windows past the nominal duration
/// are dropped (they carry no ground truth). The placement half of
/// [`replay_packets`], shared with source-driven replays
/// ([`crate::pipeline::build_samples`] streams a [`crate::source::ReplaySource`]
/// through several engines at once and places each engine's reports
/// through here).
pub fn place_windows<E: QoeEstimator + ?Sized>(
    engine: &E,
    reports: Vec<WindowReport>,
    duration_secs: u32,
    window_secs: u32,
) -> Vec<WindowReport> {
    assert!(window_secs > 0, "zero window");
    let n = duration_secs.div_ceil(window_secs) as usize;
    let mut slots: Vec<Option<WindowReport>> = (0..n).map(|_| None).collect();
    for r in reports {
        let w = r.window as usize;
        if w < n {
            debug_assert!(slots[w].is_none(), "duplicate report for window {w}");
            slots[w] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(w, slot)| slot.unwrap_or_else(|| engine.empty_report(w as u64)))
        .collect()
}

// ---------------------------------------------------------------------------
// FlowTable
// ---------------------------------------------------------------------------

/// A sharded, flow-keyed table of per-flow estimators: one process
/// monitoring many concurrent VCA calls.
///
/// Packets are routed by canonical UDP 5-tuple to a per-flow engine
/// created on first sight by the factory. Each shard is an
/// **open-addressed** linear-probe index over a dense entry slab: a
/// lookup is one cheap multiplicative hash ([`FlowKey::hash64`]), a few
/// contiguous slot probes, and one slab access — no SipHash, no
/// per-entry allocation, and eviction recycles slots in place. The
/// hashed entry points (`*_hashed`) let callers that already computed
/// the flow hash (the facade hashes once per packet for worker routing)
/// skip rehashing. Idle flows are evicted — flushing their final
/// windows — so memory is O(active flows), each O(window content)
/// ([`StatsMode::Sketch`]: O(1)).
///
/// Hash-bit usage across the routing layers (one hash per packet):
/// workers take `hash64 % n_threads` (low bits), shards take the top 16
/// bits, slot probing starts from bits 16.. — so the three layers stay
/// uncorrelated.
pub struct FlowTable<E: QoeEstimator> {
    shards: Vec<FlowShard<E>>,
    factory: Box<dyn FnMut(&FlowKey) -> E + Send>,
    idle_timeout_us: i64,
}

struct FlowEntry<E> {
    key: FlowKey,
    hash: u64,
    /// Index of this entry's slot in the shard's probe table.
    slot: u32,
    engine: E,
    last_seen: Timestamp,
}

/// Sentinel for an unoccupied probe slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// One open-addressed shard: a power-of-two probe table of entry indices
/// plus a dense entry slab (`swap_remove` keeps it dense; each entry
/// remembers its slot so moves can be patched).
struct FlowShard<E> {
    slots: Vec<u32>,
    entries: Vec<FlowEntry<E>>,
}

impl<E> FlowShard<E> {
    fn new() -> Self {
        FlowShard {
            slots: Vec::new(),
            entries: Vec::new(),
        }
    }

    #[inline]
    // lint: hot_path
    fn home(&self, hash: u64) -> usize {
        // Bits 16.. seed the probe: low bits route workers, top bits
        // route shards.
        (hash >> 16) as usize & (self.slots.len() - 1)
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    // lint: hot_path
    fn find_slot(&self, hash: u64, key: &FlowKey) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(hash);
        loop {
            let s = self.slots[i];
            if s == EMPTY_SLOT {
                return None;
            }
            let e = &self.entries[s as usize];
            if e.hash == hash && e.key == *key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Index into `entries` for `key`, if present.
    #[inline]
    // lint: hot_path
    fn find(&self, hash: u64, key: &FlowKey) -> Option<usize> {
        self.find_slot(hash, key)
            .map(|slot| self.slots[slot] as usize)
    }

    /// Grows (or initializes) the probe table and re-places every entry.
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(new_cap, EMPTY_SLOT);
        let mask = new_cap - 1;
        for (idx, e) in self.entries.iter_mut().enumerate() {
            let mut i = (e.hash >> 16) as usize & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
            e.slot = i as u32;
        }
    }

    /// Inserts a new entry (caller guarantees the key is absent),
    /// returning its index in `entries`.
    fn insert_new(&mut self, key: FlowKey, hash: u64, engine: E, last_seen: Timestamp) -> usize {
        // Keep load ≤ 7/8 so probe runs stay short.
        if self.slots.is_empty() || (self.entries.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(hash);
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        let idx = self.entries.len();
        self.slots[i] = idx as u32;
        self.entries.push(FlowEntry {
            key,
            hash,
            slot: i as u32,
            engine,
            last_seen,
        });
        idx
    }

    /// Removes the entry at `slot`, backward-shifting the probe run to
    /// keep lookups tombstone-free, and returns the entry.
    fn remove_slot(&mut self, slot: usize) -> FlowEntry<E> {
        let mask = self.slots.len() - 1;
        let idx = self.slots[slot] as usize;
        // Backward-shift deletion: close the hole by moving any later
        // entry in the probe run whose home position is at or before the
        // hole.
        let mut hole = slot;
        let mut j = slot;
        loop {
            j = (j + 1) & mask;
            let s = self.slots[j];
            if s == EMPTY_SLOT {
                break;
            }
            let home = (self.entries[s as usize].hash >> 16) as usize & mask;
            let dist_home = j.wrapping_sub(home) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                self.slots[hole] = s;
                self.entries[s as usize].slot = hole as u32;
                hole = j;
            }
        }
        self.slots[hole] = EMPTY_SLOT;
        // Keep the slab dense; patch the moved entry's slot pointer.
        let entry = self.entries.swap_remove(idx);
        if idx < self.entries.len() {
            let moved_slot = self.entries[idx].slot as usize;
            self.slots[moved_slot] = idx as u32;
        }
        entry
    }
}

impl<E: QoeEstimator> FlowTable<E> {
    /// Creates a table with `n_shards` shards (≥ 1), a per-flow engine
    /// factory, and an idle timeout after which flows are evictable.
    pub fn new(
        n_shards: usize,
        idle_timeout: Timestamp,
        factory: impl FnMut(&FlowKey) -> E + Send + 'static,
    ) -> Self {
        assert!(n_shards >= 1, "zero shards");
        assert!(idle_timeout.as_micros() > 0, "non-positive idle timeout");
        FlowTable {
            shards: (0..n_shards).map(|_| FlowShard::new()).collect(),
            factory: Box::new(factory),
            idle_timeout_us: idle_timeout.as_micros(),
        }
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        ((hash >> 48) as usize) % self.shards.len()
    }

    /// Inserts a pre-built engine for `key`, replacing any existing one.
    /// The facade uses this when engine selection depends on more than the
    /// flow key (RTP-confidence probation); plain [`Self::push`] creation
    /// goes through the factory.
    pub fn insert(&mut self, key: FlowKey, engine: E, last_seen: Timestamp) {
        self.insert_hashed(key.hash64(), key, engine, last_seen);
    }

    /// [`Self::insert`] with a precomputed [`FlowKey::hash64`].
    pub fn insert_hashed(&mut self, hash: u64, key: FlowKey, engine: E, last_seen: Timestamp) {
        let shard_idx = self.shard_of(hash);
        let shard = &mut self.shards[shard_idx];
        match shard.find(hash, &key) {
            Some(idx) => {
                let e = &mut shard.entries[idx];
                e.engine = engine;
                e.last_seen = last_seen;
            }
            None => {
                shard.insert_new(key, hash, engine, last_seen);
            }
        }
    }

    /// Mutable access to a flow's engine, if tracked.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut E> {
        self.get_mut_hashed(key.hash64(), key)
    }

    /// [`Self::get_mut`] with a precomputed [`FlowKey::hash64`].
    pub fn get_mut_hashed(&mut self, hash: u64, key: &FlowKey) -> Option<&mut E> {
        let shard_idx = self.shard_of(hash);
        let shard = &mut self.shards[shard_idx];
        shard
            .find(hash, key)
            .map(|idx| &mut shard.entries[idx].engine)
    }

    /// [`Self::get_mut_hashed`] that also advances the flow's `last_seen`
    /// toward `ts` (bounded by one idle timeout per call, like
    /// [`Self::push_hashed_into`]) — the facade's per-packet lookup,
    /// which needs the entry's bookkeeping hot before pushing.
    // lint: hot_path
    pub fn get_mut_seen_hashed(
        &mut self,
        hash: u64,
        key: &FlowKey,
        ts: Timestamp,
    ) -> Option<&mut E> {
        let idle = self.idle_timeout_us;
        let shard_idx = self.shard_of(hash);
        let shard = &mut self.shards[shard_idx];
        shard.find(hash, key).map(move |idx| {
            let entry = &mut shard.entries[idx];
            let bound = Timestamp::from_micros(entry.last_seen.as_micros().saturating_add(idle));
            entry.last_seen = entry.last_seen.max(ts.min(bound));
            &mut entry.engine
        })
    }

    /// Removes a flow's engine without finishing it; the caller owns any
    /// remaining flush.
    pub fn remove(&mut self, key: &FlowKey) -> Option<E> {
        self.remove_hashed(key.hash64(), key)
    }

    /// [`Self::remove`] with a precomputed [`FlowKey::hash64`].
    pub fn remove_hashed(&mut self, hash: u64, key: &FlowKey) -> Option<E> {
        let shard_idx = self.shard_of(hash);
        let shard = &mut self.shards[shard_idx];
        shard
            .find_slot(hash, key)
            .map(|slot| shard.remove_slot(slot).engine)
    }

    /// Routes one packet to its flow's engine (creating it on first
    /// sight) and returns that flow's finalized windows.
    pub fn push(&mut self, key: FlowKey, pkt: &TracePacket) -> Vec<WindowReport> {
        let mut out = Vec::new();
        self.push_hashed_into(key.hash64(), key, pkt, &mut out);
        out
    }

    /// [`Self::push`] with a precomputed hash, appending finalized
    /// windows into `out` — the zero-alloc per-packet entry point.
    // lint: hot_path
    pub fn push_hashed_into(
        &mut self,
        hash: u64,
        key: FlowKey,
        pkt: &TracePacket,
        out: &mut Vec<WindowReport>,
    ) {
        let shard_idx = self.shard_of(hash);
        let shard = &mut self.shards[shard_idx];
        let idx = match shard.find(hash, &key) {
            Some(idx) => idx,
            None => {
                let engine = (self.factory)(&key);
                shard.insert_new(key, hash, engine, pkt.ts)
            }
        };
        let entry = &mut shard.entries[idx];
        // Advance `last_seen` by at most one idle timeout per packet: a
        // corrupt far-future timestamp (which the engine quarantines)
        // then delays eviction by at most one timeout instead of marking
        // a healthy flow as "from the future" and getting it evicted —
        // or, with a plain max, pinning it forever.
        let bound = Timestamp::from_micros(
            entry
                .last_seen
                .as_micros()
                .saturating_add(self.idle_timeout_us),
        );
        entry.last_seen = entry.last_seen.max(pkt.ts.min(bound));
        entry.engine.push_into(pkt, out);
    }

    /// Evicts flows idle longer than the timeout at `now`, flushing each
    /// evicted flow's remaining windows.
    pub fn evict_idle(&mut self, now: Timestamp) -> Vec<(FlowKey, Vec<WindowReport>)> {
        let deadline = now.as_micros() - self.idle_timeout_us;
        // A flow whose last packet claims to be from far in the future
        // relative to `now` carries a corrupt timestamp; reclaim it too
        // rather than letting it pin memory forever.
        let future_bound = now.as_micros().saturating_add(self.idle_timeout_us);
        let mut out = Vec::new();
        for shard in &mut self.shards {
            let mut idx = 0;
            while idx < shard.entries.len() {
                let e = &shard.entries[idx];
                if e.last_seen.as_micros() < deadline || e.last_seen.as_micros() > future_bound {
                    let slot = e.slot as usize;
                    let mut entry = shard.remove_slot(slot);
                    out.push((entry.key, entry.engine.finish()));
                    // swap_remove refilled `idx`; re-examine it.
                } else {
                    idx += 1;
                }
            }
        }
        out
    }

    /// Finishes every flow (end of capture), returning each flow's
    /// remaining windows.
    pub fn finish_all(mut self) -> Vec<(FlowKey, Vec<WindowReport>)> {
        self.drain_finish_all()
    }

    /// [`Self::finish_all`] without consuming the table: drains and
    /// finishes every flow in place, leaving the table empty but
    /// reusable. This is the shape a shard worker needs — it owns its
    /// table inside long-lived state and seals flows at end of stream
    /// without moving out of itself.
    pub fn drain_finish_all(&mut self) -> Vec<(FlowKey, Vec<WindowReport>)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            shard.slots.clear();
            for mut entry in shard.entries.drain(..) {
                out.push((entry.key, entry.engine.finish()));
            }
        }
        out.sort_by_key(|(k, _)| (k.addr_a, k.port_a, k.addr_b, k.port_b));
        out
    }

    /// Visits every tracked flow's engine mutably, in unspecified order
    /// (the facade's forced provisional flush walks all flows at once).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&FlowKey, &mut E)) {
        for shard in &mut self.shards {
            for entry in shard.entries.iter_mut() {
                f(&entry.key, &mut entry.engine);
            }
        }
    }

    /// Number of currently tracked flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// True when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Flows per shard (for load-balance inspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.entries.len()).collect()
    }

    /// Total resident bytes of tracked-flow state: the probe tables, the
    /// entry slabs, and each engine's own [`QoeEstimator::state_bytes`]
    /// accounting — the numerator of the monitor's bytes-per-flow gauge.
    pub fn state_bytes(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            total += shard.slots.capacity() * std::mem::size_of::<u32>();
            total += shard.entries.capacity() * std::mem::size_of::<FlowEntry<E>>();
            for entry in &shard.entries {
                total += entry.engine.state_bytes();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::IpUdpHeuristic;
    use crate::qoe::estimate_windows;
    use std::net::{IpAddr, Ipv4Addr};
    use vcaml_features::{ipudp_features, windows_by_second, PktObs};

    fn config() -> EngineConfig {
        EngineConfig::paper(VcaKind::Teams)
    }

    fn pkt(us: i64, size: u16) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_micros(us),
            size,
            rtp: None,
            truth_media: None,
        }
    }

    /// 30 fps, two equal-size packets per frame with per-frame size
    /// variation so boundaries are detectable, plus audio in between.
    fn synthetic_stream(secs: i64) -> Vec<TracePacket> {
        let mut out = Vec::new();
        for f in 0..secs * 30 {
            let t0 = f * 33_333;
            let size = 1000 + ((f % 9) * 13) as u16;
            out.push(pkt(t0, size));
            out.push(pkt(t0 + 300, size));
            out.push(pkt(t0 + 10_000, 150)); // audio (filtered out)
        }
        out.sort_by_key(|p| p.ts);
        out
    }

    fn run<E: QoeEstimator>(engine: &mut E, packets: &[TracePacket]) -> Vec<WindowReport> {
        let mut reports = Vec::new();
        for p in packets {
            reports.extend(engine.push(p));
        }
        reports.extend(engine.finish());
        reports
    }

    #[test]
    fn heuristic_engine_windows_are_consecutive() {
        let stream = synthetic_stream(5);
        let reports = run(&mut IpUdpHeuristicEngine::new(config()), &stream);
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window, i as u64);
            assert_eq!(r.method, Method::IpUdpHeuristic);
        }
    }

    #[test]
    fn heuristic_engine_matches_batch_exactly() {
        let stream = synthetic_stream(4);
        let reports = run(&mut IpUdpHeuristicEngine::new(config()), &stream);
        // Independent batch path: classify, assemble the whole trace,
        // bucket frames by end time.
        let video: Vec<(Timestamp, u16)> = stream
            .iter()
            .filter(|p| p.size >= crate::media::DEFAULT_VMIN)
            .map(|p| (p.ts, p.size))
            .collect();
        let (frames, _) = IpUdpHeuristic::new(config().heuristic).assemble(&video);
        let batch = estimate_windows(&frames, 4, 1);
        assert_eq!(reports.len(), batch.len());
        for (r, b) in reports.iter().zip(&batch) {
            assert_eq!(r.estimate.unwrap(), *b, "window {}", r.window);
        }
        for r in &reports {
            let fps = r.estimate.unwrap().fps;
            assert!((fps - 30.0).abs() <= 2.0, "fps {fps}");
        }
    }

    #[test]
    fn ml_engine_features_match_batch_slices() {
        let stream = synthetic_stream(3);
        let reports = run(&mut IpUdpMlEngine::new(config()), &stream);
        let video: Vec<PktObs> = stream
            .iter()
            .filter(|p| p.size >= crate::media::DEFAULT_VMIN)
            .map(|p| PktObs {
                ts: p.ts,
                size: p.size,
            })
            .collect();
        let windows = windows_by_second(&video, 3, 1);
        assert_eq!(reports.len(), 3);
        for (wi, r) in reports.iter().enumerate() {
            let batch = ipudp_features(&windows[wi], 1.0, config().theta_iat_us);
            assert_eq!(r.features.as_deref().unwrap(), &batch[..], "window {wi}");
        }
    }

    #[test]
    fn idle_gap_emits_empty_windows() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        engine.push(&pkt(100_000, 1100));
        let reports = engine.push(&pkt(3_100_000, 1100));
        // The second packet matches the open frame (same size within Δ),
        // pulling its end into window 3 — exactly what the batch
        // assembler does — so windows 0..=2 are all final and empty.
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].video_packets, 1); // arrival count stays put
        for r in &reports {
            assert_eq!(r.estimate.unwrap().fps, 0.0);
        }
    }

    #[test]
    fn negative_timestamps_dropped() {
        let mut engine = IpUdpMlEngine::new(config());
        assert!(engine.push(&pkt(-5_000, 1100)).is_empty());
        let reports = run(&mut engine, &synthetic_stream(1));
        assert_eq!(reports.len(), 1);
        // The negative-time packet contributed nothing.
        assert_eq!(reports[0].video_packets, 60);
    }

    #[test]
    fn assembler_memory_stays_bounded() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        // An hour of adversarial all-distinct sizes.
        for i in 0..200_000i64 {
            let size = 450 + (i % 900) as u16;
            engine.push(&pkt(i * 18_000, size));
        }
        assert!(engine.driver.source.assembler.open_frames() <= config().heuristic.lookback + 1);
    }

    #[test]
    fn late_flow_anchors_at_first_packet_window() {
        // A flow first seen an hour into the capture must not flood the
        // caller with ~3600 empty windows.
        let hour_us = 3_600i64 * 1_000_000;
        let mut heur = IpUdpHeuristicEngine::new(config());
        assert!(heur.push(&pkt(hour_us + 1_000, 1100)).is_empty());
        // Two more non-matching packets seal the first frame (lookback 2),
        // making window 3600 final — and only then is it emitted.
        assert!(heur.push(&pkt(hour_us + 1_100_000, 1000)).is_empty());
        let reports = heur.push(&pkt(hour_us + 1_200_000, 900));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 3_600);

        let mut ml = IpUdpMlEngine::new(config());
        assert!(ml.push(&pkt(hour_us + 1_000, 1100)).is_empty());
        let reports = ml.push(&pkt(hour_us + 1_100_000, 1000));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 3_600);
        let tail = ml.finish();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].window, 3_601);
    }

    #[test]
    fn corrupt_timestamp_dropped_and_engine_recovers() {
        // A single packet with an absurd timestamp (a mangled pcap
        // record) is quarantined — no window flood, and the flow keeps
        // reporting correctly once sane packets resume.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut clean = IpUdpHeuristicEngine::new(config());
        let mut dirty = IpUdpHeuristicEngine::new(config());
        let stream = synthetic_stream(4);
        let mut clean_reports = Vec::new();
        let mut dirty_reports = Vec::new();
        for (i, p) in stream.iter().enumerate() {
            if i == stream.len() / 2 {
                // The corrupt packet is dropped, emitting nothing.
                assert!(dirty.push(&pkt(year_us, 800)).is_empty());
            }
            clean_reports.extend(clean.push(p));
            dirty_reports.extend(dirty.push(p));
        }
        clean_reports.extend(clean.finish());
        dirty_reports.extend(dirty.finish());
        assert_eq!(clean_reports.len(), dirty_reports.len());
        for (c, d) in clean_reports.iter().zip(&dirty_reports) {
            assert_eq!(c.window, d.window);
            assert_eq!(c.estimate.unwrap(), d.estimate.unwrap());
        }

        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(0, 1100));
        assert!(ml.push(&pkt(year_us, 800)).is_empty(), "outlier dropped");
        // Sane traffic continues in the original epoch.
        let reports = ml.push(&pkt(1_100_000, 1000));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 0);
    }

    #[test]
    fn corrupt_first_timestamp_recovers_backward() {
        // A mangled timestamp on the very first packet anchors the flow
        // at a bogus epoch; sane traffic "in the past" must quarantine
        // that epoch and re-anchor backward instead of being silently
        // dropped forever.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut heur = IpUdpHeuristicEngine::new(config());
        heur.push(&pkt(year_us, 800));
        let stream = synthetic_stream(3);
        let mut reports = Vec::new();
        for p in &stream {
            reports.extend(heur.push(p));
        }
        reports.extend(heur.finish());
        // Windows 0..=2 of the sane epoch come out (the corrupt epoch's
        // lone frame flushes at a far-future index and is discarded here).
        let sane: Vec<_> = reports.iter().filter(|r| r.window < 10).collect();
        assert_eq!(sane.len(), 3, "sane windows: {reports:?}");
        for r in &sane {
            let fps = r.estimate.unwrap().fps;
            assert!(r.window >= 1 || fps > 0.0 || r.video_packets > 0);
        }

        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(year_us, 800));
        let mut reports = Vec::new();
        for p in &stream {
            reports.extend(ml.push(p));
        }
        reports.extend(ml.finish());
        let sane: Vec<_> = reports.iter().filter(|r| r.window < 10).collect();
        assert_eq!(sane.len(), 3, "sane ML windows");
        assert!(sane.iter().all(|r| r.video_packets > 0));
    }

    #[test]
    fn corroborated_discontinuity_reanchors() {
        // Several packets agreeing on a far-future epoch constitute a
        // genuine capture discontinuity: the engine flushes, skips the
        // gap without per-window reports, and resumes at the new epoch.
        // Two hours exceeds MAX_WINDOW_GAP (4096 one-second windows).
        let jump_us = 2 * 3_600i64 * 1_000_000;
        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(0, 1100));
        assert!(ml.push(&pkt(jump_us, 1000)).is_empty());
        assert!(ml.push(&pkt(jump_us + 1_000, 1000)).is_empty());
        let reports = ml.push(&pkt(jump_us + 2_000, 1000));
        // The corroborating packet finalizes the old in-progress window…
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 0);
        // …and emission resumes at the new epoch.
        let tail = ml.finish();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].window, 7_200);
    }

    #[test]
    fn replay_fills_leading_gap_with_empty_windows() {
        // First packet lands in window 3: replay still returns windows
        // 0..n with empty reports up front.
        let packets = vec![
            pkt(3_100_000, 1100),
            pkt(3_200_000, 1000),
            pkt(3_300_000, 900),
        ];
        let reports = replay_packets(&mut IpUdpMlEngine::new(config()), &packets, 5, 1);
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window, i as u64);
        }
        assert_eq!(reports[0].video_packets, 0);
        assert_eq!(reports[3].video_packets, 3);
        // Leading empties equal the engine's own empty-window vector.
        let empty = IpUdpMlEngine::new(config()).empty_report(0);
        assert_eq!(reports[0].features, empty.features);
    }

    #[test]
    fn replay_pads_and_truncates_to_duration() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        let reports = replay_packets(&mut engine, &synthetic_stream(2), 6, 1);
        assert_eq!(reports.len(), 6);
        assert!(reports[5].video_packets == 0);
        let mut engine = IpUdpMlEngine::new(config());
        let reports = replay_packets(&mut engine, &synthetic_stream(4), 2, 1);
        assert_eq!(reports.len(), 2);
    }

    fn flow_key(n: u8) -> FlowKey {
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, 0, n));
        let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
        FlowKey::canonical(server, 3478, client, 50_000 + u16::from(n), 17).0
    }

    #[test]
    fn flow_table_separates_interleaved_flows() {
        // Flow 1: the synthetic stream. Flow 2: the same shape shifted in
        // size so its windows differ.
        let a = synthetic_stream(3);
        let b: Vec<TracePacket> = a
            .iter()
            .map(|p| pkt(p.ts.as_micros() + 7, p.size.saturating_add(200)))
            .collect();
        let mut feed: Vec<(FlowKey, TracePacket)> = a
            .iter()
            .map(|p| (flow_key(1), *p))
            .chain(b.iter().map(|p| (flow_key(2), *p)))
            .collect();
        feed.sort_by_key(|(_, p)| p.ts);

        let mut table = FlowTable::new(4, Timestamp::from_secs(60), |_: &FlowKey| {
            IpUdpHeuristicEngine::new(config())
        });
        let mut per_flow: std::collections::HashMap<FlowKey, Vec<WindowReport>> =
            std::collections::HashMap::new();
        for (key, p) in &feed {
            per_flow
                .entry(*key)
                .or_default()
                .extend(table.push(*key, p));
        }
        assert_eq!(table.len(), 2);
        for (key, rest) in table.finish_all() {
            per_flow.entry(key).or_default().extend(rest);
        }

        // Each flow's reports equal a solo run of the same packets.
        let solo_a = run(&mut IpUdpHeuristicEngine::new(config()), &a);
        let solo_b = run(&mut IpUdpHeuristicEngine::new(config()), &b);
        for (solo, key) in [(&solo_a, flow_key(1)), (&solo_b, flow_key(2))] {
            let got = &per_flow[&key];
            assert_eq!(got.len(), solo.len());
            for (g, s) in got.iter().zip(solo.iter()) {
                assert_eq!(g.window, s.window);
                assert_eq!(g.estimate.unwrap(), s.estimate.unwrap());
            }
        }
    }

    #[test]
    fn flow_table_evicts_idle_flows() {
        let mut table = FlowTable::new(2, Timestamp::from_secs(5), |_: &FlowKey| {
            IpUdpHeuristicEngine::new(config())
        });
        table.push(flow_key(1), &pkt(0, 1100));
        table.push(flow_key(2), &pkt(9_000_000, 1100));
        assert_eq!(table.len(), 2);
        let evicted = table.evict_idle(Timestamp::from_secs(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, flow_key(1));
        assert!(!evicted[0].1.is_empty(), "eviction flushes final windows");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn flow_table_shards_spread_load() {
        let mut table = FlowTable::new(8, Timestamp::from_secs(60), |_: &FlowKey| {
            IpUdpMlEngine::new(config())
        });
        for n in 0..64 {
            table.push(flow_key(n), &pkt(0, 1100));
        }
        assert_eq!(table.len(), 64);
        assert_eq!(table.shard_count(), 8);
        let loads = table.shard_loads();
        assert!(
            loads.iter().filter(|&&l| l > 0).count() >= 4,
            "loads {loads:?}"
        );
    }

    #[test]
    fn rtp_engines_consume_rtp_stream() {
        use vcaml_rtp::{PayloadMap, RtpHeader};
        let map = PayloadMap::lab(VcaKind::Teams);
        let mut packets = Vec::new();
        for f in 0..60i64 {
            let t0 = f * 33_333;
            let size = 1100u16;
            for i in 0..2u16 {
                packets.push(TracePacket {
                    ts: Timestamp::from_micros(t0 + i64::from(i) * 300),
                    size,
                    rtp: Some(RtpHeader::basic(
                        102,
                        (f * 2) as u16 + i,
                        (f * 3000) as u32,
                        1,
                        i == 1,
                    )),
                    truth_media: None,
                });
            }
        }
        let mut heur = RtpHeuristicEngine::new(config(), map);
        let reports = run(&mut heur, &packets);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let fps = r.estimate.unwrap().fps;
            assert!((fps - 30.0).abs() <= 1.0, "fps {fps}");
        }
        let mut ml = RtpMlEngine::new(config(), map);
        let reports = run(&mut ml, &packets);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let f = r.features.as_deref().unwrap();
            assert_eq!(f.len(), 24);
            // ~30 unique video timestamps per second (±1 for the frame
            // straddling the window boundary).
            assert!((29.0..=31.0).contains(&f[12]), "unique ts {}", f[12]);
        }
    }
}
