//! The unified incremental estimation engine (§7's "streaming versions of
//! the methods", scaled out to many concurrent calls).
//!
//! **Stability: unstable internals.** This module is the machine room
//! under the [`crate::api`] facade. It stays `pub` so parity tests and
//! benchmarks can drive engines directly, but its types and signatures
//! may change without notice; applications should construct monitors
//! through [`crate::api::MonitorBuilder`] and consume
//! [`crate::api::QoeEvent`]s instead of wiring engines and [`FlowTable`]s
//! by hand.
//!
//! All four methods of the paper implement one trait — [`QoeEstimator`]:
//! feed captured packets in arrival order via `push`, receive finalized
//! [`WindowReport`]s as window boundaries become safe, and `finish` at end
//! of stream. The engines share the incremental building blocks the batch
//! pipeline is itself built from (the assemblers in [`crate::heuristic`] /
//! [`crate::rtp_heuristic`], the [`crate::qoe::QoeWindower`], and the
//! feature accumulators in `vcaml_features::incremental`), so a streaming
//! run reproduces the batch pipeline's numbers exactly — the batch
//! [`crate::pipeline::build_samples`] is in fact a replay over these
//! engines (see [`replay`]).
//!
//! For network-wide deployment, [`FlowTable`] demuxes a mixed packet feed
//! onto per-flow engines keyed by the canonical UDP 5-tuple
//! (`vcaml_netpkt::FlowKey`), sharded for cache locality and future
//! parallelism, with idle-flow eviction so memory tracks the set of
//! *active* calls.
//!
//! ## Emission latency
//!
//! Heuristic reports are emitted as soon as every frame that could still
//! land in a window has been sealed (a few packets after the boundary for
//! the IP/UDP method, up to [`SCAN_DEPTH`](crate::rtp_heuristic) frames
//! for the RTP method); ML feature reports are emitted at the first
//! packet past the boundary. `finish` flushes everything.

use crate::frames::Frame;
use crate::heuristic::{HeuristicParams, IpUdpAssembler};
use crate::media::MediaClassifier;
use crate::pipeline::Method;
use crate::qoe::{QoeEstimate, QoeWindower};
use crate::rtp_heuristic::RtpAssembler;
use crate::trace::{Trace, TracePacket};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use vcaml_features::rtp_feats::LagReference;
use vcaml_features::{FlowFeatureAcc, IpUdpFeatureAcc, RtpWindowAcc, StatsMode};
use vcaml_mlcore::RandomForest;
use vcaml_netpkt::{FlowKey, Timestamp};
use vcaml_rtp::{MediaKind, PayloadMap, VcaKind};

/// Engine configuration shared by all four methods.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Media-classification size threshold (IP/UDP methods).
    pub vmin: u16,
    /// Algorithm 1 parameters (IP/UDP Heuristic).
    pub heuristic: HeuristicParams,
    /// Prediction window length, seconds.
    pub window_secs: u32,
    /// Microburst inter-arrival threshold, microseconds.
    pub theta_iat_us: i64,
    /// Order-statistic accumulation mode: `Exact` reproduces the batch
    /// formulas bit-compatibly; `Sketch` caps per-flow state at O(1).
    pub stats: StatsMode,
}

impl EngineConfig {
    /// The paper's configuration for a VCA (§4.3).
    pub fn paper(vca: VcaKind) -> Self {
        EngineConfig {
            vmin: crate::media::DEFAULT_VMIN,
            heuristic: HeuristicParams::paper(vca),
            window_secs: 1,
            theta_iat_us: vcaml_features::DEFAULT_THETA_IAT_US,
            stats: StatsMode::Exact,
        }
    }

    fn window_us(&self) -> i64 {
        i64::from(self.window_secs) * 1_000_000
    }
}

/// Largest run of consecutive empty windows an engine will emit for one
/// arrival gap. A packet whose window index jumps further than this — in
/// either direction, covering a corrupt timestamp on the *first* packet
/// followed by sane traffic "in the past" — is *quarantined*: the packet
/// is dropped, and only after
/// [`DISCONTINUITY_CORROBORATION`] consecutive packets land near the same
/// new epoch does the engine treat the jump as a genuine capture
/// discontinuity (very long idle, capture restart) — flushing pending
/// windows, skipping the gap without per-window reports, and re-anchoring
/// emission at the new window. Isolated corrupt timestamps (a mangled
/// pcap record) are therefore dropped without poisoning the flow, while
/// per-packet work and allocation stay bounded no matter what timestamps
/// arrive. [`replay`] fills skipped windows explicitly, so batch outputs
/// are unaffected.
pub const MAX_WINDOW_GAP: u64 = 4_096;

/// How many consecutive packets must agree with a new far-future epoch
/// before an engine re-anchors to it (see [`MAX_WINDOW_GAP`]).
pub const DISCONTINUITY_CORROBORATION: u32 = 3;

/// Verdict for one packet's window index against the flow's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapVerdict {
    /// Within the bounded gap: process normally.
    Normal,
    /// Quarantined outlier: drop the packet.
    Drop,
    /// Corroborated discontinuity: flush, skip, and re-anchor at this
    /// packet's window.
    Reanchor,
}

/// Shared quarantine logic for far-future timestamp jumps.
#[derive(Debug, Clone, Copy, Default)]
struct GapGuard {
    /// `(first suspect window, corroborating packets seen)`.
    suspect: Option<(u64, u32)>,
}

impl GapGuard {
    fn check(&mut self, clock: u64, started: bool, w: u64) -> GapVerdict {
        if !started || w.abs_diff(clock) <= MAX_WINDOW_GAP {
            // Near the established epoch: any earlier outlier was corrupt.
            self.suspect = None;
            return GapVerdict::Normal;
        }
        match self.suspect {
            Some((epoch, seen)) if w.abs_diff(epoch) <= MAX_WINDOW_GAP => {
                if seen + 1 >= DISCONTINUITY_CORROBORATION {
                    self.suspect = None;
                    GapVerdict::Reanchor
                } else {
                    self.suspect = Some((epoch, seen + 1));
                    GapVerdict::Drop
                }
            }
            // First suspect, or a jump that does not cluster with the
            // previous suspect (random corruption): restart quarantine.
            _ => {
                self.suspect = Some((w, 1));
                GapVerdict::Drop
            }
        }
    }
}

/// One finalized prediction window from an engine.
#[derive(Debug, Clone, Serialize)]
pub struct WindowReport {
    /// Window index (0-based from stream start).
    pub window: u64,
    /// The method that produced the report.
    pub method: Method,
    /// Heuristic QoE estimate (heuristic methods only).
    pub estimate: Option<QoeEstimate>,
    /// Feature vector (ML methods only): 14 IP/UDP or 24 RTP features.
    pub features: Option<Vec<f64>>,
    /// Frame-rate prediction from an attached model, if any.
    pub model_fps: Option<f64>,
    /// Packets the method attributed to video in this window (by arrival).
    pub video_packets: usize,
}

/// The unified per-flow estimator interface all four methods implement.
///
/// Contract: packets arrive with non-decreasing timestamps; negative
/// timestamps are outside every window and are dropped. Reports come out
/// in strict window order with no gaps (idle windows yield zero
/// estimates / zero features). Call `finish` exactly once at end of
/// stream to flush the remaining windows.
pub trait QoeEstimator {
    /// Which of the paper's four methods this engine implements.
    fn method(&self) -> Method;

    /// Offers one captured packet; returns any windows finalized by it.
    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport>;

    /// Flushes every remaining window at end of stream.
    fn finish(&mut self) -> Vec<WindowReport>;

    /// The report an idle (empty) window produces — used by [`replay`] to
    /// pad a fixed-duration evaluation.
    fn empty_report(&self, window: u64) -> WindowReport;

    /// Snapshots every window that has started but is not yet final —
    /// the still-accumulating current window and, for the heuristic
    /// engines, boundary windows held back by open frames. The reports
    /// are *provisional*: metrics are lower bounds that the eventual
    /// final report supersedes, and nothing is consumed from the engine.
    /// Used by the facade's optional max-lag flush; engines that cannot
    /// snapshot return nothing (the default).
    fn provisional(&self) -> Vec<WindowReport> {
        Vec::new()
    }
}

impl<T: QoeEstimator + ?Sized> QoeEstimator for Box<T> {
    fn method(&self) -> Method {
        (**self).method()
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        (**self).push(pkt)
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        (**self).finish()
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        (**self).empty_report(window)
    }

    fn provisional(&self) -> Vec<WindowReport> {
        (**self).provisional()
    }
}

/// Tracks per-window video-packet counts for reporting.
#[derive(Debug, Clone, Default)]
struct ArrivalCounts {
    counts: BTreeMap<u64, usize>,
}

impl ArrivalCounts {
    fn bump(&mut self, window: u64) {
        *self.counts.entry(window).or_insert(0) += 1;
    }

    fn take(&mut self, window: u64) -> usize {
        self.counts.remove(&window).unwrap_or(0)
    }

    fn peek(&self, window: u64) -> usize {
        self.counts.get(&window).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Shared per-flow windowing state
// ---------------------------------------------------------------------------

/// Clock, window epoch, and safe-drain logic shared by the two heuristic
/// engines.
///
/// The window *indices* are absolute (window `w` always covers
/// `[w·W, (w+1)·W)` on the capture clock), but emission is **anchored at
/// the first packet the flow sees**: a flow first observed an hour into a
/// capture starts reporting at that hour's window instead of emitting
/// thousands of empty windows from t = 0. Replay fills any leading gap
/// explicitly, so batch outputs are unaffected.
struct HeuristicState {
    windower: QoeWindower,
    counts: ArrivalCounts,
    window_us: i64,
    clock: u64,
    started: bool,
    gap: GapGuard,
}

impl HeuristicState {
    fn new(config: EngineConfig) -> Self {
        HeuristicState {
            windower: QoeWindower::new(config.window_secs),
            counts: ArrivalCounts::default(),
            window_us: config.window_us(),
            clock: 0,
            started: false,
            gap: GapGuard::default(),
        }
    }

    /// Window index for a timestamp, or `None` for negative timestamps
    /// (outside every window).
    fn window_of(&self, ts: Timestamp) -> Option<u64> {
        let us = ts.as_micros();
        (us >= 0).then(|| us.div_euclid(self.window_us) as u64)
    }

    /// Classifies a packet's window against the bounded emission gap
    /// ([`MAX_WINDOW_GAP`]): process, quarantine-drop, or re-anchor.
    fn gap_check(&mut self, w: u64) -> GapVerdict {
        self.gap.check(self.clock, self.started, w)
    }

    /// Skips across a discontinuity: drops pending arrival counts and
    /// re-anchors emission at `w`. The caller must seal its assembler and
    /// flush via [`Self::drain_finish`] first.
    fn skip_to(&mut self, w: u64) {
        self.counts = ArrivalCounts::default();
        self.windower.skip_to(w);
        self.clock = w;
    }

    /// Advances the clock for one accepted packet in window `w`.
    fn observe(&mut self, w: u64) {
        if !self.started {
            self.started = true;
            self.windower.start_at(w);
            self.clock = w;
        }
        self.clock = self.clock.max(w);
    }

    /// Emits every window that is final: arrivals have moved past it and
    /// no still-open frame (bounded below by `min_open_end`) could seal
    /// into it.
    fn drain_safe(&mut self, min_open_end: Option<Timestamp>) -> Vec<(u64, QoeEstimate)> {
        let open_bound = min_open_end
            .and_then(|ts| self.windower.window_of(ts))
            .unwrap_or(self.clock);
        self.windower.drain_until(self.clock.min(open_bound))
    }

    /// Emits everything through the last arrival window and the last
    /// window holding a frame (end of stream).
    fn drain_finish(&mut self) -> Vec<(u64, QoeEstimate)> {
        if !self.started {
            return Vec::new();
        }
        let through = (self.clock + 1).max(self.windower.last_open_window().map_or(0, |w| w + 1));
        self.windower.drain_until(through)
    }

    fn report(&mut self, method: Method, window: u64, estimate: QoeEstimate) -> WindowReport {
        WindowReport {
            window,
            method,
            estimate: Some(estimate),
            features: None,
            model_fps: None,
            video_packets: self.counts.take(window),
        }
    }

    fn empty_report(&self, method: Method, window: u64) -> WindowReport {
        WindowReport {
            window,
            method,
            estimate: Some(self.windower.empty_estimate()),
            features: None,
            model_fps: None,
            video_packets: 0,
        }
    }

    /// Snapshots every pending window (`next emission ..= clock`) without
    /// consuming anything: frames still open in the assembler are not
    /// included, so the estimates are lower bounds.
    fn provisional(&self, method: Method) -> Vec<WindowReport> {
        if !self.started {
            return Vec::new();
        }
        (self.windower.next_window()..=self.clock)
            .map(|w| WindowReport {
                window: w,
                method,
                estimate: Some(self.windower.peek(w)),
                features: None,
                model_fps: None,
                video_packets: self.counts.peek(w),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Heuristic engines (shared driver over two frame sources)
// ---------------------------------------------------------------------------

/// What a heuristic engine's frame assembly must provide; implemented by
/// the two classification+assembler pairings so the (subtle) push/finish
/// orchestration exists exactly once in [`HeuristicDriver`].
trait FrameSource {
    /// Classifies one packet and, for video, feeds the assembler.
    /// Returns `None` for non-video packets, `Some(sealed frames)` for
    /// video packets.
    fn accept(&mut self, pkt: &TracePacket) -> Option<Vec<(u64, Frame)>>;

    /// Seals every open frame (end of stream or discontinuity).
    fn seal_all(&mut self) -> Vec<(u64, Frame)>;

    /// Earliest end time any open frame can still finalize with.
    fn min_open_end(&self) -> Option<Timestamp>;
}

/// The shared heuristic state machine: gap quarantine, window clock,
/// frame offering, and safe/final draining.
struct HeuristicDriver<S> {
    source: S,
    state: HeuristicState,
    method: Method,
}

impl<S: FrameSource> HeuristicDriver<S> {
    fn new(config: EngineConfig, method: Method, source: S) -> Self {
        HeuristicDriver {
            source,
            state: HeuristicState::new(config),
            method,
        }
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        let Some(w) = self.state.window_of(pkt.ts) else {
            return Vec::new();
        };
        let mut flushed = Vec::new();
        match self.state.gap_check(w) {
            GapVerdict::Drop => return Vec::new(),
            GapVerdict::Reanchor => {
                // Flush everything pending before jumping: report
                // construction must precede skip_to so window counts are
                // consumed at their own indices.
                for (id, frame) in self.source.seal_all() {
                    self.state.windower.offer(id, &frame);
                }
                let method = self.method;
                flushed = self
                    .state
                    .drain_finish()
                    .into_iter()
                    .map(|(dw, e)| self.state.report(method, dw, e))
                    .collect();
                self.state.skip_to(w);
            }
            GapVerdict::Normal => {}
        }
        self.state.observe(w);
        if let Some(sealed) = self.source.accept(pkt) {
            self.state.counts.bump(w);
            for (id, frame) in sealed {
                self.state.windower.offer(id, &frame);
            }
        }
        let method = self.method;
        let min_open_end = self.source.min_open_end();
        flushed.extend(
            self.state
                .drain_safe(min_open_end)
                .into_iter()
                .map(|(w, e)| self.state.report(method, w, e)),
        );
        flushed
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        for (id, frame) in self.source.seal_all() {
            self.state.windower.offer(id, &frame);
        }
        let method = self.method;
        self.state
            .drain_finish()
            .into_iter()
            .map(|(w, e)| self.state.report(method, w, e))
            .collect()
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.state.empty_report(self.method, window)
    }

    fn provisional(&self) -> Vec<WindowReport> {
        self.state.provisional(self.method)
    }
}

/// Size-threshold classification feeding Algorithm 1.
struct IpUdpSource {
    classifier: MediaClassifier,
    assembler: IpUdpAssembler,
}

impl FrameSource for IpUdpSource {
    fn accept(&mut self, pkt: &TracePacket) -> Option<Vec<(u64, Frame)>> {
        if !self.classifier.is_video(pkt) {
            return None;
        }
        let (_, sealed) = self.assembler.push(pkt.ts, pkt.size);
        Some(sealed)
    }

    fn seal_all(&mut self) -> Vec<(u64, Frame)> {
        self.assembler.finish()
    }

    fn min_open_end(&self) -> Option<Timestamp> {
        self.assembler.min_open_end()
    }
}

/// Payload-type classification feeding RTP timestamp/marker grouping.
struct RtpSource {
    payload_map: PayloadMap,
    assembler: RtpAssembler,
}

impl FrameSource for RtpSource {
    fn accept(&mut self, pkt: &TracePacket) -> Option<Vec<(u64, Frame)>> {
        let h = pkt
            .rtp
            .filter(|h| self.payload_map.classify(h.payload_type) == Some(MediaKind::Video))?;
        Some(self.assembler.push(pkt.ts, h.timestamp, h.marker, pkt.size))
    }

    fn seal_all(&mut self) -> Vec<(u64, Frame)> {
        self.assembler.finish()
    }

    fn min_open_end(&self) -> Option<Timestamp> {
        self.assembler.min_open_end()
    }
}

/// Streaming IP/UDP Heuristic: size-threshold media classification,
/// incremental Algorithm 1, per-window QoE estimation.
pub struct IpUdpHeuristicEngine {
    driver: HeuristicDriver<IpUdpSource>,
}

impl IpUdpHeuristicEngine {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        IpUdpHeuristicEngine {
            driver: HeuristicDriver::new(
                config,
                Method::IpUdpHeuristic,
                IpUdpSource {
                    classifier: MediaClassifier::new(config.vmin),
                    assembler: IpUdpAssembler::new(config.heuristic),
                },
            ),
        }
    }
}

impl QoeEstimator for IpUdpHeuristicEngine {
    fn method(&self) -> Method {
        Method::IpUdpHeuristic
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        self.driver.push(pkt)
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        self.driver.finish()
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.driver.empty_report(window)
    }

    fn provisional(&self) -> Vec<WindowReport> {
        self.driver.provisional()
    }
}

/// Streaming RTP Heuristic: payload-type media classification, incremental
/// timestamp/marker frame grouping, per-window QoE estimation.
pub struct RtpHeuristicEngine {
    driver: HeuristicDriver<RtpSource>,
}

impl RtpHeuristicEngine {
    /// Creates an engine; the payload map supplies PT→media classification.
    pub fn new(config: EngineConfig, payload_map: PayloadMap) -> Self {
        RtpHeuristicEngine {
            driver: HeuristicDriver::new(
                config,
                Method::RtpHeuristic,
                RtpSource {
                    payload_map,
                    assembler: RtpAssembler::new(),
                },
            ),
        }
    }
}

impl QoeEstimator for RtpHeuristicEngine {
    fn method(&self) -> Method {
        Method::RtpHeuristic
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        self.driver.push(pkt)
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        self.driver.finish()
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.driver.empty_report(window)
    }

    fn provisional(&self) -> Vec<WindowReport> {
        self.driver.provisional()
    }
}

/// Window clock shared by the two ML engines: first-packet anchoring,
/// bounded gap emission, and the advance/finish bookkeeping.
struct MlWindowClock {
    window_us: i64,
    current: u64,
    started: bool,
    gap: GapGuard,
}

impl MlWindowClock {
    fn new(config: EngineConfig) -> Self {
        MlWindowClock {
            window_us: config.window_us(),
            current: 0,
            started: false,
            gap: GapGuard::default(),
        }
    }

    /// Accepts one packet timestamp. Returns the (bounded) range of
    /// window indices to finalize before accumulating the packet, or
    /// `None` when the packet must be dropped (negative timestamp, or a
    /// quarantined far-future jump — see [`MAX_WINDOW_GAP`]). A
    /// corroborated discontinuity finalizes only the in-progress window,
    /// then skips to the new window without per-window reports.
    fn advance(&mut self, ts: Timestamp) -> Option<std::ops::Range<u64>> {
        let us = ts.as_micros();
        if us < 0 {
            return None;
        }
        let w = us.div_euclid(self.window_us) as u64;
        if !self.started {
            self.started = true;
            self.current = w;
            return Some(w..w);
        }
        match self.gap.check(self.current, self.started, w) {
            GapVerdict::Drop => None,
            GapVerdict::Reanchor => {
                let emit = self.current..self.current + 1;
                self.current = w;
                Some(emit)
            }
            GapVerdict::Normal => {
                let emit = self.current..w.max(self.current);
                self.current = w.max(self.current);
                Some(emit)
            }
        }
    }

    /// The window to finalize at end of stream, if any packet was seen.
    fn finish(&mut self) -> Option<u64> {
        self.started.then(|| {
            let w = self.current;
            self.current += 1;
            w
        })
    }

    /// The window currently accumulating, if any packet was seen.
    fn in_progress(&self) -> Option<u64> {
        self.started.then_some(self.current)
    }
}

// ---------------------------------------------------------------------------
// IP/UDP ML
// ---------------------------------------------------------------------------

/// Streaming IP/UDP ML feature extraction (+ optional model inference):
/// the 14-feature vector per window, computed incrementally.
pub struct IpUdpMlEngine {
    classifier: MediaClassifier,
    acc: IpUdpFeatureAcc,
    /// The (constant) feature vector of an empty window, derived once
    /// from a pristine accumulator so the formulas stay single-sourced.
    empty_features: Vec<f64>,
    window_secs: f64,
    clock: MlWindowClock,
    model: Option<RandomForest>,
}

impl IpUdpMlEngine {
    /// Creates an engine from a configuration.
    pub fn new(config: EngineConfig) -> Self {
        let window_secs = f64::from(config.window_secs);
        IpUdpMlEngine {
            classifier: MediaClassifier::new(config.vmin),
            acc: IpUdpFeatureAcc::new(config.stats, config.theta_iat_us),
            empty_features: IpUdpFeatureAcc::new(config.stats, config.theta_iat_us)
                .features(window_secs),
            window_secs,
            clock: MlWindowClock::new(config),
            model: None,
        }
    }

    /// Attaches a trained frame-rate model; its prediction is included in
    /// every report.
    pub fn with_model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    fn emit_window(&mut self, window: u64) -> WindowReport {
        let report = self.snapshot_window(window);
        self.acc.reset();
        report
    }

    fn snapshot_window(&self, window: u64) -> WindowReport {
        let features = self.acc.features(self.window_secs);
        WindowReport {
            window,
            method: Method::IpUdpMl,
            estimate: None,
            model_fps: self.model.as_ref().map(|m| m.predict(&features)),
            video_packets: self.acc.packets() as usize,
            features: Some(features),
        }
    }
}

impl QoeEstimator for IpUdpMlEngine {
    fn method(&self) -> Method {
        Method::IpUdpMl
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        let Some(emit) = self.clock.advance(pkt.ts) else {
            return Vec::new();
        };
        let out = emit.map(|w| self.emit_window(w)).collect();
        if self.classifier.is_video(pkt) {
            self.acc.push(pkt.ts, pkt.size);
        }
        out
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        match self.clock.finish() {
            Some(w) => vec![self.emit_window(w)],
            None => Vec::new(),
        }
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        WindowReport {
            window,
            method: Method::IpUdpMl,
            estimate: None,
            features: Some(self.empty_features.clone()),
            model_fps: None,
            video_packets: 0,
        }
    }

    fn provisional(&self) -> Vec<WindowReport> {
        match self.clock.in_progress() {
            Some(w) => vec![self.snapshot_window(w)],
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// RTP ML
// ---------------------------------------------------------------------------

/// Streaming RTP ML feature extraction (+ optional model inference): the
/// 12 flow features over PT-classified video packets plus the 12 RTP
/// features, computed incrementally per window.
pub struct RtpMlEngine {
    payload_map: PayloadMap,
    flow: FlowFeatureAcc,
    rtp: RtpWindowAcc,
    lag_ref: Option<LagReference>,
    /// The (constant) feature vector of an empty window.
    empty_features: Vec<f64>,
    window_secs: f64,
    clock: MlWindowClock,
    video_packets: usize,
    model: Option<RandomForest>,
}

impl RtpMlEngine {
    /// Creates an engine; the payload map supplies PT→media classification.
    pub fn new(config: EngineConfig, payload_map: PayloadMap) -> Self {
        let window_secs = f64::from(config.window_secs);
        // An empty window's features are lag-ref independent (no frames
        // means no lags), so one pristine-accumulator evaluation covers
        // every empty report.
        let mut empty_features = FlowFeatureAcc::new(config.stats).features(window_secs);
        empty_features.extend(RtpWindowAcc::new().features(None));
        RtpMlEngine {
            payload_map,
            flow: FlowFeatureAcc::new(config.stats),
            rtp: RtpWindowAcc::new(),
            lag_ref: None,
            empty_features,
            window_secs,
            clock: MlWindowClock::new(config),
            video_packets: 0,
            model: None,
        }
    }

    /// Attaches a trained frame-rate model.
    pub fn with_model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    fn emit_window(&mut self, window: u64) -> WindowReport {
        let report = self.snapshot_window(window);
        self.flow.reset();
        self.rtp.reset();
        self.video_packets = 0;
        report
    }

    fn snapshot_window(&self, window: u64) -> WindowReport {
        let mut features = self.flow.features(self.window_secs);
        features.extend(self.rtp.features(self.lag_ref));
        WindowReport {
            window,
            method: Method::RtpMl,
            estimate: None,
            model_fps: self.model.as_ref().map(|m| m.predict(&features)),
            video_packets: self.video_packets,
            features: Some(features),
        }
    }
}

impl QoeEstimator for RtpMlEngine {
    fn method(&self) -> Method {
        Method::RtpMl
    }

    fn push(&mut self, pkt: &TracePacket) -> Vec<WindowReport> {
        let Some(emit) = self.clock.advance(pkt.ts) else {
            return Vec::new();
        };
        let out = emit.map(|w| self.emit_window(w)).collect();
        if let Some(h) = pkt.rtp {
            match self.payload_map.classify(h.payload_type) {
                Some(MediaKind::Video) => {
                    // The lag clock anchors at the session's first video
                    // packet ("we assume that the first frame had zero
                    // delay", §3.3).
                    self.lag_ref.get_or_insert(LagReference {
                        t0: pkt.ts,
                        ts0: h.timestamp,
                    });
                    self.flow.push(pkt.ts, pkt.size);
                    self.rtp.push_video(pkt.ts, &h);
                    self.video_packets += 1;
                }
                Some(MediaKind::VideoRtx) => self.rtp.push_rtx(pkt.ts, &h),
                _ => {}
            }
        }
        out
    }

    fn finish(&mut self) -> Vec<WindowReport> {
        match self.clock.finish() {
            Some(w) => vec![self.emit_window(w)],
            None => Vec::new(),
        }
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        WindowReport {
            window,
            method: Method::RtpMl,
            estimate: None,
            features: Some(self.empty_features.clone()),
            model_fps: None,
            video_packets: 0,
        }
    }

    fn provisional(&self) -> Vec<WindowReport> {
        match self.clock.in_progress() {
            Some(w) => vec![self.snapshot_window(w)],
            None => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Replay (batch = streaming)
// ---------------------------------------------------------------------------

/// Replays a trace through an engine and returns exactly
/// `ceil(duration / window_secs)` reports: the batch evaluation as a thin
/// layer over the streaming path. Windows past the end of the stream are
/// padded with [`QoeEstimator::empty_report`]; windows past the nominal
/// duration are dropped (they carry no ground truth).
pub fn replay<E: QoeEstimator + ?Sized>(
    engine: &mut E,
    trace: &Trace,
    window_secs: u32,
) -> Vec<WindowReport> {
    replay_packets(engine, &trace.packets, trace.duration_secs, window_secs)
}

/// [`replay`] over a raw packet list with an explicit nominal duration.
pub fn replay_packets<E: QoeEstimator + ?Sized>(
    engine: &mut E,
    packets: &[TracePacket],
    duration_secs: u32,
    window_secs: u32,
) -> Vec<WindowReport> {
    assert!(window_secs > 0, "zero window");
    let mut reports = Vec::new();
    for p in packets {
        reports.extend(engine.push(p));
    }
    reports.extend(engine.finish());
    place_windows(engine, reports, duration_secs, window_secs)
}

/// Aligns a finished engine's reports onto the nominal duration grid:
/// engines are anchored at their first packet's window, so each report
/// lands at its absolute index, leading/trailing gaps are padded with
/// [`QoeEstimator::empty_report`], and windows past the nominal duration
/// are dropped (they carry no ground truth). The placement half of
/// [`replay_packets`], shared with source-driven replays
/// ([`crate::pipeline::build_samples`] streams a [`crate::source::ReplaySource`]
/// through several engines at once and places each engine's reports
/// through here).
pub fn place_windows<E: QoeEstimator + ?Sized>(
    engine: &E,
    reports: Vec<WindowReport>,
    duration_secs: u32,
    window_secs: u32,
) -> Vec<WindowReport> {
    assert!(window_secs > 0, "zero window");
    let n = duration_secs.div_ceil(window_secs) as usize;
    let mut slots: Vec<Option<WindowReport>> = (0..n).map(|_| None).collect();
    for r in reports {
        let w = r.window as usize;
        if w < n {
            debug_assert!(slots[w].is_none(), "duplicate report for window {w}");
            slots[w] = Some(r);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(w, slot)| slot.unwrap_or_else(|| engine.empty_report(w as u64)))
        .collect()
}

// ---------------------------------------------------------------------------
// FlowTable
// ---------------------------------------------------------------------------

/// A sharded, flow-keyed table of per-flow estimators: one process
/// monitoring many concurrent VCA calls.
///
/// Packets are routed by canonical UDP 5-tuple to a per-flow engine
/// created on first sight by the factory. Shards bound rehash cost and
/// give each a smaller, cache-friendlier map (and are the unit a future
/// multi-threaded monitor would pin to cores). Idle flows are evicted —
/// flushing their final windows — so memory is O(active flows), each
/// O(window content) ([`StatsMode::Sketch`]: O(1)).
pub struct FlowTable<E: QoeEstimator> {
    shards: Vec<HashMap<FlowKey, FlowEntry<E>>>,
    factory: Box<dyn FnMut(&FlowKey) -> E + Send>,
    idle_timeout_us: i64,
}

struct FlowEntry<E> {
    engine: E,
    last_seen: Timestamp,
}

impl<E: QoeEstimator> FlowTable<E> {
    /// Creates a table with `n_shards` shards (≥ 1), a per-flow engine
    /// factory, and an idle timeout after which flows are evictable.
    pub fn new(
        n_shards: usize,
        idle_timeout: Timestamp,
        factory: impl FnMut(&FlowKey) -> E + Send + 'static,
    ) -> Self {
        assert!(n_shards >= 1, "zero shards");
        assert!(idle_timeout.as_micros() > 0, "non-positive idle timeout");
        FlowTable {
            shards: (0..n_shards).map(|_| HashMap::new()).collect(),
            factory: Box::new(factory),
            idle_timeout_us: idle_timeout.as_micros(),
        }
    }

    fn shard_of(&self, key: &FlowKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Inserts a pre-built engine for `key`, replacing any existing one.
    /// The facade uses this when engine selection depends on more than the
    /// flow key (RTP-confidence probation); plain [`Self::push`] creation
    /// goes through the factory.
    pub fn insert(&mut self, key: FlowKey, engine: E, last_seen: Timestamp) {
        let shard = self.shard_of(&key);
        self.shards[shard].insert(key, FlowEntry { engine, last_seen });
    }

    /// Mutable access to a flow's engine, if tracked.
    pub fn get_mut(&mut self, key: &FlowKey) -> Option<&mut E> {
        let shard = self.shard_of(key);
        self.shards[shard].get_mut(key).map(|e| &mut e.engine)
    }

    /// Removes a flow's engine without finishing it; the caller owns any
    /// remaining flush.
    pub fn remove(&mut self, key: &FlowKey) -> Option<E> {
        let shard = self.shard_of(key);
        self.shards[shard].remove(key).map(|e| e.engine)
    }

    /// Routes one packet to its flow's engine (creating it on first
    /// sight) and returns that flow's finalized windows.
    pub fn push(&mut self, key: FlowKey, pkt: &TracePacket) -> Vec<WindowReport> {
        let shard = self.shard_of(&key);
        let entry = self.shards[shard].entry(key).or_insert_with(|| FlowEntry {
            engine: (self.factory)(&key),
            last_seen: pkt.ts,
        });
        // Advance `last_seen` by at most one idle timeout per packet: a
        // corrupt far-future timestamp (which the engine quarantines)
        // then delays eviction by at most one timeout instead of marking
        // a healthy flow as "from the future" and getting it evicted —
        // or, with a plain max, pinning it forever.
        let bound = Timestamp::from_micros(
            entry
                .last_seen
                .as_micros()
                .saturating_add(self.idle_timeout_us),
        );
        entry.last_seen = entry.last_seen.max(pkt.ts.min(bound));
        entry.engine.push(pkt)
    }

    /// Evicts flows idle longer than the timeout at `now`, flushing each
    /// evicted flow's remaining windows.
    pub fn evict_idle(&mut self, now: Timestamp) -> Vec<(FlowKey, Vec<WindowReport>)> {
        let deadline = now.as_micros() - self.idle_timeout_us;
        // A flow whose last packet claims to be from far in the future
        // relative to `now` carries a corrupt timestamp; reclaim it too
        // rather than letting it pin memory forever.
        let future_bound = now.as_micros().saturating_add(self.idle_timeout_us);
        let mut out = Vec::new();
        for shard in &mut self.shards {
            let stale: Vec<FlowKey> = shard
                .iter()
                .filter(|(_, e)| {
                    e.last_seen.as_micros() < deadline || e.last_seen.as_micros() > future_bound
                })
                .map(|(k, _)| *k)
                .collect();
            for key in stale {
                let mut entry = shard.remove(&key).expect("key listed above");
                out.push((key, entry.engine.finish()));
            }
        }
        out
    }

    /// Finishes every flow (end of capture), returning each flow's
    /// remaining windows.
    pub fn finish_all(mut self) -> Vec<(FlowKey, Vec<WindowReport>)> {
        self.drain_finish_all()
    }

    /// [`Self::finish_all`] without consuming the table: drains and
    /// finishes every flow in place, leaving the table empty but
    /// reusable. This is the shape a shard worker needs — it owns its
    /// table inside long-lived state and seals flows at end of stream
    /// without moving out of itself.
    pub fn drain_finish_all(&mut self) -> Vec<(FlowKey, Vec<WindowReport>)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            for (key, mut entry) in shard.drain() {
                out.push((key, entry.engine.finish()));
            }
        }
        out.sort_by_key(|(k, _)| (k.addr_a, k.port_a, k.addr_b, k.port_b));
        out
    }

    /// Visits every tracked flow's engine mutably, in unspecified order
    /// (the facade's forced provisional flush walks all flows at once).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(&FlowKey, &mut E)) {
        for shard in &mut self.shards {
            for (key, entry) in shard.iter_mut() {
                f(key, &mut entry.engine);
            }
        }
    }

    /// Number of currently tracked flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// True when no flow is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Flows per shard (for load-balance inspection).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(HashMap::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::IpUdpHeuristic;
    use crate::qoe::estimate_windows;
    use std::net::{IpAddr, Ipv4Addr};
    use vcaml_features::{ipudp_features, windows_by_second, PktObs};

    fn config() -> EngineConfig {
        EngineConfig::paper(VcaKind::Teams)
    }

    fn pkt(us: i64, size: u16) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_micros(us),
            size,
            rtp: None,
            truth_media: None,
        }
    }

    /// 30 fps, two equal-size packets per frame with per-frame size
    /// variation so boundaries are detectable, plus audio in between.
    fn synthetic_stream(secs: i64) -> Vec<TracePacket> {
        let mut out = Vec::new();
        for f in 0..secs * 30 {
            let t0 = f * 33_333;
            let size = 1000 + ((f % 9) * 13) as u16;
            out.push(pkt(t0, size));
            out.push(pkt(t0 + 300, size));
            out.push(pkt(t0 + 10_000, 150)); // audio (filtered out)
        }
        out.sort_by_key(|p| p.ts);
        out
    }

    fn run<E: QoeEstimator>(engine: &mut E, packets: &[TracePacket]) -> Vec<WindowReport> {
        let mut reports = Vec::new();
        for p in packets {
            reports.extend(engine.push(p));
        }
        reports.extend(engine.finish());
        reports
    }

    #[test]
    fn heuristic_engine_windows_are_consecutive() {
        let stream = synthetic_stream(5);
        let reports = run(&mut IpUdpHeuristicEngine::new(config()), &stream);
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window, i as u64);
            assert_eq!(r.method, Method::IpUdpHeuristic);
        }
    }

    #[test]
    fn heuristic_engine_matches_batch_exactly() {
        let stream = synthetic_stream(4);
        let reports = run(&mut IpUdpHeuristicEngine::new(config()), &stream);
        // Independent batch path: classify, assemble the whole trace,
        // bucket frames by end time.
        let video: Vec<(Timestamp, u16)> = stream
            .iter()
            .filter(|p| p.size >= crate::media::DEFAULT_VMIN)
            .map(|p| (p.ts, p.size))
            .collect();
        let (frames, _) = IpUdpHeuristic::new(config().heuristic).assemble(&video);
        let batch = estimate_windows(&frames, 4, 1);
        assert_eq!(reports.len(), batch.len());
        for (r, b) in reports.iter().zip(&batch) {
            assert_eq!(r.estimate.unwrap(), *b, "window {}", r.window);
        }
        for r in &reports {
            let fps = r.estimate.unwrap().fps;
            assert!((fps - 30.0).abs() <= 2.0, "fps {fps}");
        }
    }

    #[test]
    fn ml_engine_features_match_batch_slices() {
        let stream = synthetic_stream(3);
        let reports = run(&mut IpUdpMlEngine::new(config()), &stream);
        let video: Vec<PktObs> = stream
            .iter()
            .filter(|p| p.size >= crate::media::DEFAULT_VMIN)
            .map(|p| PktObs {
                ts: p.ts,
                size: p.size,
            })
            .collect();
        let windows = windows_by_second(&video, 3, 1);
        assert_eq!(reports.len(), 3);
        for (wi, r) in reports.iter().enumerate() {
            let batch = ipudp_features(&windows[wi], 1.0, config().theta_iat_us);
            assert_eq!(r.features.as_deref().unwrap(), &batch[..], "window {wi}");
        }
    }

    #[test]
    fn idle_gap_emits_empty_windows() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        engine.push(&pkt(100_000, 1100));
        let reports = engine.push(&pkt(3_100_000, 1100));
        // The second packet matches the open frame (same size within Δ),
        // pulling its end into window 3 — exactly what the batch
        // assembler does — so windows 0..=2 are all final and empty.
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].video_packets, 1); // arrival count stays put
        for r in &reports {
            assert_eq!(r.estimate.unwrap().fps, 0.0);
        }
    }

    #[test]
    fn negative_timestamps_dropped() {
        let mut engine = IpUdpMlEngine::new(config());
        assert!(engine.push(&pkt(-5_000, 1100)).is_empty());
        let reports = run(&mut engine, &synthetic_stream(1));
        assert_eq!(reports.len(), 1);
        // The negative-time packet contributed nothing.
        assert_eq!(reports[0].video_packets, 60);
    }

    #[test]
    fn assembler_memory_stays_bounded() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        // An hour of adversarial all-distinct sizes.
        for i in 0..200_000i64 {
            let size = 450 + (i % 900) as u16;
            engine.push(&pkt(i * 18_000, size));
        }
        assert!(engine.driver.source.assembler.open_frames() <= config().heuristic.lookback + 1);
    }

    #[test]
    fn late_flow_anchors_at_first_packet_window() {
        // A flow first seen an hour into the capture must not flood the
        // caller with ~3600 empty windows.
        let hour_us = 3_600i64 * 1_000_000;
        let mut heur = IpUdpHeuristicEngine::new(config());
        assert!(heur.push(&pkt(hour_us + 1_000, 1100)).is_empty());
        // Two more non-matching packets seal the first frame (lookback 2),
        // making window 3600 final — and only then is it emitted.
        assert!(heur.push(&pkt(hour_us + 1_100_000, 1000)).is_empty());
        let reports = heur.push(&pkt(hour_us + 1_200_000, 900));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 3_600);

        let mut ml = IpUdpMlEngine::new(config());
        assert!(ml.push(&pkt(hour_us + 1_000, 1100)).is_empty());
        let reports = ml.push(&pkt(hour_us + 1_100_000, 1000));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 3_600);
        let tail = ml.finish();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].window, 3_601);
    }

    #[test]
    fn corrupt_timestamp_dropped_and_engine_recovers() {
        // A single packet with an absurd timestamp (a mangled pcap
        // record) is quarantined — no window flood, and the flow keeps
        // reporting correctly once sane packets resume.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut clean = IpUdpHeuristicEngine::new(config());
        let mut dirty = IpUdpHeuristicEngine::new(config());
        let stream = synthetic_stream(4);
        let mut clean_reports = Vec::new();
        let mut dirty_reports = Vec::new();
        for (i, p) in stream.iter().enumerate() {
            if i == stream.len() / 2 {
                // The corrupt packet is dropped, emitting nothing.
                assert!(dirty.push(&pkt(year_us, 800)).is_empty());
            }
            clean_reports.extend(clean.push(p));
            dirty_reports.extend(dirty.push(p));
        }
        clean_reports.extend(clean.finish());
        dirty_reports.extend(dirty.finish());
        assert_eq!(clean_reports.len(), dirty_reports.len());
        for (c, d) in clean_reports.iter().zip(&dirty_reports) {
            assert_eq!(c.window, d.window);
            assert_eq!(c.estimate.unwrap(), d.estimate.unwrap());
        }

        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(0, 1100));
        assert!(ml.push(&pkt(year_us, 800)).is_empty(), "outlier dropped");
        // Sane traffic continues in the original epoch.
        let reports = ml.push(&pkt(1_100_000, 1000));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 0);
    }

    #[test]
    fn corrupt_first_timestamp_recovers_backward() {
        // A mangled timestamp on the very first packet anchors the flow
        // at a bogus epoch; sane traffic "in the past" must quarantine
        // that epoch and re-anchor backward instead of being silently
        // dropped forever.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut heur = IpUdpHeuristicEngine::new(config());
        heur.push(&pkt(year_us, 800));
        let stream = synthetic_stream(3);
        let mut reports = Vec::new();
        for p in &stream {
            reports.extend(heur.push(p));
        }
        reports.extend(heur.finish());
        // Windows 0..=2 of the sane epoch come out (the corrupt epoch's
        // lone frame flushes at a far-future index and is discarded here).
        let sane: Vec<_> = reports.iter().filter(|r| r.window < 10).collect();
        assert_eq!(sane.len(), 3, "sane windows: {reports:?}");
        for r in &sane {
            let fps = r.estimate.unwrap().fps;
            assert!(r.window >= 1 || fps > 0.0 || r.video_packets > 0);
        }

        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(year_us, 800));
        let mut reports = Vec::new();
        for p in &stream {
            reports.extend(ml.push(p));
        }
        reports.extend(ml.finish());
        let sane: Vec<_> = reports.iter().filter(|r| r.window < 10).collect();
        assert_eq!(sane.len(), 3, "sane ML windows");
        assert!(sane.iter().all(|r| r.video_packets > 0));
    }

    #[test]
    fn corroborated_discontinuity_reanchors() {
        // Several packets agreeing on a far-future epoch constitute a
        // genuine capture discontinuity: the engine flushes, skips the
        // gap without per-window reports, and resumes at the new epoch.
        // Two hours exceeds MAX_WINDOW_GAP (4096 one-second windows).
        let jump_us = 2 * 3_600i64 * 1_000_000;
        let mut ml = IpUdpMlEngine::new(config());
        ml.push(&pkt(0, 1100));
        assert!(ml.push(&pkt(jump_us, 1000)).is_empty());
        assert!(ml.push(&pkt(jump_us + 1_000, 1000)).is_empty());
        let reports = ml.push(&pkt(jump_us + 2_000, 1000));
        // The corroborating packet finalizes the old in-progress window…
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window, 0);
        // …and emission resumes at the new epoch.
        let tail = ml.finish();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].window, 7_200);
    }

    #[test]
    fn replay_fills_leading_gap_with_empty_windows() {
        // First packet lands in window 3: replay still returns windows
        // 0..n with empty reports up front.
        let packets = vec![
            pkt(3_100_000, 1100),
            pkt(3_200_000, 1000),
            pkt(3_300_000, 900),
        ];
        let reports = replay_packets(&mut IpUdpMlEngine::new(config()), &packets, 5, 1);
        assert_eq!(reports.len(), 5);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.window, i as u64);
        }
        assert_eq!(reports[0].video_packets, 0);
        assert_eq!(reports[3].video_packets, 3);
        // Leading empties equal the engine's own empty-window vector.
        let empty = IpUdpMlEngine::new(config()).empty_report(0);
        assert_eq!(reports[0].features, empty.features);
    }

    #[test]
    fn replay_pads_and_truncates_to_duration() {
        let mut engine = IpUdpHeuristicEngine::new(config());
        let reports = replay_packets(&mut engine, &synthetic_stream(2), 6, 1);
        assert_eq!(reports.len(), 6);
        assert!(reports[5].video_packets == 0);
        let mut engine = IpUdpMlEngine::new(config());
        let reports = replay_packets(&mut engine, &synthetic_stream(4), 2, 1);
        assert_eq!(reports.len(), 2);
    }

    fn flow_key(n: u8) -> FlowKey {
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, 0, n));
        let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
        FlowKey::canonical(server, 3478, client, 50_000 + u16::from(n), 17).0
    }

    #[test]
    fn flow_table_separates_interleaved_flows() {
        // Flow 1: the synthetic stream. Flow 2: the same shape shifted in
        // size so its windows differ.
        let a = synthetic_stream(3);
        let b: Vec<TracePacket> = a
            .iter()
            .map(|p| pkt(p.ts.as_micros() + 7, p.size.saturating_add(200)))
            .collect();
        let mut feed: Vec<(FlowKey, TracePacket)> = a
            .iter()
            .map(|p| (flow_key(1), *p))
            .chain(b.iter().map(|p| (flow_key(2), *p)))
            .collect();
        feed.sort_by_key(|(_, p)| p.ts);

        let mut table = FlowTable::new(4, Timestamp::from_secs(60), |_: &FlowKey| {
            IpUdpHeuristicEngine::new(config())
        });
        let mut per_flow: std::collections::HashMap<FlowKey, Vec<WindowReport>> =
            std::collections::HashMap::new();
        for (key, p) in &feed {
            per_flow
                .entry(*key)
                .or_default()
                .extend(table.push(*key, p));
        }
        assert_eq!(table.len(), 2);
        for (key, rest) in table.finish_all() {
            per_flow.entry(key).or_default().extend(rest);
        }

        // Each flow's reports equal a solo run of the same packets.
        let solo_a = run(&mut IpUdpHeuristicEngine::new(config()), &a);
        let solo_b = run(&mut IpUdpHeuristicEngine::new(config()), &b);
        for (solo, key) in [(&solo_a, flow_key(1)), (&solo_b, flow_key(2))] {
            let got = &per_flow[&key];
            assert_eq!(got.len(), solo.len());
            for (g, s) in got.iter().zip(solo.iter()) {
                assert_eq!(g.window, s.window);
                assert_eq!(g.estimate.unwrap(), s.estimate.unwrap());
            }
        }
    }

    #[test]
    fn flow_table_evicts_idle_flows() {
        let mut table = FlowTable::new(2, Timestamp::from_secs(5), |_: &FlowKey| {
            IpUdpHeuristicEngine::new(config())
        });
        table.push(flow_key(1), &pkt(0, 1100));
        table.push(flow_key(2), &pkt(9_000_000, 1100));
        assert_eq!(table.len(), 2);
        let evicted = table.evict_idle(Timestamp::from_secs(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, flow_key(1));
        assert!(!evicted[0].1.is_empty(), "eviction flushes final windows");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn flow_table_shards_spread_load() {
        let mut table = FlowTable::new(8, Timestamp::from_secs(60), |_: &FlowKey| {
            IpUdpMlEngine::new(config())
        });
        for n in 0..64 {
            table.push(flow_key(n), &pkt(0, 1100));
        }
        assert_eq!(table.len(), 64);
        assert_eq!(table.shard_count(), 8);
        let loads = table.shard_loads();
        assert!(
            loads.iter().filter(|&&l| l > 0).count() >= 4,
            "loads {loads:?}"
        );
    }

    #[test]
    fn rtp_engines_consume_rtp_stream() {
        use vcaml_rtp::{PayloadMap, RtpHeader};
        let map = PayloadMap::lab(VcaKind::Teams);
        let mut packets = Vec::new();
        for f in 0..60i64 {
            let t0 = f * 33_333;
            let size = 1100u16;
            for i in 0..2u16 {
                packets.push(TracePacket {
                    ts: Timestamp::from_micros(t0 + i64::from(i) * 300),
                    size,
                    rtp: Some(RtpHeader::basic(
                        102,
                        (f * 2) as u16 + i,
                        (f * 3000) as u32,
                        1,
                        i == 1,
                    )),
                    truth_media: None,
                });
            }
        }
        let mut heur = RtpHeuristicEngine::new(config(), map);
        let reports = run(&mut heur, &packets);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let fps = r.estimate.unwrap().fps;
            assert!((fps - 30.0).abs() <= 1.0, "fps {fps}");
        }
        let mut ml = RtpMlEngine::new(config(), map);
        let reports = run(&mut ml, &packets);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            let f = r.features.as_deref().unwrap();
            assert_eq!(f.len(), 24);
            // ~30 unique video timestamps per second (±1 for the frame
            // straddling the window boundary).
            assert!((29.0..=31.0).contains(&f[12]), "unique ts {}", f[12]);
        }
    }
}
