//! Pull-based packet sources: where a monitor's packets come from.
//!
//! A [`PacketSource`] yields timestamped [`SourcePacket`]s — raw pcap
//! records, decoded captures, or pre-parsed flow-keyed packets — until
//! the stream ends. Sources are the input half of the pluggable I/O
//! layer (the output half is [`crate::sink`]); a
//! [`crate::runner::MonitorRunner`] drives any number of them, one
//! ingest thread each, into a single [`crate::api::Monitor`].
//!
//! Provided sources:
//!
//! * [`PcapFileSource`] — a classic libpcap capture (file or any
//!   `Read`), yielding raw records that the monitor parses and
//!   classifies itself;
//! * [`SyntheticSource`] — simulated VCA calls via `vcaml-vcasim`,
//!   remapped onto distinct client endpoints and interleaved in arrival
//!   order, like a tap on a mixed access link;
//! * [`ReplaySource`] — in-memory packets (captures, flow-keyed
//!   [`TracePacket`]s, or a recorded [`Trace`]), for tests, benches, and
//!   the batch pipeline;
//! * [`Paced`] — an adapter that replays any inner source in real time
//!   (or any speed multiple), sleeping until each packet's capture
//!   timestamp comes due.
//!
//! ```
//! use vcaml::source::{PacketSource, SyntheticSource};
//! use vcaml_rtp::VcaKind;
//!
//! let mut source = SyntheticSource::new(VcaKind::Teams, 2, 2, 7);
//! let mut n = 0usize;
//! while let Some(pkt) = source.next_packet().expect("synthetic feeds are infallible") {
//!     assert!(pkt.ts().as_micros() >= 0);
//!     n += 1;
//! }
//! assert!(n > 0, "two 2-second calls produce packets");
//! ```

use crate::control::StopToken;
use crate::trace::{Trace, TracePacket};
use std::io::{BufReader, Read};
use std::net::{IpAddr, Ipv4Addr};
use std::path::Path;
use vcaml_netem::{synth_ndt_schedule, LinkConfig};
use vcaml_netpkt::pcap::{PcapReader, PcapRecord};
use vcaml_netpkt::{CapturedPacket, Error as NetError, FlowKey, LinkType, Timestamp};
use vcaml_rtp::VcaKind;
use vcaml_vcasim::{Session, SessionConfig, VcaProfile};

/// One item pulled from a [`PacketSource`]: every shape the monitor can
/// ingest, tagged so the runner routes it to the right parse path.
#[derive(Debug, Clone)]
pub enum SourcePacket {
    /// A raw pcap record plus the capture's link type; the monitor does
    /// the layered eth→ip→udp parse and classifies failures.
    Record {
        /// Link type of the capture the record came from.
        link: LinkType,
        /// The raw record.
        record: PcapRecord,
    },
    /// A decoded UDP capture (timestamp + datagram).
    Captured(CapturedPacket),
    /// A pre-parsed packet on an explicit flow — simulated feeds and
    /// replays that never materialized wire bytes.
    Parsed {
        /// The packet's canonical 5-tuple.
        flow: FlowKey,
        /// The packet itself.
        packet: TracePacket,
    },
}

impl SourcePacket {
    /// The packet's capture timestamp (drives [`Paced`] replay).
    pub fn ts(&self) -> Timestamp {
        match self {
            SourcePacket::Record { record, .. } => record.ts,
            SourcePacket::Captured(cap) => cap.ts,
            SourcePacket::Parsed { packet, .. } => packet.ts,
        }
    }
}

/// A pull-based stream of timestamped packets.
///
/// The contract mirrors an iterator with fallible I/O: `Ok(Some(_))`
/// yields the next packet, `Ok(None)` is a clean end of stream, and
/// `Err(_)` is a read failure after which the source should be
/// abandoned. Packets should be yielded in capture order; the monitor's
/// engines assume non-decreasing per-flow timestamps.
pub trait PacketSource {
    /// Pulls the next packet.
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError>;

    /// Whether this source delivers packets at wall-clock pace (a live
    /// tap, or a [`Paced`] replay standing in for one) rather than as
    /// fast as they can be pulled.
    ///
    /// The runner batches ingest handover for throughput; on a live
    /// source that batching would hold sparse traffic away from the
    /// shard workers for seconds, so the runner hands packets over
    /// immediately instead. Per-packet handover costs nothing at
    /// wall-clock rates, and keeps `stats_snapshot()`, the event
    /// stream, and the daemon's exporter current while the run is live.
    fn is_live(&self) -> bool {
        false
    }
}

/// A classic libpcap capture as a packet source. Records come out raw —
/// the monitor (not the source) parses and classifies them, so a capture
/// full of garbage still produces a full account of drops.
pub struct PcapFileSource<R: Read> {
    reader: PcapReader<R>,
    link: LinkType,
}

impl PcapFileSource<BufReader<std::fs::File>> {
    /// Opens a pcap file from disk.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, NetError> {
        let file = std::fs::File::open(path)?;
        PcapFileSource::new(BufReader::new(file))
    }
}

impl<R: Read> PcapFileSource<R> {
    /// Wraps any reader positioned at a pcap global header.
    pub fn new(reader: R) -> Result<Self, NetError> {
        let reader = PcapReader::new(reader)?;
        let link = reader.link_type();
        Ok(PcapFileSource { reader, link })
    }

    /// Link type declared in the capture's global header.
    pub fn link_type(&self) -> LinkType {
        self.link
    }
}

impl<R: Read> PacketSource for PcapFileSource<R> {
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError> {
        Ok(self
            .reader
            .next_record()?
            .map(|record| SourcePacket::Record {
                link: self.link,
                record,
            }))
    }
}

/// Simulated concurrent VCA calls as a packet source: each call is
/// rewritten onto its own client endpoint and the calls are interleaved
/// in global arrival order, like a tap's mixed traffic. Generation is
/// eager (the simulator runs at construction); iteration is free.
pub struct SyntheticSource {
    feed: std::vec::IntoIter<CapturedPacket>,
}

impl SyntheticSource {
    /// Simulates `calls` concurrent `secs`-second calls of the given VCA
    /// under NDT-like network conditions. `seed` varies the network
    /// schedule, the codec randomness, *and* the client endpoints, so
    /// two sources with distinct seeds (mod 200) produce disjoint flows
    /// — the shape `MonitorRunner` multi-ingest expects (a flow must not
    /// span sources).
    pub fn new(vca: VcaKind, secs: u32, calls: usize, seed: u64) -> Self {
        let mut feed = Vec::new();
        for call in 0..calls {
            let profile = VcaProfile::lab(vca);
            let session = Session::new(SessionConfig {
                profile,
                schedule: synth_ndt_schedule(seed + call as u64, secs as usize),
                duration_secs: secs,
                seed: seed.wrapping_mul(1000) + call as u64,
                link: LinkConfig::default(),
            })
            .run();
            for mut cap in session.to_captured() {
                // One client endpoint per (seed, call) so the monitor
                // demuxes the calls like distinct households — and two
                // differently-seeded sources never share a flow.
                cap.datagram.dst = IpAddr::V4(Ipv4Addr::new(
                    10,
                    (seed % 200) as u8 + 1,
                    (call / 100) as u8,
                    (call % 100) as u8 + 1,
                ));
                cap.datagram.dst_port = 51_820 + call as u16;
                feed.push(cap);
            }
        }
        feed.sort_by_key(|c| c.ts);
        SyntheticSource {
            feed: feed.into_iter(),
        }
    }
}

impl PacketSource for SyntheticSource {
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError> {
        Ok(self.feed.next().map(SourcePacket::Captured))
    }
}

/// An in-memory packet list as a source — the replay shape used by
/// tests, benches, and the batch pipeline.
///
/// Flow-keyed feeds are kept in their compact `(FlowKey, TracePacket)`
/// form and wrapped into [`SourcePacket`]s one at a time on pull, so
/// constructing a replay of N packets never re-materializes the feed
/// (it used to copy the whole list into a second, wider vector).
pub struct ReplaySource {
    items: ReplayItems,
}

enum ReplayItems {
    /// Pre-parsed flow-keyed packets, wrapped lazily (both are `Copy`).
    Parsed {
        feed: Vec<(FlowKey, TracePacket)>,
        pos: usize,
    },
    /// Already-shaped source packets (decoded captures).
    Shaped(std::vec::IntoIter<SourcePacket>),
}

impl ReplaySource {
    /// Replays pre-parsed flow-keyed packets.
    pub fn from_packets(feed: Vec<(FlowKey, TracePacket)>) -> Self {
        ReplaySource {
            items: ReplayItems::Parsed { feed, pos: 0 },
        }
    }

    /// Replays decoded captures.
    pub fn from_captured(feed: Vec<CapturedPacket>) -> Self {
        ReplaySource {
            items: ReplayItems::Shaped(
                feed.into_iter()
                    .map(SourcePacket::Captured)
                    .collect::<Vec<_>>()
                    .into_iter(),
            ),
        }
    }

    /// Replays a recorded [`Trace`]'s packets on one flow.
    pub fn from_trace(trace: &Trace, flow: FlowKey) -> Self {
        ReplaySource::from_packets(trace.packets.iter().map(|p| (flow, *p)).collect())
    }
}

impl PacketSource for ReplaySource {
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError> {
        Ok(match &mut self.items {
            ReplayItems::Parsed { feed, pos } => {
                let item = feed
                    .get(*pos)
                    .map(|&(flow, packet)| SourcePacket::Parsed { flow, packet });
                *pos += 1;
                item
            }
            ReplayItems::Shaped(items) => items.next(),
        })
    }
}

/// Real-time replay adapter: delays each packet until its capture
/// timestamp (relative to the first packet) comes due on the wall
/// clock, optionally scaled. `speed` > 1 replays faster than real time;
/// the default [`Paced::new`] is 1× — a recorded capture behaves like a
/// live tap, which is how dashboards and alert rules are demoed without
/// capture privileges.
pub struct Paced<S> {
    inner: S,
    speed: f64,
    epoch: Option<(std::time::Instant, Timestamp)>,
    /// Graceful-stop signal: pacing sleeps are chunked against it so a
    /// [`MonitorHandle::stop`](crate::control::MonitorHandle::stop)
    /// interrupts a long inter-packet wait instead of riding it out.
    stop: Option<StopToken>,
}

/// Longest uninterruptible pacing sleep when a stop token is attached:
/// a stop is noticed within this bound even mid-gap.
const STOP_POLL: std::time::Duration = std::time::Duration::from_millis(20);

impl<S: PacketSource> Paced<S> {
    /// Real-time (1×) pacing.
    pub fn new(inner: S) -> Self {
        Paced::with_speed(inner, 1.0)
    }

    /// Pacing at a speed multiple (2.0 = twice as fast as recorded).
    pub fn with_speed(inner: S, speed: f64) -> Self {
        assert!(speed > 0.0, "non-positive replay speed");
        Paced {
            inner,
            speed,
            epoch: None,
            stop: None,
        }
    }

    /// Attaches a graceful-stop token (from
    /// [`MonitorHandle::stop_token`](crate::control::MonitorHandle::stop_token)):
    /// when a stop is requested, the source ends its stream (`Ok(None)`)
    /// at the next packet boundary — even one still being waited on —
    /// instead of sleeping out the rest of a long capture gap.
    pub fn with_stop(mut self, stop: StopToken) -> Self {
        self.stop = Some(stop);
        self
    }
}

impl<S: PacketSource> PacketSource for Paced<S> {
    fn next_packet(&mut self) -> Result<Option<SourcePacket>, NetError> {
        if self.stop.as_ref().is_some_and(StopToken::is_stopped) {
            return Ok(None);
        }
        let Some(pkt) = self.inner.next_packet()? else {
            return Ok(None);
        };
        let ts = pkt.ts();
        let (wall_start, first_ts) = *self.epoch.get_or_insert((std::time::Instant::now(), ts));
        let stream_us = ts.as_micros().saturating_sub(first_ts.as_micros());
        if stream_us > 0 {
            let due = wall_start
                + std::time::Duration::from_micros((stream_us as f64 / self.speed) as u64);
            loop {
                let now = std::time::Instant::now();
                if due <= now {
                    break;
                }
                match &self.stop {
                    None => std::thread::sleep(due - now),
                    Some(stop) => {
                        if stop.is_stopped() {
                            return Ok(None);
                        }
                        std::thread::sleep((due - now).min(STOP_POLL));
                    }
                }
            }
        }
        Ok(Some(pkt))
    }

    /// Paced replays emulate a live tap; the runner skips ingest
    /// batching so the emulation holds downstream too.
    fn is_live(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::pcap::PcapWriter;

    #[test]
    fn pcap_source_yields_written_records() {
        let mut w = PcapWriter::new(Vec::new(), LinkType::Ethernet).expect("header");
        w.write_packet(Timestamp::from_micros(5), &[1, 2, 3])
            .expect("rec");
        w.write_packet(Timestamp::from_micros(9), &[4; 60])
            .expect("rec");
        let bytes = w.finish().expect("flush");
        let mut src = PcapFileSource::new(std::io::Cursor::new(bytes)).expect("open");
        assert_eq!(src.link_type(), LinkType::Ethernet);
        let mut seen = Vec::new();
        while let Some(pkt) = src.next_packet().expect("read") {
            let SourcePacket::Record { link, record } = pkt else {
                panic!("pcap sources yield raw records");
            };
            assert_eq!(link, LinkType::Ethernet);
            seen.push((record.ts.as_micros(), record.data.len()));
        }
        assert_eq!(seen, vec![(5, 3), (9, 60)]);
    }

    #[test]
    fn synthetic_source_interleaves_distinct_calls() {
        let mut src = SyntheticSource::new(VcaKind::Meet, 2, 3, 11);
        let mut ports = std::collections::HashSet::new();
        let mut last_ts = Timestamp::from_micros(i64::MIN);
        let mut n = 0;
        while let Some(pkt) = src.next_packet().expect("infallible") {
            let SourcePacket::Captured(cap) = pkt else {
                panic!("synthetic sources yield captures");
            };
            assert!(cap.ts >= last_ts, "arrival order");
            last_ts = cap.ts;
            ports.insert(cap.datagram.dst_port);
            n += 1;
        }
        assert!(n > 100, "three calls of traffic");
        assert_eq!(ports.len(), 3, "one client endpoint per call");
    }

    #[test]
    fn replay_source_preserves_flow_and_order() {
        let flow = FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            5001,
            17,
        )
        .0;
        let feed: Vec<(FlowKey, TracePacket)> = (0..5)
            .map(|i| {
                (
                    flow,
                    TracePacket {
                        ts: Timestamp::from_micros(i * 1000),
                        size: 1100,
                        rtp: None,
                        truth_media: None,
                    },
                )
            })
            .collect();
        let mut src = ReplaySource::from_packets(feed);
        let mut n = 0i64;
        while let Some(SourcePacket::Parsed { flow: f, packet }) =
            src.next_packet().expect("infallible")
        {
            assert_eq!(f, flow);
            assert_eq!(packet.ts.as_micros(), n * 1000);
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn paced_replay_spaces_packets_on_the_wall_clock() {
        let flow = FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            5001,
            17,
        )
        .0;
        // 40 ms of stream time at 20× replay ≈ 2 ms of wall time.
        let feed: Vec<(FlowKey, TracePacket)> = (0..5)
            .map(|i| {
                (
                    flow,
                    TracePacket {
                        ts: Timestamp::from_micros(i * 10_000),
                        size: 1100,
                        rtp: None,
                        truth_media: None,
                    },
                )
            })
            .collect();
        let mut src = Paced::with_speed(ReplaySource::from_packets(feed), 20.0);
        let start = std::time::Instant::now();
        let mut n = 0;
        while src.next_packet().expect("infallible").is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
        assert!(
            start.elapsed() >= std::time::Duration::from_micros(2_000),
            "pacing must take at least the scaled stream duration"
        );
    }
}
