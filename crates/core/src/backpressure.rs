//! Bounded event delivery with an explicit overflow policy.
//!
//! A [`crate::api::Monitor`] produces [`QoeEvent`]s faster than some
//! consumers drain them — a slow log shipper, a stalled dashboard, a
//! caller that only polls once per second. Before this module the event
//! queue was unbounded: a slow consumer turned into unbounded memory
//! growth. The crate-internal `EventQueue` bounds it and makes the
//! slow-consumer behaviour an explicit, configurable choice:
//!
//! * [`OverflowPolicy::Block`] — producers wait for the consumer. On a
//!   threaded monitor the shard workers park until the caller drains,
//!   which in turn fills the bounded per-shard ingest channels and makes
//!   [`crate::api::Monitor::ingest_packet`] wait for channel space
//!   (staging any ready events while it waits, so the two bounds can
//!   never deadlock against each other): end-to-end backpressure, no
//!   event ever lost. On a single-threaded monitor the producer *is* the
//!   consumer, so blocking would deadlock; the queue instead grows past
//!   the bound (the pre-backpressure behaviour, now documented rather
//!   than implicit).
//! * [`OverflowPolicy::DropOldest`] — the queue stays bounded by
//!   discarding the oldest undrained events, and the next drain reports
//!   exactly how many were lost via a leading [`QoeEvent::Dropped`]
//!   marker. Nothing blocks; freshness wins over completeness.
//!
//! The queue is the monitor's *collector*: every shard worker pushes its
//! event batches here (one lock per batch, batch order preserved), so
//! per-flow event order — which is per-shard order, since a flow lives on
//! exactly one shard — survives the merge into the outgoing stream.

use crate::api::QoeEvent;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use vcaml_netpkt::FlowKey;

/// Bound on the flows the shed-attribution maps track, per interval and
/// over the queue's lifetime. Shed *counts* stay exact past the bound —
/// only the per-flow attribution of additional flows is given up — so a
/// months-long monitor with endless flow churn cannot grow the maps (or
/// the `Monitor::stats` snapshot that clones them) without limit. Far
/// above any realistic concurrently-shedding flow population.
const MAX_ATTRIBUTED_FLOWS: usize = 4096;

/// What the monitor's bounded event queue does when a push finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Wait for the consumer (threaded monitors; end-to-end backpressure).
    /// Single-threaded monitors cannot block themselves and fall back to
    /// growing past the bound.
    #[default]
    Block,
    /// Discard the oldest undrained events and account for them with a
    /// [`QoeEvent::Dropped`] marker on the next drain.
    DropOldest,
}

struct QueueInner {
    buf: VecDeque<Arc<QoeEvent>>,
    capacity: usize,
    policy: OverflowPolicy,
    /// Events discarded since the last drain (DropOldest only).
    dropped_since_drain: u64,
    /// Flow-attributed slice of `dropped_since_drain`, keyed by flow.
    dropped_flows_since_drain: HashMap<FlowKey, u64>,
    /// Events discarded over the queue's lifetime.
    dropped_total: u64,
    /// Flow-attributed slice of `dropped_total`, keyed by flow.
    dropped_flows_total: HashMap<FlowKey, u64>,
    /// Whether `Block` may actually park the producer. False for
    /// single-threaded monitors (self-deadlock) and after `release()`.
    may_block: bool,
    /// Set by `release()`: the capacity (and with it both policies) is
    /// lifted for good, so the end-of-stream flush can neither park nor
    /// shed tail events.
    unbounded: bool,
}

/// Counts a shed event against `flow`, unless the map is at
/// [`MAX_ATTRIBUTED_FLOWS`] and the flow is not yet tracked — the total
/// counters remain exact either way.
fn bump_bounded(map: &mut HashMap<FlowKey, u64>, flow: FlowKey) {
    if let Some(n) = map.get_mut(&flow) {
        *n += 1;
    } else if map.len() < MAX_ATTRIBUTED_FLOWS {
        map.insert(flow, 1);
    }
}

/// A bounded MPSC event queue shared by the monitor's shard workers (or
/// its inline ingest path) and the draining caller. See the
/// [module docs](self) for the policy semantics.
pub(crate) struct EventQueue {
    inner: Mutex<QueueInner>,
    not_full: Condvar,
    /// Queued events plus any pending drop marker — maintained under the
    /// lock, read lock-free. The per-packet drain of an otherwise idle
    /// monitor is the hot path's common case: this lets [`Self::drain`]
    /// and [`Self::len`] answer "nothing there" with one atomic load
    /// instead of a mutex round-trip.
    approx_len: AtomicUsize,
}

impl EventQueue {
    pub(crate) fn new(capacity: usize, policy: OverflowPolicy, may_block: bool) -> Self {
        assert!(capacity >= 1, "zero event-queue capacity");
        EventQueue {
            approx_len: AtomicUsize::new(0),
            inner: Mutex::new(QueueInner {
                buf: VecDeque::new(),
                capacity,
                policy,
                dropped_since_drain: 0,
                dropped_flows_since_drain: HashMap::new(),
                dropped_total: 0,
                dropped_flows_total: HashMap::new(),
                may_block,
                unbounded: false,
            }),
            not_full: Condvar::new(),
        }
    }

    /// Pushes a batch of events, applying the overflow policy per event.
    /// Batch order (and therefore per-flow order) is preserved. Events
    /// are shared ([`Arc`]): the queue is the head of the fan-out path,
    /// and nothing downstream ever deep-copies one.
    pub(crate) fn push_batch(&self, events: Vec<Arc<QoeEvent>>) {
        self.push(events, true);
    }

    /// Like [`EventQueue::push_batch`], but never parks the caller even
    /// under a blocking policy — for producers that *are* the queue's
    /// consumer (the inline monitor, or the dispatching thread emitting a
    /// parse drop), where waiting on the queue is waiting on itself.
    /// `Block` grows past the bound instead; `DropOldest` is unchanged.
    pub(crate) fn push_nowait(&self, events: Vec<Arc<QoeEvent>>) {
        self.push(events, false);
    }

    fn push(&self, events: Vec<Arc<QoeEvent>>, may_wait: bool) {
        if events.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("event queue poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
        for event in events {
            while !inner.unbounded && inner.buf.len() >= inner.capacity {
                match inner.policy {
                    OverflowPolicy::DropOldest => {
                        let shed = inner.buf.pop_front();
                        inner.dropped_since_drain += 1;
                        inner.dropped_total += 1;
                        if let Some(flow) = shed.as_deref().and_then(QoeEvent::flow) {
                            bump_bounded(&mut inner.dropped_flows_since_drain, flow);
                            bump_bounded(&mut inner.dropped_flows_total, flow);
                        }
                    }
                    OverflowPolicy::Block if inner.may_block && may_wait => {
                        // Publish what is already queued before parking:
                        // the consumer's lock-free emptiness check must
                        // see the backlog, or it will never take the
                        // lock and never notify us.
                        self.approx_len.store(
                            inner.buf.len() + usize::from(inner.dropped_since_drain > 0),
                            Ordering::Release,
                        );
                        // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
                        inner = self.not_full.wait(inner).expect("event queue poisoned");
                    }
                    // Single-threaded (or released, or consumer-side)
                    // Block: grow past the bound rather than deadlocking.
                    OverflowPolicy::Block => break,
                }
            }
            inner.buf.push_back(event);
        }
        self.approx_len.store(
            inner.buf.len() + usize::from(inner.dropped_since_drain > 0),
            Ordering::Release,
        );
    }

    /// Takes every queued event. When events were discarded since the
    /// last drain, the returned batch leads with a [`QoeEvent::Dropped`]
    /// marker whose count — total and per flow — is exact; the discarded
    /// events were older than everything else returned.
    pub(crate) fn drain(&self) -> Vec<Arc<QoeEvent>> {
        // Common case on the per-packet drain path: nothing queued, no
        // pending drop marker — skip the lock entirely. A racing push
        // lands on the next drain, exactly as if it had arrived one
        // instruction later.
        if self.approx_len.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut inner = self.inner.lock().expect("event queue poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
        let dropped = std::mem::take(&mut inner.dropped_since_drain);
        let mut per_flow: Vec<(FlowKey, u64)> =
            std::mem::take(&mut inner.dropped_flows_since_drain)
                .into_iter()
                .collect();
        per_flow.sort_unstable_by_key(|(flow, _)| *flow);
        let mut out = Vec::with_capacity(inner.buf.len() + usize::from(dropped > 0));
        if dropped > 0 {
            out.push(Arc::new(QoeEvent::Dropped {
                count: dropped,
                per_flow,
            }));
        }
        out.extend(inner.buf.drain(..));
        self.approx_len.store(0, Ordering::Release);
        drop(inner);
        self.not_full.notify_all();
        out
    }

    /// Queued events not yet drained (excludes any pending drop marker).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("event queue poisoned").buf.len() // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
    }

    /// Events discarded over the queue's lifetime.
    pub(crate) fn dropped_total(&self) -> u64 {
        self.inner
            .lock()
            .expect("event queue poisoned") // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
            .dropped_total
    }

    /// Flow-attributed lifetime drop counts, sorted by flow for
    /// deterministic output. Events with no flow (parse drops, markers)
    /// appear in [`EventQueue::dropped_total`] but not here.
    pub(crate) fn dropped_by_flow(&self) -> Vec<(FlowKey, u64)> {
        let inner = self.inner.lock().expect("event queue poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
        let mut out: Vec<(FlowKey, u64)> = inner
            .dropped_flows_total
            .iter()
            .map(|(flow, n)| (*flow, *n))
            .collect();
        out.sort_unstable_by_key(|(flow, _)| *flow);
        out
    }

    /// Lifts the bound for good: producers stop parking, and *neither*
    /// policy discards or delays anything further — `Block` overflows
    /// grow, `DropOldest` stops shedding. Called by `Monitor::finish`
    /// (and the monitor's `Drop`) before joining the shard workers: the
    /// end-of-stream flush, which carries every flow's sealed tail
    /// windows, must neither drop nor deadlock against a full queue.
    pub(crate) fn release(&self) {
        let mut inner = self.inner.lock().expect("event queue poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned queue lock means a producer/consumer already panicked; escalate
        inner.may_block = false;
        inner.unbounded = true;
        drop(inner);
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;

    fn ev(us: i64) -> Arc<QoeEvent> {
        Arc::new(QoeEvent::ParseDrop {
            ts: Timestamp::from_micros(us),
            reason: crate::api::ParseDropReason::NotUdp,
        })
    }

    #[test]
    fn drop_oldest_bounds_and_accounts() {
        let q = EventQueue::new(4, OverflowPolicy::DropOldest, false);
        q.push_batch((0..10).map(ev).collect());
        assert_eq!(q.len(), 4);
        let drained = q.drain();
        assert!(matches!(*drained[0], QoeEvent::Dropped { count: 6, .. }));
        assert_eq!(drained.len(), 5);
        // The survivors are the newest events, in order.
        let kept: Vec<i64> = drained[1..]
            .iter()
            .map(|e| match &**e {
                QoeEvent::ParseDrop { ts, .. } => ts.as_micros(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(q.dropped_total(), 6);
        // A fresh drain has nothing to report.
        assert!(q.drain().is_empty());
    }

    #[test]
    fn drop_oldest_attributes_sheds_per_flow() {
        use std::net::{IpAddr, Ipv4Addr};
        let flow = |n: u8| {
            FlowKey::canonical(
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, n)),
                5000,
                IpAddr::V4(Ipv4Addr::new(10, 0, 0, 200)),
                5001,
                17,
            )
            .0
        };
        let opened = |n: u8, us: i64| {
            Arc::new(QoeEvent::FlowOpened {
                flow: flow(n),
                ts: Timestamp::from_micros(us),
            })
        };
        let q = EventQueue::new(2, OverflowPolicy::DropOldest, false);
        // Six events: four shed (two per flow), the newest two survive.
        q.push_batch(vec![
            opened(1, 0),
            opened(2, 1),
            opened(1, 2),
            opened(2, 3),
            opened(1, 4),
            opened(2, 5),
        ]);
        let drained = q.drain();
        let QoeEvent::Dropped { count, per_flow } = &*drained[0] else {
            panic!("drain must lead with the drop marker");
        };
        assert_eq!(*count, 4);
        assert_eq!(per_flow.len(), 2);
        assert!(per_flow.iter().all(|(_, n)| *n == 2));
        assert_eq!(per_flow, &q.dropped_by_flow());
        // A second overflow accumulates the lifetime map but the next
        // marker counts only the fresh sheds.
        q.push_batch(vec![opened(1, 6), opened(1, 7), opened(1, 8)]);
        let drained = q.drain();
        let QoeEvent::Dropped { count, per_flow } = &*drained[0] else {
            panic!("second drain leads with a fresh marker");
        };
        assert_eq!(*count, 1);
        assert_eq!(per_flow.len(), 1);
        let lifetime = q.dropped_by_flow();
        assert_eq!(lifetime.iter().map(|(_, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn push_nowait_never_parks_under_block() {
        let q = EventQueue::new(1, OverflowPolicy::Block, true);
        // may_block is true (threaded monitor), but the consumer-side
        // push must still complete without a drain happening.
        q.push_nowait((0..4).map(ev).collect());
        assert_eq!(q.len(), 4);
        assert_eq!(q.dropped_total(), 0);
    }

    #[test]
    fn non_blocking_block_grows_past_bound() {
        let q = EventQueue::new(2, OverflowPolicy::Block, false);
        q.push_batch((0..5).map(ev).collect());
        assert_eq!(q.len(), 5, "single-threaded Block must not lose events");
        assert_eq!(q.dropped_total(), 0);
        assert_eq!(q.drain().len(), 5);
    }

    #[test]
    fn blocking_producer_waits_for_drain() {
        use std::sync::Arc;
        let q = Arc::new(EventQueue::new(2, OverflowPolicy::Block, true));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.push_batch((0..6).map(ev).collect());
        });
        // Drain until the producer has delivered everything.
        let mut got = 0;
        while got < 6 {
            got += q.drain().len();
            std::thread::yield_now();
        }
        producer.join().expect("producer");
        assert_eq!(got, 6);
        assert_eq!(q.dropped_total(), 0);
    }

    #[test]
    fn release_stops_drop_oldest_shedding() {
        // After release, the end-of-stream flush must not lose events
        // even under DropOldest: the queue grows past its bound instead.
        let q = EventQueue::new(2, OverflowPolicy::DropOldest, false);
        q.push_batch((0..5).map(ev).collect());
        assert_eq!(q.dropped_total(), 3, "bounded phase sheds");
        q.release();
        q.push_batch((5..20).map(ev).collect());
        assert_eq!(q.dropped_total(), 3, "released phase never sheds");
        let drained = q.drain();
        assert!(matches!(*drained[0], QoeEvent::Dropped { count: 3, .. }));
        assert_eq!(drained.len(), 1 + 2 + 15);
    }

    #[test]
    fn release_unblocks_producers() {
        use std::sync::Arc;
        let q = Arc::new(EventQueue::new(1, OverflowPolicy::Block, true));
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.push_batch((0..4).map(ev).collect());
        });
        q.release();
        producer.join().expect("producer");
        assert_eq!(q.drain().len(), 4);
    }
}
