//! The heuristic error taxonomy of Fig. 4: how the IP/UDP Heuristic's
//! packet-size assumption fails.
//!
//! * **Split** — a frame whose intra-frame packet size spread exceeds
//!   `Δmax_size` gets divided into several heuristic frames (Meet's
//!   unequal fragmentation, case 2);
//! * **Interleave** — out-of-order arrival interleaves packets of
//!   different frames (case 3);
//! * **Coalesce** — consecutive frames of similar size merge into one
//!   heuristic frame, detected as heuristic frames spanning more than one
//!   RTP timestamp (case 1).

use crate::heuristic::{Assignment, HeuristicParams};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Error counts over one analysis window, in frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorCounts {
    /// Ground-truth frames split by intra-frame size spread.
    pub splits: f64,
    /// Ground-truth frames interleaved with another frame's packets.
    pub interleaves: f64,
    /// Heuristic frames covering more than one RTP timestamp.
    pub coalesces: f64,
    /// Windows analyzed (for averaging).
    pub windows: u64,
}

impl ErrorCounts {
    /// Averages per window (Fig. 4's y-axis: "Avg [# Frames]").
    pub fn averages(&self) -> (f64, f64, f64) {
        let n = self.windows.max(1) as f64;
        (self.splits / n, self.interleaves / n, self.coalesces / n)
    }

    /// Accumulates another count.
    pub fn add(&mut self, other: &ErrorCounts) {
        self.splits += other.splits;
        self.interleaves += other.interleaves;
        self.coalesces += other.coalesces;
        self.windows += other.windows;
    }
}

/// Analyzes one window of video packets.
///
/// * `packets` — `(size, rtp_timestamp)` per packet in arrival order (the
///   ground-truth timestamp comes from the RTP header);
/// * `assignments` — the heuristic's frame assignment for the same
///   packets.
pub fn analyze_window(
    packets: &[(u16, u32)],
    assignments: &[Assignment],
    params: &HeuristicParams,
) -> ErrorCounts {
    assert_eq!(packets.len(), assignments.len(), "length mismatch");
    let mut counts = ErrorCounts {
        windows: 1,
        ..Default::default()
    };

    // Splits: ground-truth frames whose intra-frame size spread > Δ.
    let mut by_ts: HashMap<u32, (u16, u16)> = HashMap::new();
    for &(size, ts) in packets {
        let e = by_ts.entry(ts).or_insert((size, size));
        e.0 = e.0.min(size);
        e.1 = e.1.max(size);
    }
    counts.splits = by_ts
        .values()
        .filter(|(lo, hi)| hi - lo > params.delta_max_size)
        .count() as f64;

    // Interleaves: ground-truth frames whose packets are not contiguous
    // in arrival order (another frame's packet lands between them).
    let mut last_ts: Option<u32> = None;
    let mut closed: HashSet<u32> = HashSet::new();
    let mut interleaved: HashSet<u32> = HashSet::new();
    for &(_, ts) in packets {
        if last_ts != Some(ts) {
            if closed.contains(&ts) {
                interleaved.insert(ts);
            }
            if let Some(prev) = last_ts {
                closed.insert(prev);
            }
            last_ts = Some(ts);
        }
    }
    counts.interleaves = interleaved.len() as f64;

    // Coalesces: heuristic frames assigned more than one RTP timestamp.
    let mut ts_per_frame: HashMap<usize, HashSet<u32>> = HashMap::new();
    for (a, &(_, ts)) in assignments.iter().zip(packets) {
        ts_per_frame.entry(a.frame_id).or_default().insert(ts);
    }
    counts.coalesces = ts_per_frame.values().filter(|s| s.len() > 1).count() as f64;

    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::IpUdpHeuristic;
    use vcaml_netpkt::Timestamp;

    fn run(pkts: &[(u16, u32)], params: HeuristicParams) -> ErrorCounts {
        let input: Vec<(Timestamp, u16)> = pkts
            .iter()
            .enumerate()
            .map(|(i, &(s, _))| (Timestamp::from_millis(i as i64), s))
            .collect();
        let (_, asg) = IpUdpHeuristic::new(params).assemble(&input);
        analyze_window(pkts, &asg, &params)
    }

    #[test]
    fn clean_stream_no_errors() {
        // Two distinct equal-size frames.
        let pkts = [(1100, 1), (1100, 1), (900, 2), (900, 2)];
        let c = run(&pkts, HeuristicParams::default());
        assert_eq!(c.splits, 0.0);
        assert_eq!(c.interleaves, 0.0);
        assert_eq!(c.coalesces, 0.0);
    }

    #[test]
    fn split_detected_on_unequal_frame() {
        // One ground-truth frame with 400-byte internal spread.
        let pkts = [(1100, 1), (700, 1)];
        let c = run(&pkts, HeuristicParams::default());
        assert_eq!(c.splits, 1.0);
    }

    #[test]
    fn interleave_detected() {
        // Frame 1 packets wrap around frame 2's.
        let pkts = [(1100, 1), (800, 2), (1100, 1)];
        let c = run(
            &pkts,
            HeuristicParams {
                delta_max_size: 2,
                lookback: 2,
            },
        );
        assert_eq!(c.interleaves, 1.0);
    }

    #[test]
    fn coalesce_detected_on_similar_frames() {
        // Two frames with identical packet sizes merge.
        let pkts = [(1000, 1), (1000, 1), (1000, 2), (1000, 2)];
        let c = run(&pkts, HeuristicParams::default());
        assert_eq!(c.coalesces, 1.0);
    }

    #[test]
    fn averages_divide_by_windows() {
        let mut total = ErrorCounts::default();
        total.add(&ErrorCounts {
            splits: 3.0,
            interleaves: 1.0,
            coalesces: 2.0,
            windows: 2,
        });
        total.add(&ErrorCounts {
            splits: 1.0,
            interleaves: 0.0,
            coalesces: 0.0,
            windows: 2,
        });
        let (s, i, c) = total.averages();
        assert_eq!(s, 1.0);
        assert_eq!(i, 0.25);
        assert_eq!(c, 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = analyze_window(&[(1, 1)], &[], &HeuristicParams::default());
    }
}
