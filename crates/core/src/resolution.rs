//! Resolution class schemes (§5.1.5): Meet and Webex are classified
//! per observed frame-height value; Teams' 11 heights are binned into
//! low (≤ 240), medium ((240, 480]), and high (> 480).
//!
//! ```
//! use vcaml::ResolutionScheme;
//! use vcaml_rtp::VcaKind;
//!
//! // Teams always uses the paper's three bins…
//! let teams = ResolutionScheme::for_vca(VcaKind::Teams, &[]);
//! assert_eq!(teams.class_of(240), Some(0)); // Low
//! assert_eq!(teams.class_of(360), Some(1)); // Medium
//! assert_eq!(teams.class_of(720), Some(2)); // High
//!
//! // …while Meet gets one class per height observed in the corpus.
//! let meet = ResolutionScheme::for_vca(VcaKind::Meet, &[360, 180, 360]);
//! assert_eq!(meet.n_classes(), 2);
//! assert_eq!(meet.labels(), vec!["180p", "360p"]);
//! assert_eq!(meet.class_of(540), None); // never observed → no class
//! ```

use serde::{Deserialize, Serialize};
use vcaml_rtp::VcaKind;

/// Maps frame heights to class ids and back to labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionScheme {
    /// One class per distinct height (sorted ascending).
    PerValue {
        /// The distinct heights, ascending; class id = index.
        heights: Vec<u32>,
    },
    /// The paper's Teams bins.
    LowMediumHigh,
}

impl ResolutionScheme {
    /// Builds the scheme the paper uses for a VCA, given the heights
    /// observed in the corpus (needed for Meet, whose real-world data adds
    /// 540/720).
    pub fn for_vca(vca: VcaKind, observed_heights: &[u32]) -> Self {
        match vca {
            VcaKind::Teams => ResolutionScheme::LowMediumHigh,
            VcaKind::Meet | VcaKind::Webex => {
                let mut hs: Vec<u32> = observed_heights
                    .iter()
                    .copied()
                    .filter(|&h| h > 0)
                    .collect();
                hs.sort_unstable();
                hs.dedup();
                ResolutionScheme::PerValue { heights: hs }
            }
        }
    }

    /// Class id for a height; `None` if the height has no class (height 0
    /// = no decoded frames, excluded from resolution evaluation).
    pub fn class_of(&self, height: u32) -> Option<usize> {
        if height == 0 {
            return None;
        }
        match self {
            ResolutionScheme::PerValue { heights } => heights.iter().position(|&h| h == height),
            ResolutionScheme::LowMediumHigh => Some(if height <= 240 {
                0
            } else if height <= 480 {
                1
            } else {
                2
            }),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        match self {
            ResolutionScheme::PerValue { heights } => heights.len(),
            ResolutionScheme::LowMediumHigh => 3,
        }
    }

    /// Human-readable class labels.
    pub fn labels(&self) -> Vec<String> {
        match self {
            ResolutionScheme::PerValue { heights } => {
                heights.iter().map(|h| format!("{h}p")).collect()
            }
            ResolutionScheme::LowMediumHigh => {
                vec!["Low".into(), "Medium".into(), "High".into()]
            }
        }
    }

    /// True when classification is meaningful (more than one class —
    /// the paper skips Webex real-world, which shows a single height).
    pub fn is_classifiable(&self) -> bool {
        self.n_classes() >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teams_bins_match_paper() {
        let s = ResolutionScheme::for_vca(VcaKind::Teams, &[90, 720]);
        assert_eq!(s.n_classes(), 3);
        assert_eq!(s.class_of(90), Some(0));
        assert_eq!(s.class_of(240), Some(0));
        assert_eq!(s.class_of(270), Some(1));
        assert_eq!(s.class_of(404), Some(1));
        assert_eq!(s.class_of(480), Some(1));
        assert_eq!(s.class_of(540), Some(2));
        assert_eq!(s.class_of(720), Some(2));
        assert_eq!(s.labels(), vec!["Low", "Medium", "High"]);
    }

    #[test]
    fn meet_per_value_sorted_dedup() {
        let s = ResolutionScheme::for_vca(VcaKind::Meet, &[360, 180, 360, 270, 0]);
        assert_eq!(s.n_classes(), 3);
        assert_eq!(s.class_of(180), Some(0));
        assert_eq!(s.class_of(270), Some(1));
        assert_eq!(s.class_of(360), Some(2));
        assert_eq!(s.class_of(540), None);
        assert_eq!(s.labels(), vec!["180p", "270p", "360p"]);
    }

    #[test]
    fn zero_height_unclassified() {
        let s = ResolutionScheme::for_vca(VcaKind::Webex, &[180, 360]);
        assert_eq!(s.class_of(0), None);
        let t = ResolutionScheme::LowMediumHigh;
        assert_eq!(t.class_of(0), None);
    }

    #[test]
    fn single_height_not_classifiable() {
        let s = ResolutionScheme::for_vca(VcaKind::Webex, &[360, 360]);
        assert!(!s.is_classifiable());
        let s2 = ResolutionScheme::for_vca(VcaKind::Webex, &[180, 360]);
        assert!(s2.is_classifiable());
    }
}
