//! The control-socket wire grammar: typed requests, typed errors.
//!
//! One request per line, ASCII verbs, whitespace-separated arguments:
//!
//! | request | effect | reply |
//! |---|---|---|
//! | `STATS` | none | `OK` + the [`MonitorSnapshot`] JSON line |
//! | `FLUSH` | [`force_flush`](crate::control::MonitorHandle::force_flush) | `OK` |
//! | `EVICT <flow>` | [`evict_flow`](crate::control::MonitorHandle::evict_flow) | `OK` |
//! | `SET alert_fps <v>` | retune the fps floor | `OK` |
//! | `SET alert_min_kbps <v>` | retune the bitrate floor | `OK` |
//! | `SET alert_resolution_floor <height>` | retune the resolution floor (0 clears) | `OK` |
//! | `SUBSCRIBE [k=v ...]` | stream JSON-lines events | `OK subscribed` + stream |
//! | `STOP` | graceful [`stop`](crate::control::MonitorHandle::stop) | `OK stopping` |
//!
//! `<flow>` is the [`FlowKey::to_wire`] form
//! (`10.0.0.1:5000-10.0.0.2:5001/17`). `SUBSCRIBE` filters compose
//! conjunctively from `kinds=<name,...>` ([`EventKind::name`]),
//! `flows=<wire,...>`, and `min_severity=<name>`
//! ([`Severity::name`]); no arguments means the full stream.
//!
//! Parsing is total: any byte sequence either yields a [`Request`] or a
//! typed [`ControlError`] — rendered on the wire as
//! `ERR <code> <detail>` — and never panics (property-tested over
//! arbitrary input). Verbs and keys are case-insensitive; values
//! (flow tokens, names) are not.
//!
//! [`MonitorSnapshot`]: crate::control::MonitorSnapshot

use crate::bus::{EventFilter, EventKind, Severity};
use std::fmt;
use vcaml_netpkt::FlowKey;

/// Longest accepted request line, in bytes (before the newline). Longer
/// lines get [`ControlError::LineTooLong`] and the connection is
/// closed — the bound keeps a hostile client from growing the read
/// buffer without limit.
pub const MAX_LINE_BYTES: usize = 4096;

/// One parsed control request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `STATS` — reply with the live snapshot JSON.
    Stats,
    /// `FLUSH` — force provisional snapshots of pending windows.
    Flush,
    /// `EVICT <flow>` — seal one flow now.
    Evict(FlowKey),
    /// `SET <knob> <value>` — retune a live alert floor.
    Set(Setting),
    /// `SUBSCRIBE [filter]` — stream matching events as JSON lines.
    Subscribe(EventFilter),
    /// `STOP` — gracefully stop the monitored run.
    Stop,
}

/// The knobs `SET` can retune, each mapping 1:1 onto a
/// [`MonitorHandle`](crate::control::MonitorHandle) setter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setting {
    /// `SET alert_fps <v>` — the frame-rate floor.
    AlertFps(f64),
    /// `SET alert_min_kbps <v>` — the bitrate floor.
    AlertMinKbps(f64),
    /// `SET alert_resolution_floor <height>` — the resolution-class
    /// floor as a frame height; `0` clears it.
    AlertResolutionFloor(u32),
}

/// Why a request line was rejected. Every variant renders as one
/// `ERR <code> <detail>` reply; the connection stays usable (except
/// [`ControlError::LineTooLong`], after which the server closes it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// Blank line.
    Empty,
    /// First token is not a known verb.
    UnknownVerb(String),
    /// The verb needs an argument that was not supplied.
    MissingArgument(&'static str),
    /// The verb got more arguments than its grammar has slots for.
    TrailingArguments(String),
    /// `EVICT`'s flow token is not a [`FlowKey::to_wire`] form.
    BadFlow(String),
    /// `SET`'s knob name is not one of the [`Setting`]s.
    UnknownSetting(String),
    /// A numeric value did not parse as a finite number.
    BadNumber(String),
    /// A `SUBSCRIBE` key is not `kinds`/`flows`/`min_severity`.
    UnknownFilterKey(String),
    /// A `kinds=` name is not an [`EventKind::name`].
    UnknownKind(String),
    /// A `min_severity=` name is not a [`Severity::name`].
    UnknownSeverity(String),
    /// The line exceeded [`MAX_LINE_BYTES`].
    LineTooLong,
    /// The line was not valid UTF-8.
    NotUtf8,
}

impl ControlError {
    /// Stable machine-readable error code (the second token of an
    /// `ERR` reply).
    pub fn code(&self) -> &'static str {
        match self {
            ControlError::Empty => "empty",
            ControlError::UnknownVerb(_) => "unknown_verb",
            ControlError::MissingArgument(_) => "missing_argument",
            ControlError::TrailingArguments(_) => "trailing_arguments",
            ControlError::BadFlow(_) => "bad_flow",
            ControlError::UnknownSetting(_) => "unknown_setting",
            ControlError::BadNumber(_) => "bad_number",
            ControlError::UnknownFilterKey(_) => "unknown_filter_key",
            ControlError::UnknownKind(_) => "unknown_kind",
            ControlError::UnknownSeverity(_) => "unknown_severity",
            ControlError::LineTooLong => "line_too_long",
            ControlError::NotUtf8 => "not_utf8",
        }
    }

    /// The full wire reply for this error: `ERR <code> <detail>`.
    /// Offending input is truncated and made printable so the reply is
    /// always one clean line.
    pub fn to_reply(&self) -> String {
        fn printable(text: &str) -> String {
            let mut out: String = text
                .chars()
                .take(64)
                .map(|c| if c.is_ascii_graphic() { c } else { '.' })
                .collect();
            if text.chars().count() > 64 {
                out.push_str("...");
            }
            out
        }
        let detail = match self {
            ControlError::Empty => "empty request line".into(),
            ControlError::UnknownVerb(verb) => format!(
                "unknown verb {:?} (expected STATS/FLUSH/EVICT/SET/SUBSCRIBE/STOP)",
                printable(verb)
            ),
            ControlError::MissingArgument(what) => format!("missing argument: {what}"),
            ControlError::TrailingArguments(extra) => {
                format!("unexpected trailing arguments: {:?}", printable(extra))
            }
            ControlError::BadFlow(token) => format!(
                "bad flow {:?} (expected ADDR:PORT-ADDR:PORT/PROTO)",
                printable(token)
            ),
            ControlError::UnknownSetting(knob) => format!(
                "unknown setting {:?} (expected alert_fps/alert_min_kbps/alert_resolution_floor)",
                printable(knob)
            ),
            ControlError::BadNumber(token) => {
                format!(
                    "bad number {:?} (expected a finite value)",
                    printable(token)
                )
            }
            ControlError::UnknownFilterKey(key) => format!(
                "unknown filter key {:?} (expected kinds/flows/min_severity)",
                printable(key)
            ),
            ControlError::UnknownKind(name) => {
                format!("unknown event kind {:?}", printable(name))
            }
            ControlError::UnknownSeverity(name) => format!(
                "unknown severity {:?} (expected info/warning/critical)",
                printable(name)
            ),
            ControlError::LineTooLong => {
                format!("request line exceeds {MAX_LINE_BYTES} bytes")
            }
            ControlError::NotUtf8 => "request line is not valid UTF-8".into(),
        };
        format!("ERR {} {detail}", self.code())
    }
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_reply())
    }
}

impl std::error::Error for ControlError {}

/// Parses one request line. Total over arbitrary input: every outcome
/// is a [`Request`] or a typed [`ControlError`], never a panic.
pub fn parse_request(line: &str) -> Result<Request, ControlError> {
    let mut tokens = line.split_whitespace();
    let Some(verb) = tokens.next() else {
        return Err(ControlError::Empty);
    };
    match verb.to_ascii_uppercase().as_str() {
        "STATS" => finish(tokens, Request::Stats),
        "FLUSH" => finish(tokens, Request::Flush),
        "STOP" => finish(tokens, Request::Stop),
        "EVICT" => {
            let token = tokens.next().ok_or(ControlError::MissingArgument("flow"))?;
            let flow = FlowKey::from_wire(token)
                .ok_or_else(|| ControlError::BadFlow(token.to_string()))?;
            finish(tokens, Request::Evict(flow))
        }
        "SET" => {
            let knob = tokens
                .next()
                .ok_or(ControlError::MissingArgument("setting name"))?;
            let value = tokens
                .next()
                .ok_or(ControlError::MissingArgument("setting value"))?;
            let setting = match knob.to_ascii_lowercase().as_str() {
                "alert_fps" => Setting::AlertFps(finite(value)?),
                "alert_min_kbps" => Setting::AlertMinKbps(finite(value)?),
                "alert_resolution_floor" => Setting::AlertResolutionFloor(
                    value
                        .parse()
                        .map_err(|_| ControlError::BadNumber(value.to_string()))?,
                ),
                _ => return Err(ControlError::UnknownSetting(knob.to_string())),
            };
            finish(tokens, Request::Set(setting))
        }
        "SUBSCRIBE" => {
            let mut filter = EventFilter::all();
            for token in tokens {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| ControlError::UnknownFilterKey(token.to_string()))?;
                match key.to_ascii_lowercase().as_str() {
                    "kinds" => {
                        let kinds = value
                            .split(',')
                            .map(|name| {
                                EventKind::from_name(name)
                                    .ok_or_else(|| ControlError::UnknownKind(name.to_string()))
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        filter = filter.kinds(kinds);
                    }
                    "flows" => {
                        let flows = value
                            .split(',')
                            .map(|token| {
                                FlowKey::from_wire(token)
                                    .ok_or_else(|| ControlError::BadFlow(token.to_string()))
                            })
                            .collect::<Result<Vec<_>, _>>()?;
                        filter = filter.flows(flows);
                    }
                    "min_severity" => {
                        let severity = Severity::from_name(value)
                            .ok_or_else(|| ControlError::UnknownSeverity(value.to_string()))?;
                        filter = filter.min_severity(severity);
                    }
                    _ => return Err(ControlError::UnknownFilterKey(key.to_string())),
                }
            }
            Ok(Request::Subscribe(filter))
        }
        _ => Err(ControlError::UnknownVerb(verb.to_string())),
    }
}

/// Rejects leftover tokens so typos surface instead of being silently
/// swallowed (`EVICT <flow> oops`).
fn finish<'a>(
    mut rest: impl Iterator<Item = &'a str>,
    request: Request,
) -> Result<Request, ControlError> {
    match rest.next() {
        None => Ok(request),
        Some(extra) => Err(ControlError::TrailingArguments(extra.to_string())),
    }
}

fn finite(token: &str) -> Result<f64, ControlError> {
    let value: f64 = token
        .parse()
        .map_err(|_| ControlError::BadNumber(token.to_string()))?;
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ControlError::BadNumber(token.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn flow() -> FlowKey {
        FlowKey::canonical(
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            5000,
            IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
            5001,
            17,
        )
        .0
    }

    #[test]
    fn bare_verbs_parse_case_insensitively() {
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("  Flush  "), Ok(Request::Flush));
        assert_eq!(parse_request("stop"), Ok(Request::Stop));
    }

    #[test]
    fn evict_takes_a_wire_flow() {
        let line = format!("EVICT {}", flow().to_wire());
        assert_eq!(parse_request(&line), Ok(Request::Evict(flow())));
        assert!(matches!(
            parse_request("EVICT nonsense"),
            Err(ControlError::BadFlow(_))
        ));
        assert_eq!(
            parse_request("EVICT"),
            Err(ControlError::MissingArgument("flow"))
        );
    }

    #[test]
    fn set_parses_every_knob_and_rejects_the_rest() {
        assert_eq!(
            parse_request("SET alert_fps 24.5"),
            Ok(Request::Set(Setting::AlertFps(24.5)))
        );
        assert_eq!(
            parse_request("SET alert_min_kbps 500"),
            Ok(Request::Set(Setting::AlertMinKbps(500.0)))
        );
        assert_eq!(
            parse_request("SET alert_resolution_floor 360"),
            Ok(Request::Set(Setting::AlertResolutionFloor(360)))
        );
        assert!(matches!(
            parse_request("SET alert_fps NaN"),
            Err(ControlError::BadNumber(_))
        ));
        assert!(matches!(
            parse_request("SET alert_fps inf"),
            Err(ControlError::BadNumber(_))
        ));
        assert!(matches!(
            parse_request("SET volume 11"),
            Err(ControlError::UnknownSetting(_))
        ));
        assert!(matches!(
            parse_request("SET alert_resolution_floor -1"),
            Err(ControlError::BadNumber(_))
        ));
    }

    #[test]
    fn subscribe_composes_filter_axes() {
        assert!(matches!(
            parse_request("SUBSCRIBE"),
            Ok(Request::Subscribe(_))
        ));
        let line = format!(
            "SUBSCRIBE kinds=window_report,dropped flows={} min_severity=warning",
            flow().to_wire()
        );
        assert!(matches!(parse_request(&line), Ok(Request::Subscribe(_))));
        assert!(matches!(
            parse_request("SUBSCRIBE kinds=bogus"),
            Err(ControlError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_request("SUBSCRIBE min_severity=apocalyptic"),
            Err(ControlError::UnknownSeverity(_))
        ));
        assert!(matches!(
            parse_request("SUBSCRIBE color=red"),
            Err(ControlError::UnknownFilterKey(_))
        ));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        assert!(matches!(
            parse_request("STATS please"),
            Err(ControlError::TrailingArguments(_))
        ));
        assert!(matches!(
            parse_request("SET alert_fps 24 now"),
            Err(ControlError::TrailingArguments(_))
        ));
    }

    #[test]
    fn errors_render_as_single_clean_lines() {
        let err = parse_request("DESTROY \u{7}\u{7}\u{7} everything").unwrap_err();
        let reply = err.to_reply();
        assert!(reply.starts_with("ERR unknown_verb "));
        assert!(!reply.contains('\n'));
        assert!(reply.chars().all(|c| c.is_ascii_graphic() || c == ' '));
    }
}
