//! The daemon's network servers: metrics exporter + control socket.
//!
//! [`Daemon::start`] binds the servers a [`DaemonConfig`] enables and
//! runs each accept loop on its own named thread (`vcaml-metrics`,
//! `vcaml-control`); every accepted connection gets a short-lived
//! handler thread with a hard read timeout, so one stuck client can
//! never wedge the daemon. Nothing here touches the data path: the
//! exporter reads atomic snapshot cells, and control verbs go through
//! the same [`MonitorHandle`] every in-process consumer uses.
//!
//! `SUBSCRIBE` upgrades its connection to a one-way JSON-lines event
//! stream backed by a bounded [`ChannelSink`]: the drain thread sheds
//! (and counts) events a slow subscriber can't keep up with instead of
//! blocking — the queue-bound/`DropOldest` contract extended to remote
//! subscribers. When the client disconnects, the sink detaches and the
//! bus prunes it.

use super::control::{parse_request, ControlError, Request, Setting, MAX_LINE_BYTES};
use super::metrics::render_openmetrics;
use crate::bus::BusHandle;
use crate::control::MonitorHandle;
use crate::sink::ChannelSink;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;
use vcaml_rtp::VcaKind;
use vcaml_vcasim::VcaProfile;

/// How often accept loops and subscriber streams re-check the shutdown
/// flag while idle.
const POLL: Duration = Duration::from_millis(25);

/// Where the control socket listens.
#[derive(Debug, Clone)]
pub enum ControlEndpoint {
    /// A Unix domain socket at this path (created on start, removed on
    /// shutdown). The preferred, access-controllable endpoint.
    Unix(PathBuf),
    /// A TCP address (`"127.0.0.1:9465"`) — the fallback for hosts and
    /// tools without Unix-socket access.
    Tcp(String),
}

/// What the daemon should expose. Default: nothing bound — enable each
/// surface explicitly.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    metrics_addr: Option<String>,
    control: Option<ControlEndpoint>,
    subscriber_queue: usize,
    read_timeout: Duration,
    ladder: Option<VcaProfile>,
}

impl DaemonConfig {
    /// Config with no servers enabled.
    pub fn new() -> Self {
        DaemonConfig {
            metrics_addr: None,
            control: None,
            subscriber_queue: 4096,
            read_timeout: Duration::from_secs(5),
            ladder: None,
        }
    }

    /// Enables the OpenMetrics exporter on `addr` (e.g.
    /// `"127.0.0.1:9464"`; port 0 binds an ephemeral port, reported by
    /// [`Daemon::metrics_addr`]).
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Enables the control socket on `endpoint`.
    pub fn control(mut self, endpoint: ControlEndpoint) -> Self {
        self.control = Some(endpoint);
        self
    }

    /// Event bound per `SUBSCRIBE` stream (default 4096): a subscriber
    /// falling further behind sheds events instead of blocking the
    /// drain, with the shed count accounted on its sink.
    pub fn subscriber_queue(mut self, capacity: usize) -> Self {
        self.subscriber_queue = capacity.max(1);
        self
    }

    /// Per-connection read timeout (default 5 s): a control client that
    /// connects and goes silent is disconnected after this long.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The bitrate ladder `SET alert_resolution_floor` maps heights
    /// through (default: the Teams lab profile).
    pub fn ladder(mut self, ladder: VcaProfile) -> Self {
        self.ladder = Some(ladder);
        self
    }
}

/// Where a started control socket actually listens.
#[derive(Debug, Clone)]
pub enum BoundControl {
    /// Unix socket path.
    Unix(PathBuf),
    /// Bound TCP address (ephemeral port resolved).
    Tcp(SocketAddr),
}

/// The running servers. Dropping a `Daemon` without
/// [`Daemon::shutdown`] leaks its server threads until process exit —
/// fine for a CLI, rude in tests.
pub struct Daemon {
    stop: Arc<AtomicBool>,
    metrics_addr: Option<SocketAddr>,
    control_addr: Option<BoundControl>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

/// Everything a control connection needs to execute verbs.
#[derive(Clone)]
struct ControlCtx {
    handle: MonitorHandle,
    bus: BusHandle,
    ladder: Arc<VcaProfile>,
    subscriber_queue: usize,
    stop: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds and starts every server `config` enables. `handle` steers
    /// the monitored run; `bus` attaches `SUBSCRIBE` streams
    /// (take it from
    /// [`MonitorRunner::bus_handle`](crate::runner::MonitorRunner::bus_handle)
    /// before spawning the run).
    ///
    /// Fails only on bind errors (port taken, bad address, socket path
    /// not writable); once `Ok`, the servers outlive every client
    /// error.
    pub fn start(
        handle: MonitorHandle,
        bus: BusHandle,
        config: DaemonConfig,
    ) -> std::io::Result<Daemon> {
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = ControlCtx {
            handle: handle.clone(),
            bus,
            ladder: Arc::new(
                config
                    .ladder
                    .unwrap_or_else(|| VcaProfile::lab(VcaKind::Teams)),
            ),
            subscriber_queue: if config.subscriber_queue == 0 {
                4096
            } else {
                config.subscriber_queue
            },
            stop: Arc::clone(&stop),
        };
        let read_timeout = if config.read_timeout.is_zero() {
            Duration::from_secs(5)
        } else {
            config.read_timeout
        };
        let mut threads = Vec::new();

        let metrics_addr = match &config.metrics_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let bound = listener.local_addr()?;
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                threads.push(
                    std::thread::Builder::new()
                        .name("vcaml-metrics".into())
                        .spawn(move || metrics_loop(listener, handle, stop, read_timeout))
                        .expect("spawn metrics server"), // lint: allow(no-unwrap-in-lib) -- spawn fails only on OS thread exhaustion; no recovery at this layer
                );
                Some(bound)
            }
            None => None,
        };

        let control_addr = match &config.control {
            Some(ControlEndpoint::Tcp(addr)) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                let bound = listener.local_addr()?;
                let ctx = ctx.clone();
                let stop = Arc::clone(&stop);
                threads.push(
                    std::thread::Builder::new()
                        .name("vcaml-control".into())
                        .spawn(move || control_tcp_loop(listener, ctx, stop, read_timeout))
                        .expect("spawn control server"), // lint: allow(no-unwrap-in-lib) -- spawn fails only on OS thread exhaustion; no recovery at this layer
                );
                Some(BoundControl::Tcp(bound))
            }
            Some(ControlEndpoint::Unix(path)) => {
                // A stale socket file from a crashed run would fail the
                // bind; remove it first (a live daemon holding it will
                // still make the bind fail, which is the right error).
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                let ctx = ctx.clone();
                let stop = Arc::clone(&stop);
                threads.push(
                    std::thread::Builder::new()
                        .name("vcaml-control".into())
                        .spawn(move || control_unix_loop(listener, ctx, stop, read_timeout))
                        .expect("spawn control server"), // lint: allow(no-unwrap-in-lib) -- spawn fails only on OS thread exhaustion; no recovery at this layer
                );
                Some(BoundControl::Unix(path.clone()))
            }
            None => None,
        };

        Ok(Daemon {
            stop,
            metrics_addr,
            control_addr,
            threads,
        })
    }

    /// The exporter's bound address (ephemeral ports resolved), if the
    /// exporter is enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Where the control socket listens, if enabled.
    pub fn control_addr(&self) -> Option<&BoundControl> {
        self.control_addr.as_ref()
    }

    /// Stops the accept loops, joins the server threads, and removes a
    /// Unix socket file. In-flight connection handlers wind down on
    /// their own (bounded by the read timeout); active `SUBSCRIBE`
    /// streams notice the shutdown within one poll tick.
    pub fn shutdown(self) {
        self.stop.store(true, Relaxed);
        for thread in self.threads {
            let _ = thread.join();
        }
        if let Some(BoundControl::Unix(path)) = &self.control_addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("metrics_addr", &self.metrics_addr)
            .field("control_addr", &self.control_addr)
            .finish_non_exhaustive()
    }
}

/// Accept loop of the metrics exporter: HTTP/1.0, one response per
/// connection, close after write.
fn metrics_loop(
    listener: TcpListener,
    handle: MonitorHandle,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let handle = handle.clone();
                let _ = std::thread::Builder::new()
                    .name("vcaml-metrics-conn".into())
                    .spawn(move || serve_scrape(stream, &handle, read_timeout));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// One scrape: read the request head (bounded, with timeout), answer
/// with the rendered snapshot. Any read problem just drops the
/// connection — HTTP clients retry, the daemon does not care.
fn serve_scrape(mut stream: TcpStream, handle: &MonitorHandle, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    // Read until the end of the request head (or the cap); the request
    // content is irrelevant — every path serves the one document.
    let mut head = [0u8; 1024];
    let mut filled = 0usize;
    loop {
        match stream.read(&mut head[filled..]) {
            Ok(0) => return,
            Ok(n) => {
                filled += n;
                if head[..filled].windows(4).any(|w| w == b"\r\n\r\n")
                    || head[..filled].windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if filled == head.len() {
                    return; // oversized request head: drop
                }
            }
            Err(_) => return,
        }
    }
    let body = render_openmetrics(&handle.stats_snapshot());
    let response = format!(
        "HTTP/1.0 200 OK\r\n\
         Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn control_tcp_loop(
    listener: TcpListener,
    ctx: ControlCtx,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(read_timeout));
                let ctx = ctx.clone();
                let _ = std::thread::Builder::new()
                    .name("vcaml-control-conn".into())
                    .spawn(move || serve_control(stream, &ctx));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn control_unix_loop(
    listener: UnixListener,
    ctx: ControlCtx,
    stop: Arc<AtomicBool>,
    read_timeout: Duration,
) {
    while !stop.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(read_timeout));
                let ctx = ctx.clone();
                let _ = std::thread::Builder::new()
                    .name("vcaml-control-conn".into())
                    .spawn(move || serve_control(stream, &ctx));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Incremental, bounded line reader over a raw stream (the same stream
/// is also written to, so a buffering reader that owns it is off the
/// table). Enforces [`MAX_LINE_BYTES`] and UTF-8, as typed errors.
struct LineReader {
    buf: Vec<u8>,
    oversized: bool,
}

enum ReadLine {
    Line(Result<String, ControlError>),
    Closed,
}

impl LineReader {
    fn new() -> Self {
        LineReader {
            buf: Vec::new(),
            oversized: false,
        }
    }

    fn next_line(&mut self, stream: &mut impl Read) -> ReadLine {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                if std::mem::take(&mut self.oversized) {
                    return ReadLine::Line(Err(ControlError::LineTooLong));
                }
                let text = &line[..line.len() - 1];
                let text = text.strip_suffix(b"\r").unwrap_or(text);
                return ReadLine::Line(match std::str::from_utf8(text) {
                    Ok(s) => Ok(s.to_string()),
                    Err(_) => Err(ControlError::NotUtf8),
                });
            }
            if self.buf.len() > MAX_LINE_BYTES {
                // Don't buffer a hostile endless line: mark it, drop
                // what we hold, and keep scanning for its newline.
                self.oversized = true;
                self.buf.clear();
            }
            let mut chunk = [0u8; 512];
            match stream.read(&mut chunk) {
                Ok(0) => return ReadLine::Closed,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                // Timeout or any transport error: treat as gone. The
                // per-connection read timeout is the idle bound.
                Err(_) => return ReadLine::Closed,
            }
        }
    }
}

/// One control connection: parse a line, execute, reply, repeat —
/// until the client leaves, the daemon stops, or the connection
/// upgrades to a `SUBSCRIBE` stream. Client errors are replies, never
/// panics.
fn serve_control<S: Read + Write>(mut stream: S, ctx: &ControlCtx) {
    let mut reader = LineReader::new();
    while !ctx.stop.load(Relaxed) {
        let line = match reader.next_line(&mut stream) {
            ReadLine::Line(line) => line,
            ReadLine::Closed => return,
        };
        let parsed = match &line {
            Ok(text) => parse_request(text),
            Err(err) => Err(err.clone()),
        };
        let request = match parsed {
            Ok(request) => request,
            Err(ControlError::Empty) => continue, // blank keep-alive
            Err(err) => {
                let fatal = matches!(err, ControlError::LineTooLong);
                if writeln!(stream, "{}", err.to_reply()).is_err() || fatal {
                    return;
                }
                continue;
            }
        };
        let ok = match request {
            Request::Stats => writeln!(stream, "OK {}", ctx.handle.stats_snapshot().to_json_line()),
            Request::Flush => {
                ctx.handle.force_flush();
                writeln!(stream, "OK")
            }
            Request::Evict(flow) => {
                ctx.handle.evict_flow(flow);
                writeln!(stream, "OK")
            }
            Request::Set(setting) => {
                match setting {
                    Setting::AlertFps(v) => ctx.handle.set_alert_fps(v),
                    Setting::AlertMinKbps(v) => ctx.handle.set_alert_min_kbps(v),
                    Setting::AlertResolutionFloor(height) => {
                        ctx.handle.set_alert_resolution_floor(height, &ctx.ladder)
                    }
                }
                writeln!(stream, "OK")
            }
            Request::Stop => {
                ctx.handle.stop();
                writeln!(stream, "OK stopping")
            }
            Request::Subscribe(filter) => {
                let (sink, rx) = ChannelSink::bounded(ctx.subscriber_queue);
                ctx.bus.subscribe(filter, sink);
                if writeln!(stream, "OK subscribed").is_err() {
                    return;
                }
                // The connection is now a one-way event stream; it ends
                // when the client disconnects (write fails → the sink
                // detaches and the bus prunes it) or the daemon stops.
                loop {
                    if ctx.stop.load(Relaxed) {
                        return;
                    }
                    match rx.recv_timeout(POLL) {
                        Ok(event) => {
                            if writeln!(stream, "{}", event.to_json_line()).is_err() {
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            let _ = stream.flush();
                        }
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            }
        };
        if ok.is_err() {
            return;
        }
        let _ = stream.flush();
    }
}
