//! The operational surface: run a monitor as a long-lived, remotely
//! observable service.
//!
//! [`MonitorRunner::spawn`](crate::runner::MonitorRunner::spawn) already
//! gives a supervised background run with an in-process
//! [`MonitorHandle`](crate::control::MonitorHandle); this module exposes
//! that handle *out of process*, which is what an unattended deployment
//! at an ISP vantage point (the paper's §1 operator loop) actually
//! needs. Two servers, both dependency-free over `std::net`:
//!
//! * [`metrics`] — an **OpenMetrics/Prometheus text exporter**: a tiny
//!   HTTP/1.0 responder rendering
//!   [`stats_snapshot()`](crate::control::MonitorHandle::stats_snapshot)
//!   as `# TYPE`-annotated counter/gauge families with `shard` /
//!   `method` / `severity` / `flow` labels. Scrapes read atomic counter
//!   cells only — a scrape can never block a shard worker.
//! * [`control`] + [`server`] — a **line-protocol control socket**
//!   (Unix socket, TCP fallback) mapping verbs 1:1 onto the handle:
//!   `STATS`, `FLUSH`, `EVICT <flow>`, `SET <knob> <value>`,
//!   `SUBSCRIBE [filter]` (streams JSON-lines events through a bounded
//!   [`ChannelSink`](crate::sink::ChannelSink) that sheds instead of
//!   blocking the drain), and `STOP`. The grammar is typed: malformed
//!   input gets an `ERR <code> <detail>` reply and never panics the
//!   daemon (fuzz-tested).
//!
//! [`Daemon::start`] binds whichever servers the [`DaemonConfig`]
//! enables and runs them on their own threads; [`Daemon::shutdown`]
//! winds them down. The monitor's lifecycle stays with its supervisor
//! (`RunningMonitor`) — the daemon only observes and steers it, so a
//! `STOP` verb ends the *run* and the CLI then shuts the servers down.
//!
//! ```no_run
//! use vcaml::api::MonitorBuilder;
//! use vcaml::daemon::{Daemon, DaemonConfig};
//! use vcaml::runner::MonitorRunner;
//! use vcaml::source::SyntheticSource;
//! use vcaml_rtp::VcaKind;
//!
//! let mut runner = MonitorRunner::new(MonitorBuilder::new(VcaKind::Teams))
//!     .source(SyntheticSource::new(VcaKind::Teams, 30, 2, 7));
//! let handle = runner.handle();
//! let bus = runner.bus_handle();
//! let daemon = Daemon::start(
//!     handle,
//!     bus,
//!     DaemonConfig::default().metrics_addr("127.0.0.1:9464"),
//! )
//! .expect("bind daemon servers");
//! let running = runner.spawn();
//! // ... scrape http://127.0.0.1:9464/metrics, drive the control
//! // socket, then:
//! let report = running.stop();
//! daemon.shutdown();
//! # let _ = report;
//! ```

pub mod control;
pub mod metrics;
pub mod server;

pub use control::{parse_request, ControlError, Request, Setting, MAX_LINE_BYTES};
pub use metrics::render_openmetrics;
pub use server::{BoundControl, ControlEndpoint, Daemon, DaemonConfig};
