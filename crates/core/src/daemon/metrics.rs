//! OpenMetrics/Prometheus text rendering of a [`MonitorSnapshot`].
//!
//! One pure function, [`render_openmetrics`]: snapshot in, scrape body
//! out. The exporter and the CLI's `--stats-every` both consume the
//! same [`MonitorSnapshot`] (one serializer family, no drift), and the
//! snapshot itself is built from atomic counter loads — rendering can
//! never block a shard worker.
//!
//! Family conventions: every family carries `# HELP` and `# TYPE`
//! lines; `_total`-suffixed families are counters, the rest gauges;
//! label values are escaped per the Prometheus text format (backslash,
//! quote, newline); the body ends with `# EOF` (the OpenMetrics
//! terminator). Optional families (alert floors) are omitted while
//! unset rather than exported as magic sentinels.

use crate::bus::Severity;
use crate::control::MonitorSnapshot;
use crate::pipeline::Method;
use std::fmt::Write;

/// Flows listed in the `dropped_by_flow` family — the top-K offenders
/// by shed count. The snapshot's own attribution is already bounded;
/// this keeps scrape bodies small even when thousands of flows shed.
pub const DROPPED_FLOWS_TOP_K: usize = 8;

/// Renders the scrape body for one snapshot. Pure; safe to call from
/// any thread at any rate.
pub fn render_openmetrics(snap: &MonitorSnapshot) -> String {
    let mut out = String::with_capacity(2048);

    counter(
        &mut out,
        "vcaml_packets_total",
        "Packets routed to a flow engine.",
        snap.stats.packets,
    );
    counter(
        &mut out,
        "vcaml_parse_drops_total",
        "Packets dropped at parse time.",
        snap.stats.parse_drops,
    );
    counter(
        &mut out,
        "vcaml_flows_opened_total",
        "Flows opened.",
        snap.stats.flows_opened,
    );
    counter(
        &mut out,
        "vcaml_flows_evicted_total",
        "Flows evicted (idle, requested, or end of stream).",
        snap.stats.flows_evicted,
    );
    counter(
        &mut out,
        "vcaml_window_reports_total",
        "Final window reports emitted.",
        snap.stats.window_reports,
    );
    counter(
        &mut out,
        "vcaml_provisional_reports_total",
        "Provisional (flush-forced) window snapshots emitted.",
        snap.stats.provisional_reports,
    );
    counter(
        &mut out,
        "vcaml_events_dropped_total",
        "Events shed by the bounded queue (DropOldest only).",
        snap.stats.events_dropped,
    );

    // Top-K flow attribution of the shed events, worst offenders first.
    family(
        &mut out,
        "vcaml_events_dropped_by_flow_total",
        "Events shed by the bounded queue, attributed per flow (top offenders).",
        "counter",
    );
    let mut by_flow = snap.stats.dropped_by_flow.clone();
    by_flow.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (flow, n) in by_flow.iter().take(DROPPED_FLOWS_TOP_K) {
        let _ = writeln!(
            out,
            "vcaml_events_dropped_by_flow_total{{flow=\"{}\"}} {n}",
            escape_label(&flow.to_wire())
        );
    }

    family(
        &mut out,
        "vcaml_events_published_total",
        "Events published on the bus, by classified severity.",
        "counter",
    );
    for severity in Severity::ALL {
        let _ = writeln!(
            out,
            "vcaml_events_published_total{{severity=\"{}\"}} {}",
            severity.name(),
            snap.events_by_severity[severity.index()]
        );
    }

    family(
        &mut out,
        "vcaml_windows_by_method_total",
        "Finalized window reports published on the bus, by estimation method.",
        "counter",
    );
    for method in Method::ALL {
        let _ = writeln!(
            out,
            "vcaml_windows_by_method_total{{method=\"{}\"}} {}",
            method.slug(),
            snap.windows_by_method[method.index()]
        );
    }

    gauge(
        &mut out,
        "vcaml_flows_live",
        "Flows currently tracked.",
        snap.flows_live,
    );
    gauge(
        &mut out,
        "vcaml_pending_events",
        "Events queued for the consumer and not yet drained.",
        snap.pending_events as u64,
    );
    gauge(
        &mut out,
        "vcaml_bytes_per_flow",
        "Estimated resident bytes per tracked flow (engine + table overhead).",
        snap.bytes_per_flow,
    );

    family(
        &mut out,
        "vcaml_ingest_depth",
        "Per-shard-worker ingest backlog, in packets handed over and not yet processed.",
        "gauge",
    );
    for (shard, depth) in snap.shard_depths.iter().enumerate() {
        let _ = writeln!(out, "vcaml_ingest_depth{{shard=\"{shard}\"}} {depth}");
    }

    if let Some(fps) = snap.alert_fps {
        family(
            &mut out,
            "vcaml_alert_fps",
            "Live frame-rate floor.",
            "gauge",
        );
        let _ = writeln!(out, "vcaml_alert_fps {fps}");
    }
    if let Some(kbps) = snap.alert_min_kbps {
        family(
            &mut out,
            "vcaml_alert_min_kbps",
            "Live bitrate floor (kbps).",
            "gauge",
        );
        let _ = writeln!(out, "vcaml_alert_min_kbps {kbps}");
    }
    if let Some(height) = snap.alert_resolution_floor {
        family(
            &mut out,
            "vcaml_alert_resolution_floor",
            "Live resolution-class floor (frame height).",
            "gauge",
        );
        let _ = writeln!(out, "vcaml_alert_resolution_floor {height}");
    }

    gauge(
        &mut out,
        "vcaml_stop_requested",
        "Whether a graceful stop has been requested (0/1).",
        u64::from(snap.stop_requested),
    );

    out.push_str("# EOF\n");
    out
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MonitorStats;

    fn snapshot() -> MonitorSnapshot {
        MonitorSnapshot {
            stats: MonitorStats {
                packets: 100,
                parse_drops: 2,
                flows_opened: 5,
                flows_evicted: 1,
                window_reports: 40,
                provisional_reports: 3,
                events_dropped: 7,
                dropped_by_flow: Vec::new(),
            },
            flows_live: 4,
            pending_events: 11,
            shard_depths: vec![3, 0],
            bytes_per_flow: 512,
            alert_fps: Some(24.0),
            alert_min_kbps: None,
            alert_resolution_floor: Some(360),
            events_by_severity: [30, 2, 1],
            windows_by_method: [0, 0, 0, 40],
            stop_requested: false,
        }
    }

    #[test]
    fn every_sample_line_belongs_to_a_typed_family() {
        let body = render_openmetrics(&snapshot());
        let mut typed = std::collections::HashSet::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                typed.insert(parts.next().unwrap_or_default().to_string());
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line
                .split(['{', ' '])
                .next()
                .unwrap_or_default()
                .to_string();
            assert!(typed.contains(&name), "sample {line:?} precedes its # TYPE");
        }
        assert!(body.ends_with("# EOF\n"));
    }

    #[test]
    fn labels_and_optionals_render() {
        let body = render_openmetrics(&snapshot());
        assert!(body.contains("vcaml_ingest_depth{shard=\"0\"} 3"));
        assert!(body.contains("vcaml_ingest_depth{shard=\"1\"} 0"));
        assert!(body.contains("vcaml_events_published_total{severity=\"warning\"} 2"));
        assert!(body.contains("vcaml_windows_by_method_total{method=\"ip_udp_heuristic\"} 40"));
        assert!(body.contains("vcaml_alert_fps 24"));
        assert!(body.contains("vcaml_alert_resolution_floor 360"));
        assert!(
            !body.contains("vcaml_alert_min_kbps"),
            "unset floors are omitted"
        );
    }

    #[test]
    fn label_escaping_covers_the_format_specials() {
        assert_eq!(escape_label(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }
}
