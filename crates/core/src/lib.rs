//! # vcaml — WebRTC video QoE estimation from IP/UDP headers
//!
//! Rust implementation of the methods in *"Estimating WebRTC Video QoE
//! Metrics Without Using Application Headers"* (IMC 2023):
//!
//! * [`api`] — **the public monitoring facade and the crate's stable
//!   contract**: [`api::MonitorBuilder`] → [`api::Monitor`] → a stream of
//!   [`api::QoeEvent`]s, with raw-packet ingestion (eth→ip→udp layered
//!   parse, RTP parse-attempt with confidence fallback and periodic
//!   re-probe), optional shard worker threads, idle eviction that
//!   surfaces final windows, and JSON-lines output;
//! * [`source`] / [`sink`] / [`runner`] — **the pluggable I/O layer**:
//!   pull-based [`source::PacketSource`]s (pcap files, synthetic calls,
//!   in-memory replays, real-time pacing), typed [`sink::EventSink`]s
//!   (JSON lines, callbacks, bounded channel subscribers, frame-rate
//!   alerts, per-flow summaries, [`sink::Tee`] fan-out), and the
//!   [`runner::MonitorRunner`] that drives N sources on N ingest threads
//!   into one monitor and fans the event stream out to every sink;
//! * [`bus`] / [`control`] — **the output/control plane**: events are
//!   shared (`Arc<QoeEvent>`) end to end, the [`bus::EventBus`] fans
//!   them out to typed [`bus::EventFilter`] subscriptions (by kind,
//!   flow set, min-[`bus::Severity`]) without ever deep-copying, and a
//!   cloneable [`control::MonitorHandle`] (from
//!   [`api::Monitor::handle`] or a spawned
//!   [`runner::RunningMonitor`]) observes and steers a live run:
//!   stats snapshots, forced flushes, per-flow eviction, runtime alert
//!   thresholds, graceful stop;
//! * [`daemon`] — **the operational surface**: an OpenMetrics text
//!   exporter over [`control::MonitorHandle::stats_snapshot`] and a
//!   line-protocol control socket (Unix or TCP) mapping typed verbs
//!   (`STATS`/`FLUSH`/`EVICT`/`SET`/`SUBSCRIBE`/`STOP`) 1:1 onto the
//!   handle, so a spawned monitor runs as a long-lived service;
//! * [`backpressure`] — the bounded event delivery model:
//!   [`backpressure::OverflowPolicy`] selects between blocking producers
//!   and dropping the oldest events with exact loss accounting;
//! * [`media`] — video/non-video packet classification from packet sizes
//!   alone (the `Vmin` threshold, §3.1);
//! * [`heuristic`] — the **IP/UDP Heuristic**: frame-boundary detection
//!   from packet-size similarity (Algorithm 1), exploiting VCAs'
//!   equal-size frame fragmentation, implemented as the incremental
//!   [`heuristic::IpUdpAssembler`];
//! * [`rtp_heuristic`] — the **RTP Heuristic** baseline: frame boundaries
//!   from RTP timestamps and marker bits (Michel et al.-style, §3.3),
//!   implemented as the incremental [`rtp_heuristic::RtpAssembler`];
//! * [`qoe`] — frame-sequence → per-window frame rate / bitrate / frame
//!   jitter estimators (§3.2.1), implemented as the incremental
//!   [`qoe::QoeWindower`];
//! * [`engine`] — the unified streaming engine underneath the facade:
//!   all four methods behind the [`engine::QoeEstimator`] trait
//!   (`push`/`finish`), plus the sharded, flow-keyed [`engine::FlowTable`]
//!   that monitors many concurrent calls in one process (§7's "streaming
//!   versions of the methods"). *Unstable internals* — construct through
//!   [`api`] unless you are a parity test or a benchmark;
//! * [`pipeline`] — the **IP/UDP ML** and **RTP ML** methods: feature
//!   extraction (a replay over the engines), 5-fold cross-validated
//!   random forests, transfer evaluation, and feature importances
//!   (§3.2.2);
//! * [`resolution`] — resolution class schemes (per-height for Meet/Webex,
//!   low/medium/high bins for Teams, §5.1.5);
//! * [`errors`] — the heuristic error taxonomy of Fig. 4 (splits /
//!   interleaves / coalesces);
//! * [`trace`] — the monitor-side trace model consumed by all methods.
//!
//! Batch and streaming share one implementation: the batch entry points
//! ([`pipeline::build_samples`], [`IpUdpHeuristic::assemble`],
//! [`qoe::estimate_windows`], `rtp_heuristic::assemble`) replay their
//! inputs through the same incremental state machines the engines drive
//! packet-by-packet, so the two paths produce identical windows.

pub mod api;
pub mod backpressure;
pub mod bus;
pub mod control;
pub mod daemon;
pub mod engine;
pub mod errors;
pub mod frames;
pub mod heuristic;
pub mod media;
pub mod modes;
pub mod pipeline;
pub mod qoe;
pub mod resolution;
pub mod rtp_heuristic;
pub mod runner;
pub mod sink;
pub mod source;
pub mod trace;

pub use api::{
    EstimationMethod, EvictReason, Monitor, MonitorBuilder, MonitorStats, ParseDropReason, QoeEvent,
};
pub use backpressure::OverflowPolicy;
pub use bus::{AlertBar, AlertThresholds, BusHandle, EventBus, EventFilter, EventKind, Severity};
pub use control::{MonitorHandle, MonitorSnapshot, StopToken};
pub use daemon::{ControlEndpoint, Daemon, DaemonConfig};
pub use runner::{MonitorRunner, RunnerReport, RunningMonitor, SourceReport};
pub use sink::{
    AlertSink, CallbackSink, ChannelSink, CountingSink, EventSink, JsonLinesSink, Summary,
    SummarySink, Tee,
};
pub use source::{
    Paced, PacketSource, PcapFileSource, ReplaySource, SourcePacket, SyntheticSource,
};
// The concrete engines, `FlowTable`, and `replay` stay at their
// `engine::` paths only: they are unstable internals behind the facade.
pub use engine::{EngineConfig, QoeEstimator, WindowReport};
pub use frames::Frame;
pub use heuristic::{HeuristicParams, IpUdpAssembler, IpUdpHeuristic};
pub use media::MediaClassifier;
pub use pipeline::{
    build_samples, eval_heuristic, eval_ml_regression, eval_ml_resolution, feature_importances,
    summarize, transfer_regression, EvalSummary, Method, PipelineOpts, SampleSet, Target,
    WindowSample,
};
pub use qoe::{estimate_windows, QoeEstimate, QoeWindower};
pub use resolution::ResolutionScheme;
pub use trace::{Trace, TracePacket, TruthRow};
