//! Application-mode analysis (paper §7): detecting video-off calls from
//! the UDP packet-size distribution, and estimating the number of active
//! video participants in a multi-party call before per-stream QoE
//! estimation.
//!
//! ```
//! use vcaml::media::MediaClassifier;
//! use vcaml::modes::{detect_video_off, estimate_participants_ipudp};
//! use vcaml::TracePacket;
//! use vcaml_netpkt::Timestamp;
//!
//! // An audio-only call: steady 150-byte packets every 20 ms.
//! let audio_only: Vec<TracePacket> = (0..500)
//!     .map(|i| TracePacket {
//!         ts: Timestamp::from_millis(i * 20),
//!         size: 150,
//!         rtp: None,
//!         truth_media: None,
//!     })
//!     .collect();
//! assert!(detect_video_off(&audio_only, &MediaClassifier::default()));
//!
//! // A merged conference flow at ~58 aggregate fps over 30 fps tiles
//! // suggests two active video participants.
//! assert_eq!(estimate_participants_ipudp(58.0, 30.0), 2);
//! ```

use crate::media::MediaClassifier;
use crate::trace::TracePacket;
use vcaml_rtp::MediaKind;

/// Minimum sustained rate of video-sized packets (per second) for a call
/// to count as having video. A single 180p stream at 7 fps with one packet
/// per frame is ~7 pps; DTLS handshake bursts at call start are excluded
/// by the warm-up skip.
pub const MIN_VIDEO_PPS: f64 = 4.0;

/// Seconds ignored at call start (ICE/DTLS setup noise).
pub const WARMUP_SECS: i64 = 2;

/// Returns true when the call carries no user video: the rate of
/// video-sized packets after warm-up stays below [`MIN_VIDEO_PPS`]. The
/// paper: "Determining whether user video is disabled seems possible by
/// analyzing UDP packet size distribution".
pub fn detect_video_off(packets: &[TracePacket], classifier: &MediaClassifier) -> bool {
    let Some(last) = packets.last() else {
        return true;
    };
    let horizon_secs = last.ts.second_index() - WARMUP_SECS + 1;
    if horizon_secs <= 0 {
        return true;
    }
    let video_count = packets
        .iter()
        .filter(|p| p.ts.second_index() >= WARMUP_SECS && classifier.is_video(p))
        .count();
    (video_count as f64 / horizon_secs as f64) < MIN_VIDEO_PPS
}

/// Participant-count estimate from IP/UDP data alone: the aggregate frame
/// rate of the merged flow divided by a nominal per-stream frame rate.
/// Conferences cap at 30 fps per tile, so `round(agg_fps / nominal)` with
/// a floor of one.
pub fn estimate_participants_ipudp(aggregate_fps: f64, nominal_fps: f64) -> usize {
    assert!(nominal_fps > 0.0, "non-positive nominal fps");
    (aggregate_fps / nominal_fps).round().max(1.0) as usize
}

/// Participant-count baseline using RTP headers: the number of distinct
/// video SSRCs observed.
pub fn estimate_participants_rtp(packets: &[TracePacket], video_pt: u8) -> usize {
    let ssrcs: std::collections::HashSet<u32> = packets
        .iter()
        .filter_map(|p| p.rtp)
        .filter(|h| h.payload_type == video_pt)
        .map(|h| h.ssrc)
        .collect();
    ssrcs.len()
}

/// Splits a multi-party trace into per-SSRC video substreams (RTP
/// baseline), returning `(ssrc, packets)` pairs ordered by first
/// appearance — the "additional step" the paper anticipates before
/// per-stream QoE estimation.
pub fn split_by_ssrc(packets: &[TracePacket], video_pt: u8) -> Vec<(u32, Vec<TracePacket>)> {
    let mut out: Vec<(u32, Vec<TracePacket>)> = Vec::new();
    for p in packets {
        let Some(h) = p.rtp else { continue };
        if h.payload_type != video_pt {
            continue;
        }
        match out.iter_mut().find(|(s, _)| *s == h.ssrc) {
            Some((_, v)) => v.push(*p),
            None => out.push((h.ssrc, vec![*p])),
        }
    }
    out
}

/// Ground-truth helper for evaluation: true when the trace actually
/// carries video packets.
pub fn has_video_truth(packets: &[TracePacket]) -> bool {
    packets
        .iter()
        .any(|p| p.truth_media == Some(MediaKind::Video))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcaml_netpkt::Timestamp;
    use vcaml_rtp::RtpHeader;

    fn pkt(ms: i64, size: u16, rtp: Option<(u8, u32)>) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_millis(ms),
            size,
            rtp: rtp.map(|(pt, ssrc)| RtpHeader::basic(pt, 0, 0, ssrc, false)),
            truth_media: None,
        }
    }

    #[test]
    fn audio_only_call_detected_as_video_off() {
        let classifier = MediaClassifier::default();
        let mut pkts = Vec::new();
        // A big DTLS record during setup must not count.
        pkts.push(pkt(100, 1200, None));
        for i in 0..500 {
            pkts.push(pkt(i * 20, 150, None));
        }
        assert!(detect_video_off(&pkts, &classifier));
    }

    #[test]
    fn video_call_not_flagged() {
        let classifier = MediaClassifier::default();
        let mut pkts = Vec::new();
        for i in 0..300 {
            pkts.push(pkt(i * 33, 1100, None));
        }
        assert!(!detect_video_off(&pkts, &classifier));
    }

    #[test]
    fn empty_trace_is_video_off() {
        assert!(detect_video_off(&[], &MediaClassifier::default()));
    }

    #[test]
    fn participant_estimates() {
        assert_eq!(estimate_participants_ipudp(30.0, 30.0), 1);
        assert_eq!(estimate_participants_ipudp(58.0, 30.0), 2);
        assert_eq!(estimate_participants_ipudp(91.0, 30.0), 3);
        assert_eq!(estimate_participants_ipudp(2.0, 30.0), 1); // floor
    }

    #[test]
    fn rtp_participants_by_ssrc() {
        let pkts = vec![
            pkt(0, 1100, Some((102, 1))),
            pkt(1, 1100, Some((102, 2))),
            pkt(2, 1100, Some((102, 1))),
            pkt(3, 150, Some((111, 9))), // audio doesn't count
        ];
        assert_eq!(estimate_participants_rtp(&pkts, 102), 2);
        let streams = split_by_ssrc(&pkts, 102);
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].0, 1);
        assert_eq!(streams[0].1.len(), 2);
        assert_eq!(streams[1].1.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_nominal_rejected() {
        let _ = estimate_participants_ipudp(30.0, 0.0);
    }
}
