//! Frame abstraction shared by both heuristics: "a VCA session can be
//! abstracted as a sequence of video frames, with each frame transmitted
//! sequentially over a group of RTP packets" (§3.2.1).

use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// A reconstructed (or ground-truth) video frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Arrival time of the first packet assigned to the frame.
    pub start_ts: Timestamp,
    /// Arrival time of the last packet — the frame end time `ET_i` used
    /// for frame-rate and jitter estimation.
    pub end_ts: Timestamp,
    /// Total bytes across the frame's packets. For IP/UDP reconstruction
    /// this is IP total length minus the 40-byte IP/UDP and 12-byte RTP
    /// fixed overheads per packet (§5.1.3 subtracts the fixed RTP header).
    pub size_bytes: usize,
    /// Number of packets in the frame.
    pub n_packets: u32,
    /// RTP timestamp, when reconstructed from RTP headers (ground truth /
    /// RTP Heuristic).
    pub rtp_ts: Option<u32>,
}

impl Frame {
    /// Frame duration from first to last packet.
    pub fn assembly_time(&self) -> Timestamp {
        self.end_ts - self.start_ts
    }
}

/// Builds ground-truth frames from RTP video packets by grouping on the
/// RTP timestamp (packets of one frame share it, §3.3). Input must be in
/// arrival order; output frames are ordered by end time.
///
/// `payload_sizes` are per-packet sizes to accumulate (callers choose the
/// accounting: RTP payload bytes for ground truth).
pub fn frames_from_rtp(packets: &[(Timestamp, u32, usize)]) -> Vec<Frame> {
    let mut frames: Vec<Frame> = Vec::new();
    // Frames can interleave under reordering; find by timestamp among the
    // recent tail (bounded scan keeps this linear in practice).
    for &(ts, rtp_ts, size) in packets {
        match frames.iter_mut().rev().take(16).find(|f| f.rtp_ts == Some(rtp_ts)) {
            Some(f) => {
                f.size_bytes += size;
                f.n_packets += 1;
                f.end_ts = f.end_ts.max(ts);
                f.start_ts = f.start_ts.min(ts);
            }
            None => frames.push(Frame {
                start_ts: ts,
                end_ts: ts,
                size_bytes: size,
                n_packets: 1,
                rtp_ts: Some(rtp_ts),
            }),
        }
    }
    frames.sort_by_key(|f| f.end_ts);
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn groups_by_timestamp() {
        let pkts = vec![
            (t(0), 100u32, 500usize),
            (t(1), 100, 500),
            (t(33), 200, 700),
        ];
        let frames = frames_from_rtp(&pkts);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].size_bytes, 1000);
        assert_eq!(frames[0].n_packets, 2);
        assert_eq!(frames[0].end_ts, t(1));
        assert_eq!(frames[1].rtp_ts, Some(200));
    }

    #[test]
    fn interleaved_packets_still_grouped() {
        let pkts = vec![
            (t(0), 100u32, 10usize),
            (t(1), 200, 20),
            (t(2), 100, 10), // late packet of frame 100
            (t(3), 200, 20),
        ];
        let frames = frames_from_rtp(&pkts);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].n_packets, 2);
        assert_eq!(frames[1].n_packets, 2);
        // Frame 100 ends at t=2, frame 200 at t=3.
        assert_eq!(frames[0].end_ts, t(2));
        assert_eq!(frames[1].end_ts, t(3));
    }

    #[test]
    fn empty_input() {
        assert!(frames_from_rtp(&[]).is_empty());
    }

    #[test]
    fn assembly_time_spans_packets() {
        let frames = frames_from_rtp(&[(t(10), 5, 1), (t(25), 5, 1)]);
        assert_eq!(frames[0].assembly_time(), Timestamp::from_millis(15));
    }

    #[test]
    fn output_sorted_by_end_time() {
        // Frame 200's last packet lands before frame 100's.
        let pkts = vec![
            (t(0), 100u32, 1usize),
            (t(5), 200, 1),
            (t(6), 200, 1),
            (t(50), 100, 1),
        ];
        let frames = frames_from_rtp(&pkts);
        assert_eq!(frames[0].rtp_ts, Some(200));
        assert_eq!(frames[1].rtp_ts, Some(100));
    }
}
