//! Frame abstraction shared by both heuristics: "a VCA session can be
//! abstracted as a sequence of video frames, with each frame transmitted
//! sequentially over a group of RTP packets" (§3.2.1).
//!
//! Both assemblers ([`crate::heuristic::IpUdpAssembler`] from packet
//! sizes, [`crate::rtp_heuristic::RtpAssembler`] from RTP timestamps and
//! marker bits) reduce a packet stream to these [`Frame`]s; every QoE
//! estimate downstream — frame rate, bitrate, frame jitter — is computed
//! from frame end times and sizes alone.
//!
//! ```
//! use vcaml::Frame;
//! use vcaml_netpkt::Timestamp;
//!
//! // A 2-packet frame: first fragment at t=10 ms, last at t=13 ms.
//! let frame = Frame {
//!     start_ts: Timestamp::from_millis(10),
//!     end_ts: Timestamp::from_millis(13),
//!     size_bytes: 2_200,
//!     n_packets: 2,
//!     rtp_ts: None, // unknown to the IP/UDP reconstruction
//! };
//! assert_eq!(frame.assembly_time(), Timestamp::from_millis(3));
//! ```

use serde::{Deserialize, Serialize};
use vcaml_netpkt::Timestamp;

/// A reconstructed (or ground-truth) video frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Arrival time of the first packet assigned to the frame.
    pub start_ts: Timestamp,
    /// Arrival time of the last packet — the frame end time `ET_i` used
    /// for frame-rate and jitter estimation.
    pub end_ts: Timestamp,
    /// Total bytes across the frame's packets. For IP/UDP reconstruction
    /// this is IP total length minus the 40-byte IP/UDP and 12-byte RTP
    /// fixed overheads per packet (§5.1.3 subtracts the fixed RTP header).
    pub size_bytes: usize,
    /// Number of packets in the frame.
    pub n_packets: u32,
    /// RTP timestamp, when reconstructed from RTP headers (ground truth /
    /// RTP Heuristic).
    pub rtp_ts: Option<u32>,
}

impl Frame {
    /// Frame duration from first to last packet.
    pub fn assembly_time(&self) -> Timestamp {
        self.end_ts - self.start_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: i64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn assembly_time_spans_packets() {
        let f = Frame {
            start_ts: t(10),
            end_ts: t(25),
            size_bytes: 2,
            n_packets: 2,
            rtp_ts: Some(5),
        };
        assert_eq!(f.assembly_time(), Timestamp::from_millis(15));
    }
}
