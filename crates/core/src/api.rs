//! The public monitoring facade: raw packets in, typed QoE events out.
//!
//! This module is the stable contract of the crate. A [`MonitorBuilder`]
//! turns typed configuration — estimation method (with RTP-confidence
//! fallback), [`StatsMode`], window length, idle-eviction policy, optional
//! max-lag flush — into a [`Monitor`] that owns the flow demultiplexer and
//! per-flow engines internally. Ingestion accepts raw link-layer bytes,
//! raw IP bytes, decoded [`CapturedPacket`]s, or pre-parsed
//! [`TracePacket`]s (for simulated feeds), performing the layered
//! eth→ip→udp parse and the RTP parse-attempt itself; callers never touch
//! `netpkt` internals. Output is a stream of [`QoeEvent`]s — window
//! reports, flow lifecycle, classified parse drops — drained as an
//! iterator or delivered to a callback sink, and serializable as JSON
//! lines for dashboards and log shippers.
//!
//! The raw engines and `FlowTable` in [`crate::engine`] remain public for
//! parity tests and benchmarks but are documented-unstable; everything
//! else should come through here.
//!
//! ```
//! use vcaml::api::{EstimationMethod, MonitorBuilder, QoeEvent};
//! use vcaml::{Method, TracePacket};
//! use vcaml_netpkt::{FlowKey, Timestamp};
//! use vcaml_rtp::VcaKind;
//!
//! let mut monitor = MonitorBuilder::new(VcaKind::Teams)
//!     .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
//!     .build();
//! let (flow, _) = FlowKey::canonical(
//!     "10.0.0.1".parse().unwrap(), 50_000,
//!     "203.0.113.1".parse().unwrap(), 3_478, 17);
//! // 3 seconds of 30 fps video, two ~1.1 kB packets per frame.
//! for f in 0..90i64 {
//!     for i in 0..2i64 {
//!         monitor.ingest_packet(flow, TracePacket {
//!             ts: Timestamp::from_micros(f * 33_333 + i * 300),
//!             size: 1_100 + (f % 7) as u16,
//!             rtp: None,
//!             truth_media: None,
//!         });
//!     }
//! }
//! let events: Vec<QoeEvent> = monitor.finish();
//! assert!(events.iter().any(|e| matches!(e, QoeEvent::FlowOpened { .. })));
//! // Mid-stream windows arrive as WindowReport events; the sealed tail
//! // rides on the end-of-stream FlowEvicted event.
//! let windows: usize = events.iter().map(|e| match e {
//!     QoeEvent::WindowReport { .. } => 1,
//!     QoeEvent::FlowEvicted { final_reports, .. } => final_reports.len(),
//!     _ => 0,
//! }).sum();
//! assert_eq!(windows, 3, "one report per elapsed second");
//! ```

use crate::engine::{EngineConfig, FlowTable, QoeEstimator, WindowReport};
use crate::engine::{IpUdpHeuristicEngine, IpUdpMlEngine, RtpHeuristicEngine, RtpMlEngine};
use crate::pipeline::Method;
use crate::trace::TracePacket;
use serde::{Map, Serialize, Value};
use std::collections::{HashMap, VecDeque};
use vcaml_features::StatsMode;
use vcaml_mlcore::RandomForest;
use vcaml_netpkt::pcap::PcapRecord;
use vcaml_netpkt::{CapturedPacket, Error as NetError, FlowKey, LinkType, Timestamp, UdpDatagram};
use vcaml_rtp::{PayloadMap, RtpHeader, VcaKind};

/// A per-flow estimator behind the facade. `Send` so a future sharded
/// monitor can move engines across worker threads.
pub type BoxedEngine = Box<dyn QoeEstimator + Send>;

/// Packets buffered per flow before the RTP-confidence decision is made
/// (auto method selection only).
pub const RTP_PROBATION_PACKETS: usize = 16;

/// Fraction of probation packets that must parse as RTP for a flow to be
/// assigned the RTP variant of an auto method. A majority suffices:
/// real sessions lead with STUN/DTLS handshake packets that are not RTP,
/// and the IP/UDP fallback is always sound, so the preference only needs
/// media to be genuinely visible.
pub const RTP_CONFIDENCE: f64 = 0.5;

/// How often (in stream time) the monitor sweeps for idle flows.
const EVICT_CHECK_US: i64 = 1_000_000;

/// How a [`Monitor`] picks the estimation method for each flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMethod {
    /// Every flow gets the named method.
    Fixed(Method),
    /// RTP Heuristic for flows whose early packets parse as RTP with
    /// confidence (a monitor inside the application's trust boundary),
    /// IP/UDP Heuristic otherwise.
    AutoHeuristic,
    /// RTP ML when RTP parses with confidence, IP/UDP ML otherwise.
    AutoMl,
}

impl EstimationMethod {
    /// Whether per-flow probation is needed before the method is known.
    fn is_auto(&self) -> bool {
        !matches!(self, EstimationMethod::Fixed(_))
    }

    /// The method used when RTP cannot be parsed confidently (and the
    /// factory default for fixed selection).
    fn fallback(&self) -> Method {
        match self {
            EstimationMethod::Fixed(m) => *m,
            EstimationMethod::AutoHeuristic => Method::IpUdpHeuristic,
            EstimationMethod::AutoMl => Method::IpUdpMl,
        }
    }

    /// The method used when RTP parses with confidence.
    fn preferred(&self) -> Method {
        match self {
            EstimationMethod::Fixed(m) => *m,
            EstimationMethod::AutoHeuristic => Method::RtpHeuristic,
            EstimationMethod::AutoMl => Method::RtpMl,
        }
    }
}

/// Why a raw packet was not ingested. Every packet offered to a
/// [`Monitor`] is either routed to a flow or accounted for with one of
/// these in a [`QoeEvent::ParseDrop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseDropReason {
    /// The buffer ended before a protocol header did.
    Truncated {
        /// Protocol layer that ran out of bytes.
        layer: &'static str,
    },
    /// A header field violated the codec's constraints (bad IHL, bad
    /// version, length mismatch, unsupported fragmentation, ...).
    Malformed {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// The violated constraint.
        what: &'static str,
    },
    /// A header checksum did not verify.
    Checksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
    /// Well-formed, but not a UDP packet (ARP, TCP, ICMP, non-IP
    /// ethertype) — VCA media is UDP, so the monitor skips it.
    NotUdp,
    /// Capture timestamp before the epoch; outside every window.
    NegativeTimestamp,
}

impl ParseDropReason {
    /// Short machine-readable tag used in JSON output.
    pub fn tag(&self) -> &'static str {
        match self {
            ParseDropReason::Truncated { .. } => "truncated",
            ParseDropReason::Malformed { .. } => "malformed",
            ParseDropReason::Checksum { .. } => "checksum",
            ParseDropReason::NotUdp => "not_udp",
            ParseDropReason::NegativeTimestamp => "negative_timestamp",
        }
    }
}

impl From<&NetError> for ParseDropReason {
    fn from(e: &NetError) -> Self {
        match *e {
            NetError::Truncated { layer, .. } => ParseDropReason::Truncated { layer },
            NetError::Malformed { layer, what } => ParseDropReason::Malformed { layer, what },
            NetError::Checksum { layer } => ParseDropReason::Checksum { layer },
            // Unreachable from in-memory parsing; classified for totality.
            NetError::BadMagic(_) => ParseDropReason::Malformed {
                layer: "pcap",
                what: "bad magic",
            },
            NetError::Io(_) => ParseDropReason::Malformed {
                layer: "io",
                what: "read error",
            },
        }
    }
}

/// Why a flow left the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// No packet for longer than the idle timeout.
    Idle,
    /// [`Monitor::finish`] sealed every remaining flow.
    EndOfStream,
}

/// One event from the monitor's structured output stream.
#[derive(Debug, Clone)]
pub enum QoeEvent {
    /// First packet of a new flow was seen.
    FlowOpened {
        /// The flow's canonical 5-tuple.
        flow: FlowKey,
        /// Capture time of the first packet.
        ts: Timestamp,
    },
    /// A prediction window was emitted for a flow.
    WindowReport {
        /// The flow the window belongs to.
        flow: FlowKey,
        /// The window's metrics (estimate or feature vector, per method).
        report: WindowReport,
        /// True for max-lag flush snapshots: the metrics are lower bounds
        /// that a later final report for the same window supersedes.
        provisional: bool,
    },
    /// A flow was sealed; its remaining windows ride along so the tail of
    /// every call is observable even if the caller never polls.
    FlowEvicted {
        /// The flow's canonical 5-tuple.
        flow: FlowKey,
        /// Idle timeout or end of stream.
        reason: EvictReason,
        /// The flow's final windows, flushed by sealing.
        final_reports: Vec<WindowReport>,
    },
    /// A packet could not be ingested; the reason classifies the drop.
    ParseDrop {
        /// Capture time of the dropped packet.
        ts: Timestamp,
        /// Why it was dropped.
        reason: ParseDropReason,
    },
}

impl QoeEvent {
    /// Machine-readable event tag (the `type` field of the JSON form).
    pub fn tag(&self) -> &'static str {
        match self {
            QoeEvent::FlowOpened { .. } => "flow_opened",
            QoeEvent::WindowReport { .. } => "window_report",
            QoeEvent::FlowEvicted { .. } => "flow_evicted",
            QoeEvent::ParseDrop { .. } => "parse_drop",
        }
    }

    /// One compact JSON object per event — the JSON-lines form consumed
    /// by dashboards and log shippers.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("event serialization is infallible")
    }

    /// The flow this event belongs to (`None` for [`QoeEvent::ParseDrop`],
    /// which happens before flow attribution).
    pub fn flow(&self) -> Option<FlowKey> {
        match self {
            QoeEvent::FlowOpened { flow, .. }
            | QoeEvent::WindowReport { flow, .. }
            | QoeEvent::FlowEvicted { flow, .. } => Some(*flow),
            QoeEvent::ParseDrop { .. } => None,
        }
    }

    /// The *finalized* window reports this event carries: the single
    /// report of a non-provisional [`QoeEvent::WindowReport`], or an
    /// eviction's sealed tail. Empty for everything else (including
    /// provisional max-lag snapshots, which a later final report
    /// supersedes) — so summing this across a monitor's whole event
    /// stream yields each flow's windows exactly once.
    pub fn final_reports(&self) -> &[WindowReport] {
        match self {
            QoeEvent::WindowReport {
                report,
                provisional: false,
                ..
            } => std::slice::from_ref(report),
            QoeEvent::FlowEvicted { final_reports, .. } => final_reports,
            _ => &[],
        }
    }
}

impl Serialize for QoeEvent {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("type".into(), Value::String(self.tag().into()));
        match self {
            QoeEvent::FlowOpened { flow, ts } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert("ts_us".into(), ts.as_micros().to_value());
            }
            QoeEvent::WindowReport {
                flow,
                report,
                provisional,
            } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert("provisional".into(), Value::Bool(*provisional));
                m.insert("report".into(), report.to_value());
            }
            QoeEvent::FlowEvicted {
                flow,
                reason,
                final_reports,
            } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert(
                    "reason".into(),
                    Value::String(
                        match reason {
                            EvictReason::Idle => "idle",
                            EvictReason::EndOfStream => "end_of_stream",
                        }
                        .into(),
                    ),
                );
                m.insert("final_reports".into(), final_reports.to_value());
            }
            QoeEvent::ParseDrop { ts, reason } => {
                m.insert("ts_us".into(), ts.as_micros().to_value());
                m.insert("reason".into(), Value::String(reason.tag().into()));
                match reason {
                    ParseDropReason::Truncated { layer } | ParseDropReason::Checksum { layer } => {
                        m.insert("layer".into(), Value::String((*layer).into()));
                    }
                    ParseDropReason::Malformed { layer, what } => {
                        m.insert("layer".into(), Value::String((*layer).into()));
                        m.insert("what".into(), Value::String((*what).into()));
                    }
                    _ => {}
                }
            }
        }
        Value::Object(m)
    }
}

/// Running counters over everything a [`Monitor`] has seen.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct MonitorStats {
    /// Packets routed to a flow engine.
    pub packets: u64,
    /// Packets dropped at parse time (see [`QoeEvent::ParseDrop`]).
    pub parse_drops: u64,
    /// Flows opened.
    pub flows_opened: u64,
    /// Flows evicted (idle or end of stream).
    pub flows_evicted: u64,
    /// Final window reports emitted.
    pub window_reports: u64,
    /// Provisional (max-lag flush) reports emitted.
    pub provisional_reports: u64,
}

/// Typed configuration for a [`Monitor`].
///
/// Construct with [`MonitorBuilder::new`], chain the knobs you care
/// about, and [`MonitorBuilder::build`]. Every knob has a paper-faithful
/// default for the chosen VCA.
pub struct MonitorBuilder {
    vca: VcaKind,
    method: EstimationMethod,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<RandomForest>,
    shards: usize,
    idle_timeout: Timestamp,
    flush_after: Option<u32>,
    sink: Option<Box<dyn FnMut(QoeEvent) + Send>>,
}

impl MonitorBuilder {
    /// Starts from the paper's configuration for a VCA: auto method
    /// selection (RTP when it parses, IP/UDP otherwise), exact statistics,
    /// 1-second windows, 8 shards, 60-second idle eviction, no max-lag
    /// flush.
    pub fn new(vca: VcaKind) -> Self {
        MonitorBuilder {
            vca,
            method: EstimationMethod::AutoHeuristic,
            config: EngineConfig::paper(vca),
            payload_map: PayloadMap::lab(vca),
            model: None,
            shards: 8,
            idle_timeout: Timestamp::from_secs(60),
            flush_after: None,
            sink: None,
        }
    }

    /// Selects the estimation method (fixed, or RTP-confidence auto).
    pub fn method(mut self, method: EstimationMethod) -> Self {
        self.method = method;
        self
    }

    /// Order-statistic accumulation: `Exact` (batch-bit-compatible) or
    /// `Sketch` (strict O(1) per-flow state).
    pub fn stats_mode(mut self, stats: StatsMode) -> Self {
        self.config.stats = stats;
        self
    }

    /// Prediction window length in seconds (default 1).
    pub fn window_secs(mut self, secs: u32) -> Self {
        assert!(secs > 0, "zero window");
        self.config.window_secs = secs;
        self
    }

    /// Replaces the full engine configuration (power users; the other
    /// knobs are views onto it).
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Payload-type → media mapping for the RTP methods (default: the
    /// lab mapping of the chosen VCA).
    pub fn payload_map(mut self, map: PayloadMap) -> Self {
        self.payload_map = map;
        self
    }

    /// Attaches a trained frame-rate model; ML engines include its
    /// prediction in every report.
    pub fn model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    /// Number of flow-table shards (default 8).
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "zero shards");
        self.shards = n;
        self
    }

    /// Evicts flows with no packet for this long, sealing their final
    /// windows into a [`QoeEvent::FlowEvicted`] (default 60 s).
    pub fn idle_timeout(mut self, timeout: Timestamp) -> Self {
        assert!(timeout.as_micros() > 0, "non-positive idle timeout");
        self.idle_timeout = timeout;
        self
    }

    /// Max-lag flush: after `k` packets on a flow without a finalized
    /// window, emit provisional snapshots of its pending windows (marked
    /// `provisional`; a later final report supersedes them). Default off —
    /// exactness-first consumers see only final windows.
    pub fn flush_after_packets(mut self, k: u32) -> Self {
        assert!(k > 0, "zero flush threshold");
        self.flush_after = Some(k);
        self
    }

    /// Delivers events to a callback as they happen instead of queueing
    /// them for [`Monitor::drain_events`].
    pub fn sink(mut self, sink: impl FnMut(QoeEvent) + Send + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Constructs the monitor.
    pub fn build(self) -> Monitor {
        let config = self.config;
        let payload_map = self.payload_map;
        // The facade always inserts engines explicitly (method selection
        // can depend on probation evidence, not just the key), so the
        // table's first-sight factory must never fire.
        let table = FlowTable::new(self.shards, self.idle_timeout, |_: &FlowKey| {
            unreachable!("the facade inserts engines explicitly")
        });
        Monitor {
            wants_rtp: self.method.is_auto()
                || matches!(
                    self.method,
                    EstimationMethod::Fixed(Method::RtpHeuristic | Method::RtpMl)
                ),
            method: self.method,
            config,
            payload_map,
            model: self.model,
            idle_timeout_us: self.idle_timeout.as_micros(),
            flush_after: self.flush_after,
            table,
            meta: HashMap::new(),
            pending: HashMap::new(),
            now: None,
            behind_streak: 0,
            last_evict_us: i64::MIN,
            events: VecDeque::new(),
            sink: self.sink,
            stats: MonitorStats::default(),
            vca: self.vca,
        }
    }
}

impl std::fmt::Debug for MonitorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorBuilder")
            .field("vca", &self.vca)
            .field("method", &self.method)
            .field("window_secs", &self.config.window_secs)
            .field("stats", &self.config.stats)
            .field("shards", &self.shards)
            .field("idle_timeout_us", &self.idle_timeout.as_micros())
            .field("flush_after", &self.flush_after)
            .finish_non_exhaustive()
    }
}

/// Builds one per-flow engine for a resolved method — the single
/// construction point for the raw engines (the batch pipeline and the
/// monitor both come through here).
pub fn build_engine(
    method: Method,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<&RandomForest>,
) -> BoxedEngine {
    match method {
        Method::IpUdpHeuristic => Box::new(IpUdpHeuristicEngine::new(config)),
        Method::RtpHeuristic => Box::new(RtpHeuristicEngine::new(config, payload_map)),
        Method::IpUdpMl => {
            let engine = IpUdpMlEngine::new(config);
            Box::new(match model {
                Some(m) => engine.with_model(m.clone()),
                None => engine,
            })
        }
        Method::RtpMl => {
            let engine = RtpMlEngine::new(config, payload_map);
            Box::new(match model {
                Some(m) => engine.with_model(m.clone()),
                None => engine,
            })
        }
    }
}

/// Per-flow facade bookkeeping (the engine itself lives in the table).
struct FlowMeta {
    /// Packets pushed since the last finalized window (max-lag flush).
    since_report: u32,
    /// Still buffering toward the RTP-confidence decision (auto methods
    /// only); cached here so the hot path pays one map probe, not a
    /// table lookup per packet.
    probation: bool,
}

/// A flow still in RTP-confidence probation: packets buffered until the
/// method decision.
struct PendingFlow {
    packets: Vec<TracePacket>,
    rtp_ok: usize,
    last_seen: Timestamp,
}

impl PendingFlow {
    fn confident_rtp(&self) -> bool {
        !self.packets.is_empty() && self.rtp_ok as f64 / self.packets.len() as f64 >= RTP_CONFIDENCE
    }
}

/// A passive QoE monitor: feed it raw packets, read typed [`QoeEvent`]s.
///
/// Owns the sharded flow table and one estimation engine per active flow;
/// flows idle past the configured timeout are evicted with their final
/// windows attached to the eviction event, so no tail report is ever
/// silently lost. See [`MonitorBuilder`] for configuration and the
/// [module docs](self) for a runnable example.
pub struct Monitor {
    method: EstimationMethod,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<RandomForest>,
    idle_timeout_us: i64,
    flush_after: Option<u32>,
    /// Whether any configured method can consume an RTP header — gates
    /// the per-packet RTP parse-attempt on the raw ingestion path.
    wants_rtp: bool,
    table: FlowTable<BoxedEngine>,
    meta: HashMap<FlowKey, FlowMeta>,
    pending: HashMap<FlowKey, PendingFlow>,
    /// Stream clock: max ingest timestamp, bounded-advance so one corrupt
    /// far-future timestamp cannot mass-evict healthy flows.
    now: Option<Timestamp>,
    /// Consecutive packets arriving more than one idle timeout behind
    /// `now` — corroboration that `now` itself came from a corrupt
    /// timestamp and must re-anchor backward.
    behind_streak: u32,
    last_evict_us: i64,
    events: VecDeque<QoeEvent>,
    sink: Option<Box<dyn FnMut(QoeEvent) + Send>>,
    stats: MonitorStats,
    vca: VcaKind,
}

impl Monitor {
    /// Shorthand for [`MonitorBuilder::new`].
    pub fn builder(vca: VcaKind) -> MonitorBuilder {
        MonitorBuilder::new(vca)
    }

    /// The VCA profile the monitor was configured for.
    pub fn vca(&self) -> VcaKind {
        self.vca
    }

    /// Running ingest/emit counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Flows currently tracked (probation included).
    pub fn active_flows(&self) -> usize {
        self.table.len() + self.pending.len()
    }

    /// Queued events not yet drained (always 0 when a sink is set).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drains every queued event, oldest first.
    pub fn drain_events(&mut self) -> impl Iterator<Item = QoeEvent> + '_ {
        self.events.drain(..)
    }

    // -- ingestion ---------------------------------------------------------

    /// Ingests one raw link-layer (Ethernet II) frame.
    pub fn ingest_frame(&mut self, ts: Timestamp, frame: &[u8]) {
        match UdpDatagram::parse(frame) {
            Ok(Some(dg)) => self.ingest_datagram(ts, &dg),
            Ok(None) => self.drop_packet(ts, ParseDropReason::NotUdp),
            Err(e) => self.drop_packet(ts, ParseDropReason::from(&e)),
        }
    }

    /// Ingests one raw IP packet (pcap `LINKTYPE_RAW` and friends).
    pub fn ingest_ip(&mut self, ts: Timestamp, bytes: &[u8]) {
        let parsed = match bytes.first().map(|b| b >> 4) {
            Some(4) => UdpDatagram::parse_ipv4(bytes),
            Some(6) => UdpDatagram::parse_ipv6(bytes),
            Some(_) => Err(NetError::Malformed {
                layer: "ip",
                what: "version is neither 4 nor 6",
            }),
            None => Err(NetError::Truncated {
                layer: "ip",
                needed: 1,
                got: 0,
            }),
        };
        match parsed {
            Ok(Some(dg)) => self.ingest_datagram(ts, &dg),
            Ok(None) => self.drop_packet(ts, ParseDropReason::NotUdp),
            Err(e) => self.drop_packet(ts, ParseDropReason::from(&e)),
        }
    }

    /// Ingests one pcap record, dispatching on the file's link type.
    pub fn ingest_pcap_record(&mut self, link: LinkType, rec: &PcapRecord) {
        match link {
            LinkType::Ethernet => self.ingest_frame(rec.ts, &rec.data),
            LinkType::RawIp => self.ingest_ip(rec.ts, &rec.data),
            LinkType::Other(_) => self.drop_packet(
                rec.ts,
                ParseDropReason::Malformed {
                    layer: "pcap",
                    what: "unsupported link type",
                },
            ),
        }
    }

    /// Ingests one decoded capture (timestamp + UDP datagram).
    pub fn ingest_captured(&mut self, cap: &CapturedPacket) {
        self.ingest_datagram(cap.ts, &cap.datagram);
    }

    fn ingest_datagram(&mut self, ts: Timestamp, dg: &UdpDatagram) {
        let (flow, _) = dg.flow_key();
        // The RTP parse-attempt: confidence over these results decides
        // the method for auto-configured monitors, and the header feeds
        // the RTP engines. Non-RTP payloads simply leave `rtp` empty;
        // fixed IP/UDP monitors (the paper's no-RTP-access deployment)
        // skip the attempt entirely — nothing consumes it.
        let rtp = if self.wants_rtp {
            RtpHeader::parse(&dg.payload).ok()
        } else {
            None
        };
        self.ingest_packet(
            flow,
            TracePacket {
                ts,
                size: dg.ip_total_len,
                rtp,
                truth_media: None,
            },
        );
    }

    /// Ingests one pre-parsed packet on an explicit flow — the entry point
    /// for simulated feeds and replays that never materialized wire bytes.
    pub fn ingest_packet(&mut self, flow: FlowKey, pkt: TracePacket) {
        if pkt.ts.as_micros() < 0 {
            self.drop_packet(pkt.ts, ParseDropReason::NegativeTimestamp);
            return;
        }
        self.advance_clock(pkt.ts);
        self.stats.packets += 1;

        let needs_probation = self.method.is_auto();
        let (is_new, in_probation) = match self.meta.entry(flow) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(FlowMeta {
                    since_report: 0,
                    probation: needs_probation,
                });
                (true, needs_probation)
            }
            std::collections::hash_map::Entry::Occupied(slot) => (false, slot.get().probation),
        };
        if is_new {
            self.stats.flows_opened += 1;
            self.emit(QoeEvent::FlowOpened { flow, ts: pkt.ts });
        }

        if is_new && !in_probation {
            let engine = build_engine(
                self.method.fallback(),
                self.config,
                self.payload_map,
                self.model.as_ref(),
            );
            self.table.insert(flow, engine, pkt.ts);
        }

        if in_probation {
            let pending = self.pending.entry(flow).or_insert_with(|| PendingFlow {
                packets: Vec::with_capacity(RTP_PROBATION_PACKETS),
                rtp_ok: 0,
                last_seen: pkt.ts,
            });
            pending.rtp_ok += usize::from(pkt.rtp.is_some());
            // Bounded advance, like FlowTable's last_seen: one corrupt
            // far-future timestamp must not exempt the flow from the
            // idle sweep forever.
            let bound = pending
                .last_seen
                .as_micros()
                .saturating_add(self.idle_timeout_us);
            pending.last_seen = pending
                .last_seen
                .max(Timestamp::from_micros(pkt.ts.as_micros().min(bound)));
            pending.packets.push(pkt);
            if pending.packets.len() >= RTP_PROBATION_PACKETS {
                self.resolve_pending(flow);
            }
        } else {
            let reports = self.table.push(flow, &pkt);
            self.account_reports(flow, reports, 1);
        }

        self.maybe_evict();
    }

    /// Seals and reports every remaining flow, returning all queued
    /// events (when a sink is set they have already been delivered and
    /// the returned list holds only what the sink had not consumed —
    /// i.e. nothing).
    pub fn finish(mut self) -> Vec<QoeEvent> {
        let keys: Vec<FlowKey> = self.pending.keys().copied().collect();
        for flow in keys {
            self.resolve_pending(flow);
        }
        let table = std::mem::replace(
            &mut self.table,
            FlowTable::new(1, Timestamp::from_secs(1), |_| unreachable!("drained")),
        );
        for (flow, final_reports) in table.finish_all() {
            self.seal_flow(flow, EvictReason::EndOfStream, final_reports);
        }
        self.events.into_iter().collect()
    }

    // -- internals ---------------------------------------------------------

    /// Advances the stream clock by at most one idle timeout per packet,
    /// so a single corrupt far-future timestamp (which the engines
    /// quarantine) cannot fast-forward time and mass-evict healthy flows.
    /// The inverse corruption — the *first* packet carrying the bogus
    /// timestamp — would otherwise pin the clock forever (sane traffic is
    /// all "in the past", and a pinned clock never sweeps idle flows
    /// again); when enough consecutive packets agree the clock is more
    /// than one idle timeout ahead of reality, it re-anchors backward.
    fn advance_clock(&mut self, ts: Timestamp) {
        let Some(now) = self.now else {
            self.now = Some(ts);
            return;
        };
        if now.as_micros().saturating_sub(ts.as_micros()) > self.idle_timeout_us {
            self.behind_streak += 1;
            if self.behind_streak >= crate::engine::DISCONTINUITY_CORROBORATION {
                self.behind_streak = 0;
                self.now = Some(ts);
                self.last_evict_us = self.last_evict_us.min(ts.as_micros());
            }
            return;
        }
        self.behind_streak = 0;
        self.now = Some(
            now.max(Timestamp::from_micros(
                ts.as_micros()
                    .min(now.as_micros().saturating_add(self.idle_timeout_us)),
            )),
        );
    }

    /// Decides a probation flow's method from its RTP parse confidence,
    /// builds the engine, and replays the buffered packets through it.
    fn resolve_pending(&mut self, flow: FlowKey) {
        let Some(pending) = self.pending.remove(&flow) else {
            return;
        };
        let method = if pending.confident_rtp() {
            self.method.preferred()
        } else {
            self.method.fallback()
        };
        let engine = build_engine(method, self.config, self.payload_map, self.model.as_ref());
        let first_seen = pending.packets.first().map_or(pending.last_seen, |p| p.ts);
        self.table.insert(flow, engine, first_seen);
        if let Some(meta) = self.meta.get_mut(&flow) {
            meta.probation = false;
        }
        let mut reports = Vec::new();
        for pkt in &pending.packets {
            reports.extend(self.table.push(flow, pkt));
        }
        self.account_reports(flow, reports, pending.packets.len() as u32);
    }

    /// Emits finalized reports for a flow and runs the max-lag flush
    /// bookkeeping for the `pushed` packets that produced them.
    fn account_reports(&mut self, flow: FlowKey, reports: Vec<WindowReport>, pushed: u32) {
        let finalized = !reports.is_empty();
        for report in reports {
            self.stats.window_reports += 1;
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional: false,
            });
        }
        let Some(k) = self.flush_after else {
            return;
        };
        let Some(meta) = self.meta.get_mut(&flow) else {
            return;
        };
        meta.since_report = if finalized {
            0
        } else {
            meta.since_report + pushed
        };
        if meta.since_report >= k {
            meta.since_report = 0;
            let snapshots = self
                .table
                .get_mut(&flow)
                .map(|e| e.provisional())
                .unwrap_or_default();
            for report in snapshots {
                self.stats.provisional_reports += 1;
                self.emit(QoeEvent::WindowReport {
                    flow,
                    report,
                    provisional: true,
                });
            }
        }
    }

    /// Periodic idle sweep over both established and probation flows.
    fn maybe_evict(&mut self) {
        let Some(now) = self.now else { return };
        if now.as_micros().saturating_sub(self.last_evict_us) < EVICT_CHECK_US {
            return;
        }
        self.last_evict_us = now.as_micros();
        for (flow, final_reports) in self.table.evict_idle(now) {
            self.seal_flow(flow, EvictReason::Idle, final_reports);
        }
        // Like FlowTable::evict_idle: reclaim probation flows that went
        // idle, and ones whose last_seen claims to be from far in the
        // future (a corrupt timestamp that slipped in before clamping).
        let deadline = now.as_micros() - self.idle_timeout_us;
        let future_bound = now.as_micros().saturating_add(self.idle_timeout_us);
        let stale: Vec<FlowKey> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                p.last_seen.as_micros() < deadline || p.last_seen.as_micros() > future_bound
            })
            .map(|(k, _)| *k)
            .collect();
        for flow in stale {
            // Decide with whatever probation evidence exists, replay, and
            // seal immediately: short flows still get their windows.
            self.resolve_pending(flow);
            if let Some(mut engine) = self.table.remove(&flow) {
                self.seal_flow(flow, EvictReason::Idle, engine.finish());
            }
        }
    }

    fn seal_flow(&mut self, flow: FlowKey, reason: EvictReason, final_reports: Vec<WindowReport>) {
        self.meta.remove(&flow);
        self.stats.flows_evicted += 1;
        self.stats.window_reports += final_reports.len() as u64;
        self.emit(QoeEvent::FlowEvicted {
            flow,
            reason,
            final_reports,
        });
    }

    fn drop_packet(&mut self, ts: Timestamp, reason: ParseDropReason) {
        self.stats.parse_drops += 1;
        self.emit(QoeEvent::ParseDrop { ts, reason });
    }

    fn emit(&mut self, event: QoeEvent) {
        match &mut self.sink {
            Some(sink) => sink(event),
            None => self.events.push_back(event),
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("vca", &self.vca)
            .field("method", &self.method)
            .field("active_flows", &self.active_flows())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn flow_key(n: u8) -> FlowKey {
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, 0, n));
        let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
        FlowKey::canonical(server, 3478, client, 50_000 + u16::from(n), 17).0
    }

    fn pkt(us: i64, size: u16) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_micros(us),
            size,
            rtp: None,
            truth_media: None,
        }
    }

    fn video_stream(secs: i64) -> Vec<TracePacket> {
        let mut out = Vec::new();
        for f in 0..secs * 30 {
            let t0 = f * 33_333;
            let size = 1000 + ((f % 9) * 13) as u16;
            out.push(pkt(t0, size));
            out.push(pkt(t0 + 300, size));
        }
        out
    }

    fn fixed(method: Method) -> MonitorBuilder {
        MonitorBuilder::new(VcaKind::Teams).method(EstimationMethod::Fixed(method))
    }

    fn window_reports(events: &[QoeEvent]) -> Vec<&WindowReport> {
        events
            .iter()
            .filter_map(|e| match e {
                QoeEvent::WindowReport {
                    report,
                    provisional: false,
                    ..
                } => Some(report),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn builder_defaults_are_paper_shaped() {
        let m = MonitorBuilder::new(VcaKind::Webex).build();
        assert_eq!(m.vca(), VcaKind::Webex);
        assert_eq!(m.config.window_secs, 1);
        assert_eq!(m.active_flows(), 0);
        assert_eq!(m.stats().packets, 0);
    }

    #[test]
    fn single_flow_emits_open_windows_and_seal() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(4) {
            m.ingest_packet(flow, p);
        }
        let events = m.finish();
        assert!(matches!(events[0], QoeEvent::FlowOpened { .. }));
        // Mid-stream windows arrive as WindowReport events; the sealed
        // tail rides on the eviction event. Together: one per second.
        let (reason, final_reports) = events
            .iter()
            .find_map(|e| match e {
                QoeEvent::FlowEvicted {
                    reason,
                    final_reports,
                    ..
                } => Some((reason, final_reports)),
                _ => None,
            })
            .expect("finish seals the flow");
        assert_eq!(*reason, EvictReason::EndOfStream);
        let mut windows: Vec<u64> = window_reports(&events)
            .iter()
            .map(|r| r.window)
            .chain(final_reports.iter().map(|r| r.window))
            .collect();
        windows.sort_unstable();
        assert_eq!(windows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn idle_eviction_surfaces_tail_reports() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(5))
            .build();
        let a = flow_key(1);
        let b = flow_key(2);
        for p in video_stream(2) {
            m.ingest_packet(a, p);
        }
        // Flow B keeps the clock moving long after A went idle.
        for s in 0..10i64 {
            m.ingest_packet(b, pkt(2_000_000 + s * 1_000_000, 1100));
        }
        let events: Vec<QoeEvent> = m.drain_events().collect();
        let idle_evictions: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                QoeEvent::FlowEvicted {
                    flow,
                    reason: EvictReason::Idle,
                    final_reports,
                } => Some((flow, final_reports)),
                _ => None,
            })
            .collect();
        assert_eq!(idle_evictions.len(), 1);
        assert_eq!(*idle_evictions[0].0, a);
        assert!(
            !idle_evictions[0].1.is_empty(),
            "tail windows ride on the eviction event"
        );
    }

    #[test]
    fn auto_method_picks_rtp_for_rtp_flows() {
        use vcaml_rtp::RtpHeader;
        let mut m = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::AutoHeuristic)
            .build();
        let rtp_flow = flow_key(1);
        let plain_flow = flow_key(2);
        for f in 0..60i64 {
            let t0 = f * 33_333;
            for i in 0..2u16 {
                let mut p = pkt(t0 + i64::from(i) * 300, 1100);
                p.rtp = Some(RtpHeader::basic(
                    102,
                    (f * 2) as u16 + i,
                    (f * 3000) as u32,
                    1,
                    i == 1,
                ));
                m.ingest_packet(rtp_flow, p);
                m.ingest_packet(plain_flow, pkt(t0 + i64::from(i) * 300, 1100));
            }
        }
        let events = m.finish();
        let method_of = |flow: FlowKey| {
            events
                .iter()
                .find_map(|e| match e {
                    QoeEvent::WindowReport {
                        flow: f, report, ..
                    } if *f == flow => Some(report.method),
                    _ => None,
                })
                .expect("flow reported")
        };
        assert_eq!(method_of(rtp_flow), Method::RtpHeuristic);
        assert_eq!(method_of(plain_flow), Method::IpUdpHeuristic);
    }

    #[test]
    fn probation_replay_matches_direct_engine() {
        // Auto selection buffers the first packets; the replay must make
        // the flow's reports identical to a never-buffered run.
        let mut auto = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::AutoHeuristic)
            .build();
        let mut direct = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(3) {
            auto.ingest_packet(flow, p);
            direct.ingest_packet(flow, p);
        }
        let a = auto.finish();
        let d = direct.finish();
        let aw = window_reports(&a);
        let dw = window_reports(&d);
        assert_eq!(aw.len(), dw.len());
        for (x, y) in aw.iter().zip(&dw) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.estimate.unwrap(), y.estimate.unwrap());
        }
    }

    #[test]
    fn flush_after_packets_emits_provisional_windows() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .flush_after_packets(16)
            .build();
        let flow = flow_key(1);
        // One frame per second: nothing finalizes for a long time, so the
        // max-lag flush is the only source of freshness.
        for s in 0..3i64 {
            for i in 0..20i64 {
                m.ingest_packet(flow, pkt(s * 1_000_000 + i * 40_000, 1100));
            }
        }
        let events: Vec<QoeEvent> = m.drain_events().collect();
        let provisional = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::WindowReport {
                        provisional: true,
                        ..
                    }
                )
            })
            .count();
        assert!(provisional > 0, "expected provisional snapshots");
        assert!(m.stats().provisional_reports as usize == provisional);
    }

    #[test]
    fn default_has_no_provisional_reports() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(5) {
            m.ingest_packet(flow, p);
        }
        let events = m.finish();
        assert!(events.iter().all(|e| !matches!(
            e,
            QoeEvent::WindowReport {
                provisional: true,
                ..
            }
        )));
    }

    #[test]
    fn sink_receives_events_instead_of_queue() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut m = fixed(Method::IpUdpHeuristic)
            .sink(move |e| seen2.lock().unwrap().push(e.tag()))
            .build();
        let flow = flow_key(1);
        for p in video_stream(2) {
            m.ingest_packet(flow, p);
        }
        assert_eq!(m.pending_events(), 0);
        let leftover = m.finish();
        assert!(leftover.is_empty());
        let tags = seen.lock().unwrap();
        assert!(tags.contains(&"flow_opened"));
        assert!(tags.contains(&"window_report"));
        assert!(tags.contains(&"flow_evicted"));
    }

    #[test]
    fn negative_timestamps_classified() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        m.ingest_packet(flow_key(1), pkt(-5, 1100));
        let events: Vec<QoeEvent> = m.drain_events().collect();
        assert!(matches!(
            events[0],
            QoeEvent::ParseDrop {
                reason: ParseDropReason::NegativeTimestamp,
                ..
            }
        ));
        assert_eq!(m.stats().parse_drops, 1);
        assert_eq!(m.active_flows(), 0);
    }

    #[test]
    fn raw_frame_ingestion_parses_and_routes() {
        use vcaml_netpkt::{EtherType, EthernetRepr, Ipv4Repr, MacAddr, UdpRepr};
        let payload = [0x16u8; 40]; // DTLS-looking, not RTP
        let eth = EthernetRepr {
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
        };
        let mut frame = vec![0u8; 14 + 20 + 8 + payload.len()];
        eth.emit(&mut frame);
        Ipv4Repr {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            protocol: vcaml_netpkt::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            ttl: 64,
            ident: 7,
        }
        .emit(&mut frame[14..]);
        frame[42..].copy_from_slice(&payload);
        UdpRepr {
            src_port: 40000,
            dst_port: 50000,
        }
        .emit_v4(
            &mut frame[34..],
            payload.len(),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
        );

        let mut m = fixed(Method::IpUdpHeuristic).build();
        m.ingest_frame(Timestamp::from_millis(1), &frame);
        assert_eq!(m.stats().packets, 1);
        assert_eq!(m.active_flows(), 1);

        // Truncating below the Ethernet header classifies as truncated.
        m.ingest_frame(Timestamp::from_millis(2), &frame[..10]);
        assert_eq!(m.stats().parse_drops, 1);
        let events: Vec<QoeEvent> = m.drain_events().collect();
        assert!(events.iter().any(|e| matches!(
            e,
            QoeEvent::ParseDrop {
                reason: ParseDropReason::Truncated { .. },
                ..
            }
        )));
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(2) {
            m.ingest_packet(flow, p);
        }
        m.ingest_packet(flow, pkt(-1, 100));
        for e in m.finish() {
            let line = e.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "single line: {line}");
            assert!(line.contains("\"type\""), "{line}");
        }
    }

    #[test]
    fn corrupt_first_timestamp_does_not_pin_the_clock() {
        // A corrupt far-future timestamp on the very first packet must
        // not anchor the stream clock a year ahead: sane traffic "in the
        // past" re-anchors it backward, so idle sweeps keep working.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(5))
            .build();
        let a = flow_key(1);
        let b = flow_key(2);
        m.ingest_packet(a, pkt(year_us, 1100));
        for p in video_stream(2) {
            m.ingest_packet(a, p);
        }
        // Flow B keeps the (re-anchored) clock moving after A goes idle.
        for s in 0..10i64 {
            m.ingest_packet(b, pkt(2_000_000 + s * 1_000_000, 1100));
        }
        let idle_evictions = m
            .drain_events()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::FlowEvicted {
                        reason: EvictReason::Idle,
                        ..
                    }
                )
            })
            .count();
        assert!(
            idle_evictions >= 1,
            "idle sweeps must survive the corruption"
        );
        assert_eq!(m.active_flows(), 1, "only the live flow remains");
    }

    #[test]
    fn corrupt_future_timestamp_does_not_mass_evict() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(30))
            .build();
        let flow = flow_key(1);
        m.ingest_packet(flow, pkt(0, 1100));
        // A year-ahead corrupt timestamp advances the clock by at most one
        // idle timeout, so the healthy flow survives the next sweep.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        m.ingest_packet(flow, pkt(year_us, 1100));
        m.ingest_packet(flow, pkt(1_000_000, 1100));
        assert_eq!(m.active_flows(), 1);
        let evicted = m
            .drain_events()
            .filter(|e| matches!(e, QoeEvent::FlowEvicted { .. }))
            .count();
        assert_eq!(evicted, 0);
    }
}
