//! The public monitoring facade: raw packets in, typed QoE events out.
//!
//! This module is the stable contract of the crate. A [`MonitorBuilder`]
//! turns typed configuration — estimation method (with RTP-confidence
//! fallback), [`StatsMode`], window length, idle-eviction policy, optional
//! max-lag flush — into a [`Monitor`] that owns the flow demultiplexer and
//! per-flow engines internally. Ingestion accepts raw link-layer bytes,
//! raw IP bytes, decoded [`CapturedPacket`]s, or pre-parsed
//! [`TracePacket`]s (for simulated feeds), performing the layered
//! eth→ip→udp parse and the RTP parse-attempt itself; callers never touch
//! `netpkt` internals. Output is a stream of [`QoeEvent`]s — window
//! reports, flow lifecycle, classified parse drops — drained as an
//! iterator or delivered to a callback sink, and serializable as JSON
//! lines for dashboards and log shippers.
//!
//! The monitor scales across cores: [`MonitorBuilder::threads`] pins
//! flow-table shards to dedicated worker threads — each packet is hashed
//! by flow to one worker over a bounded channel, each worker runs its
//! flows' engines, windowing, and eviction independently, and the merged
//! event stream preserves per-flow ordering with window-exact parity
//! against the sequential monitor (a tested invariant). The outgoing
//! event queue is bounded ([`MonitorBuilder::queue_capacity`]) with an
//! explicit [`OverflowPolicy`]: `Block` for end-to-end backpressure,
//! `DropOldest` for bounded memory with exact loss accounting via
//! [`QoeEvent::Dropped`] markers.
//!
//! The raw engines and `FlowTable` in [`crate::engine`] remain public for
//! parity tests and benchmarks but are documented-unstable; everything
//! else should come through here.
//!
//! ```
//! use vcaml::api::{EstimationMethod, MonitorBuilder, QoeEvent};
//! use vcaml::{Method, TracePacket};
//! use vcaml_netpkt::{FlowKey, Timestamp};
//! use vcaml_rtp::VcaKind;
//!
//! let mut monitor = MonitorBuilder::new(VcaKind::Teams)
//!     .method(EstimationMethod::Fixed(Method::IpUdpHeuristic))
//!     .build();
//! let (flow, _) = FlowKey::canonical(
//!     "10.0.0.1".parse().unwrap(), 50_000,
//!     "203.0.113.1".parse().unwrap(), 3_478, 17);
//! // 3 seconds of 30 fps video, two ~1.1 kB packets per frame.
//! for f in 0..90i64 {
//!     for i in 0..2i64 {
//!         monitor.ingest_packet(flow, TracePacket {
//!             ts: Timestamp::from_micros(f * 33_333 + i * 300),
//!             size: 1_100 + (f % 7) as u16,
//!             rtp: None,
//!             truth_media: None,
//!         });
//!     }
//! }
//! let events: Vec<QoeEvent> = monitor.finish();
//! assert!(events.iter().any(|e| matches!(e, QoeEvent::FlowOpened { .. })));
//! // Mid-stream windows arrive as WindowReport events; the sealed tail
//! // rides on the end-of-stream FlowEvicted event.
//! let windows: usize = events.iter().map(|e| match e {
//!     QoeEvent::WindowReport { .. } => 1,
//!     QoeEvent::FlowEvicted { final_reports, .. } => final_reports.len(),
//!     _ => 0,
//! }).sum();
//! assert_eq!(windows, 3, "one report per elapsed second");
//! ```

use crate::backpressure::EventQueue;
pub use crate::backpressure::OverflowPolicy;
use crate::control::{ControlShared, MonitorHandle};
use crate::engine::{EngineConfig, FlowTable, QoeEstimator, WindowReport};
use crate::engine::{IpUdpHeuristicEngine, IpUdpMlEngine, RtpHeuristicEngine, RtpMlEngine};
use crate::pipeline::Method;
use crate::trace::TracePacket;
use serde::{Map, Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use vcaml_features::StatsMode;
use vcaml_mlcore::RandomForest;
use vcaml_netpkt::pcap::PcapRecord;
use vcaml_netpkt::{CapturedPacket, Error as NetError, FlowKey, LinkType, Timestamp, UdpDatagram};
use vcaml_rtp::{PayloadMap, RtpHeader, VcaKind};

/// A per-flow estimator behind the facade. `Send` so a future sharded
/// monitor can move engines across worker threads.
pub type BoxedEngine = Box<dyn QoeEstimator + Send>;

/// A builder-configured per-event callback (see [`MonitorBuilder::sink`]).
type BuilderSink = Box<dyn FnMut(&QoeEvent) + Send>;

/// Packets buffered per flow before the RTP-confidence decision is made
/// (auto method selection only).
pub const RTP_PROBATION_PACKETS: usize = 16;

/// Fraction of probation packets that must parse as RTP for a flow to be
/// assigned the RTP variant of an auto method. A majority suffices:
/// real sessions lead with STUN/DTLS handshake packets that are not RTP,
/// and the IP/UDP fallback is always sound, so the preference only needs
/// media to be genuinely visible.
pub const RTP_CONFIDENCE: f64 = 0.5;

/// Packets between RTP-confidence re-probes on a flow that auto method
/// selection resolved to its IP/UDP fallback. A flow that led with a
/// non-RTP handshake (STUN/DTLS) and only then started media gets its
/// RTP engine after at most this many post-probation packets instead of
/// keeping the fallback forever.
pub const RTP_REPROBE_PACKETS: u32 = 256;

/// How often (in stream time) the monitor sweeps for idle flows.
const EVICT_CHECK_US: i64 = 1_000_000;

/// Default bound on the outgoing event queue (see
/// [`MonitorBuilder::queue_capacity`]).
pub const DEFAULT_QUEUE_CAPACITY: usize = 65_536;

/// Packets accumulated per shard before a batch is sent to its worker
/// (threaded monitors only). Batching amortizes the channel hand-off —
/// the dominant dispatch cost, so it is sized generously;
/// [`Monitor::drain_events`] and [`Monitor::finish`] flush partial
/// batches, so no packet waits forever.
const INGEST_BATCH: usize = 512;

/// How a [`Monitor`] picks the estimation method for each flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimationMethod {
    /// Every flow gets the named method.
    Fixed(Method),
    /// RTP Heuristic for flows whose early packets parse as RTP with
    /// confidence (a monitor inside the application's trust boundary),
    /// IP/UDP Heuristic otherwise.
    AutoHeuristic,
    /// RTP ML when RTP parses with confidence, IP/UDP ML otherwise.
    AutoMl,
}

impl EstimationMethod {
    /// Whether per-flow probation is needed before the method is known.
    fn is_auto(&self) -> bool {
        !matches!(self, EstimationMethod::Fixed(_))
    }

    /// The method used when RTP cannot be parsed confidently (and the
    /// factory default for fixed selection).
    fn fallback(&self) -> Method {
        match self {
            EstimationMethod::Fixed(m) => *m,
            EstimationMethod::AutoHeuristic => Method::IpUdpHeuristic,
            EstimationMethod::AutoMl => Method::IpUdpMl,
        }
    }

    /// The method used when RTP parses with confidence.
    fn preferred(&self) -> Method {
        match self {
            EstimationMethod::Fixed(m) => *m,
            EstimationMethod::AutoHeuristic => Method::RtpHeuristic,
            EstimationMethod::AutoMl => Method::RtpMl,
        }
    }
}

/// Why a raw packet was not ingested. Every packet offered to a
/// [`Monitor`] is either routed to a flow or accounted for with one of
/// these in a [`QoeEvent::ParseDrop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseDropReason {
    /// The buffer ended before a protocol header did.
    Truncated {
        /// Protocol layer that ran out of bytes.
        layer: &'static str,
    },
    /// A header field violated the codec's constraints (bad IHL, bad
    /// version, length mismatch, unsupported fragmentation, ...).
    Malformed {
        /// Protocol layer that failed to decode.
        layer: &'static str,
        /// The violated constraint.
        what: &'static str,
    },
    /// A header checksum did not verify.
    Checksum {
        /// Protocol layer whose checksum failed.
        layer: &'static str,
    },
    /// Well-formed, but not a UDP packet (ARP, TCP, ICMP, non-IP
    /// ethertype) — VCA media is UDP, so the monitor skips it.
    NotUdp,
    /// Capture timestamp before the epoch; outside every window.
    NegativeTimestamp,
}

impl ParseDropReason {
    /// Short machine-readable tag used in JSON output.
    pub fn tag(&self) -> &'static str {
        match self {
            ParseDropReason::Truncated { .. } => "truncated",
            ParseDropReason::Malformed { .. } => "malformed",
            ParseDropReason::Checksum { .. } => "checksum",
            ParseDropReason::NotUdp => "not_udp",
            ParseDropReason::NegativeTimestamp => "negative_timestamp",
        }
    }
}

impl From<&NetError> for ParseDropReason {
    fn from(e: &NetError) -> Self {
        match *e {
            NetError::Truncated { layer, .. } => ParseDropReason::Truncated { layer },
            NetError::Malformed { layer, what } => ParseDropReason::Malformed { layer, what },
            NetError::Checksum { layer } => ParseDropReason::Checksum { layer },
            // Unreachable from in-memory parsing; classified for totality.
            NetError::BadMagic(_) => ParseDropReason::Malformed {
                layer: "pcap",
                what: "bad magic",
            },
            NetError::Io(_) => ParseDropReason::Malformed {
                layer: "io",
                what: "read error",
            },
        }
    }
}

/// Why a flow left the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// No packet for longer than the idle timeout.
    Idle,
    /// [`Monitor::finish`] sealed every remaining flow.
    EndOfStream,
    /// An operator asked for the flow via
    /// [`MonitorHandle::evict_flow`](crate::control::MonitorHandle::evict_flow).
    Requested,
}

/// Deep copies of [`QoeEvent`] made over the process lifetime — the
/// enforcement hook for the event bus's zero-copy contract.
///
/// Events travel the whole delivery path (collector queue → runner →
/// every subscriber) as shared [`Arc<QoeEvent>`]s, so the per-event
/// fan-out never clones; this counter proves it. Consumers that take
/// owned copies for themselves (an example stashing events, a test
/// comparing streams) do count — the counter measures clones, not
/// blame.
static QOE_EVENT_CLONES: AtomicU64 = AtomicU64::new(0);

/// Total deep copies of [`QoeEvent`] made by this process so far. The
/// delivery path performs none (a tested invariant); consumers taking
/// owned copies for themselves do count — the counter measures clones,
/// not blame.
pub fn qoe_event_clone_count() -> u64 {
    QOE_EVENT_CLONES.load(Relaxed)
}

/// One event from the monitor's structured output stream.
#[derive(Debug)]
pub enum QoeEvent {
    /// First packet of a new flow was seen.
    FlowOpened {
        /// The flow's canonical 5-tuple.
        flow: FlowKey,
        /// Capture time of the first packet.
        ts: Timestamp,
    },
    /// A prediction window was emitted for a flow.
    WindowReport {
        /// The flow the window belongs to.
        flow: FlowKey,
        /// The window's metrics (estimate or feature vector, per method).
        report: WindowReport,
        /// True for max-lag flush snapshots: the metrics are lower bounds
        /// that a later final report for the same window supersedes.
        provisional: bool,
    },
    /// A flow was sealed; its remaining windows ride along so the tail of
    /// every call is observable even if the caller never polls.
    FlowEvicted {
        /// The flow's canonical 5-tuple.
        flow: FlowKey,
        /// Idle timeout or end of stream.
        reason: EvictReason,
        /// The flow's final windows, flushed by sealing.
        final_reports: Vec<WindowReport>,
    },
    /// A packet could not be ingested; the reason classifies the drop.
    ParseDrop {
        /// Capture time of the dropped packet.
        ts: Timestamp,
        /// Why it was dropped.
        reason: ParseDropReason,
    },
    /// Events were discarded because the bounded event queue overflowed
    /// under [`OverflowPolicy::DropOldest`]. The marker leads the next
    /// drained batch: everything it counts was older than the events
    /// that follow it, and `count` is exact.
    Dropped {
        /// How many events were discarded since the last drain.
        count: u64,
        /// Flow-attributed breakdown of `count`, sorted by flow —
        /// dashboards can show *which* flows lost freshness. Events with
        /// no flow (parse drops) are in `count` but not listed here, and
        /// attribution is bounded (4096 flows per interval) so `count`
        /// can exceed the breakdown's sum under extreme flow churn.
        per_flow: Vec<(FlowKey, u64)>,
    },
}

impl Clone for QoeEvent {
    /// A counted deep copy (see [`qoe_event_clone_count`]): the event
    /// bus never calls this on a delivery path — shared events clone the
    /// `Arc`, not the payload.
    fn clone(&self) -> Self {
        QOE_EVENT_CLONES.fetch_add(1, Relaxed);
        match self {
            QoeEvent::FlowOpened { flow, ts } => QoeEvent::FlowOpened {
                flow: *flow,
                ts: *ts,
            },
            QoeEvent::WindowReport {
                flow,
                report,
                provisional,
            } => QoeEvent::WindowReport {
                flow: *flow,
                report: report.clone(),
                provisional: *provisional,
            },
            QoeEvent::FlowEvicted {
                flow,
                reason,
                final_reports,
            } => QoeEvent::FlowEvicted {
                flow: *flow,
                reason: *reason,
                final_reports: final_reports.clone(),
            },
            QoeEvent::ParseDrop { ts, reason } => QoeEvent::ParseDrop {
                ts: *ts,
                reason: *reason,
            },
            QoeEvent::Dropped { count, per_flow } => QoeEvent::Dropped {
                count: *count,
                per_flow: per_flow.clone(),
            },
        }
    }
}

impl QoeEvent {
    /// Machine-readable event tag (the `type` field of the JSON form).
    pub fn tag(&self) -> &'static str {
        match self {
            QoeEvent::FlowOpened { .. } => "flow_opened",
            QoeEvent::WindowReport { .. } => "window_report",
            QoeEvent::FlowEvicted { .. } => "flow_evicted",
            QoeEvent::ParseDrop { .. } => "parse_drop",
            QoeEvent::Dropped { .. } => "dropped",
        }
    }

    /// One compact JSON object per event — the JSON-lines form consumed
    /// by dashboards and log shippers.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("event serialization is infallible") // lint: allow(no-unwrap-in-lib) -- serializing an in-memory event via the serde shim cannot fail
    }

    /// The flow this event belongs to (`None` for [`QoeEvent::ParseDrop`],
    /// which happens before flow attribution, and [`QoeEvent::Dropped`],
    /// which aggregates across flows).
    pub fn flow(&self) -> Option<FlowKey> {
        match self {
            QoeEvent::FlowOpened { flow, .. }
            | QoeEvent::WindowReport { flow, .. }
            | QoeEvent::FlowEvicted { flow, .. } => Some(*flow),
            QoeEvent::ParseDrop { .. } | QoeEvent::Dropped { .. } => None,
        }
    }

    /// The *finalized* window reports this event carries: the single
    /// report of a non-provisional [`QoeEvent::WindowReport`], or an
    /// eviction's sealed tail. Empty for everything else (including
    /// provisional max-lag snapshots, which a later final report
    /// supersedes) — so summing this across a monitor's whole event
    /// stream yields each flow's windows exactly once.
    pub fn final_reports(&self) -> &[WindowReport] {
        match self {
            QoeEvent::WindowReport {
                report,
                provisional: false,
                ..
            } => std::slice::from_ref(report),
            QoeEvent::FlowEvicted { final_reports, .. } => final_reports,
            QoeEvent::WindowReport { .. }
            | QoeEvent::FlowOpened { .. }
            | QoeEvent::ParseDrop { .. }
            | QoeEvent::Dropped { .. } => &[],
        }
    }
}

impl Serialize for QoeEvent {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("type".into(), Value::String(self.tag().into()));
        match self {
            QoeEvent::FlowOpened { flow, ts } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert("ts_us".into(), ts.as_micros().to_value());
            }
            QoeEvent::WindowReport {
                flow,
                report,
                provisional,
            } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert("provisional".into(), Value::Bool(*provisional));
                m.insert("report".into(), report.to_value());
            }
            QoeEvent::FlowEvicted {
                flow,
                reason,
                final_reports,
            } => {
                m.insert("flow".into(), Value::String(flow.to_string()));
                m.insert(
                    "reason".into(),
                    Value::String(
                        match reason {
                            EvictReason::Idle => "idle",
                            EvictReason::EndOfStream => "end_of_stream",
                            EvictReason::Requested => "requested",
                        }
                        .into(),
                    ),
                );
                m.insert("final_reports".into(), final_reports.to_value());
            }
            QoeEvent::ParseDrop { ts, reason } => {
                m.insert("ts_us".into(), ts.as_micros().to_value());
                m.insert("reason".into(), Value::String(reason.tag().into()));
                match reason {
                    ParseDropReason::Truncated { layer } | ParseDropReason::Checksum { layer } => {
                        m.insert("layer".into(), Value::String((*layer).into()));
                    }
                    ParseDropReason::Malformed { layer, what } => {
                        m.insert("layer".into(), Value::String((*layer).into()));
                        m.insert("what".into(), Value::String((*what).into()));
                    }
                    _ => {}
                }
            }
            QoeEvent::Dropped { count, per_flow } => {
                m.insert("count".into(), count.to_value());
                if !per_flow.is_empty() {
                    let mut flows = Map::new();
                    for (flow, n) in per_flow {
                        flows.insert(flow.to_string(), n.to_value());
                    }
                    m.insert("per_flow".into(), Value::Object(flows));
                }
            }
        }
        Value::Object(m)
    }
}

/// Running counters over everything a [`Monitor`] has seen.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MonitorStats {
    /// Packets routed to a flow engine.
    pub packets: u64,
    /// Packets dropped at parse time (see [`QoeEvent::ParseDrop`]).
    pub parse_drops: u64,
    /// Flows opened.
    pub flows_opened: u64,
    /// Flows evicted (idle or end of stream).
    pub flows_evicted: u64,
    /// Final window reports emitted.
    pub window_reports: u64,
    /// Provisional (max-lag flush or method-upgrade boundary) reports
    /// emitted.
    pub provisional_reports: u64,
    /// Events discarded by the bounded event queue
    /// ([`OverflowPolicy::DropOldest`] only).
    pub events_dropped: u64,
    /// Flow-attributed breakdown of `events_dropped`, sorted by flow.
    /// Events with no flow (parse drops) are counted in `events_dropped`
    /// but not listed here, and attribution is bounded (4096 flows over
    /// the monitor's lifetime) so long-running monitors with endless
    /// flow churn keep O(1) accounting state.
    pub dropped_by_flow: Vec<(FlowKey, u64)>,
}

/// Shared, thread-safe counter cells behind [`MonitorStats`]: shard
/// workers bump them from their own threads, the monitor snapshots them
/// on [`Monitor::stats`]. On a threaded monitor the snapshot is
/// eventually consistent — packets still queued on a shard channel are
/// not yet counted.
#[derive(Debug, Default)]
pub(crate) struct StatsCells {
    packets: AtomicU64,
    parse_drops: AtomicU64,
    flows_opened: AtomicU64,
    flows_evicted: AtomicU64,
    window_reports: AtomicU64,
    provisional_reports: AtomicU64,
}

impl StatsCells {
    pub(crate) fn snapshot(
        &self,
        events_dropped: u64,
        dropped_by_flow: Vec<(FlowKey, u64)>,
    ) -> MonitorStats {
        MonitorStats {
            packets: self.packets.load(Relaxed),
            parse_drops: self.parse_drops.load(Relaxed),
            flows_opened: self.flows_opened.load(Relaxed),
            flows_evicted: self.flows_evicted.load(Relaxed),
            window_reports: self.window_reports.load(Relaxed),
            provisional_reports: self.provisional_reports.load(Relaxed),
            events_dropped,
            dropped_by_flow,
        }
    }
}

/// Typed configuration for a [`Monitor`].
///
/// Construct with [`MonitorBuilder::new`], chain the knobs you care
/// about, and [`MonitorBuilder::build`]. Every knob has a paper-faithful
/// default for the chosen VCA.
pub struct MonitorBuilder {
    vca: VcaKind,
    method: EstimationMethod,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<RandomForest>,
    shards: usize,
    threads: usize,
    queue_capacity: usize,
    overflow: OverflowPolicy,
    idle_timeout: Timestamp,
    flush_after: Option<u32>,
    sink: Option<BuilderSink>,
}

impl MonitorBuilder {
    /// Starts from the paper's configuration for a VCA: auto method
    /// selection (RTP when it parses, IP/UDP otherwise), exact statistics,
    /// 1-second windows, 8 shards on one thread, a
    /// [`DEFAULT_QUEUE_CAPACITY`]-event queue with [`OverflowPolicy::Block`],
    /// 60-second idle eviction, no max-lag flush.
    pub fn new(vca: VcaKind) -> Self {
        MonitorBuilder {
            vca,
            method: EstimationMethod::AutoHeuristic,
            config: EngineConfig::paper(vca),
            payload_map: PayloadMap::lab(vca),
            model: None,
            shards: 8,
            threads: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            overflow: OverflowPolicy::Block,
            idle_timeout: Timestamp::from_secs(60),
            flush_after: None,
            sink: None,
        }
    }

    /// Selects the estimation method (fixed, or RTP-confidence auto).
    pub fn method(mut self, method: EstimationMethod) -> Self {
        self.method = method;
        self
    }

    /// Order-statistic accumulation: `Exact` (batch-bit-compatible) or
    /// `Sketch` (strict O(1) per-flow state).
    pub fn stats_mode(mut self, stats: StatsMode) -> Self {
        self.config.stats = stats;
        self
    }

    /// Prediction window length in seconds (default 1).
    pub fn window_secs(mut self, secs: u32) -> Self {
        assert!(secs > 0, "zero window");
        self.config.window_secs = secs;
        self
    }

    /// Replaces the full engine configuration (power users; the other
    /// knobs are views onto it).
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Payload-type → media mapping for the RTP methods (default: the
    /// lab mapping of the chosen VCA).
    pub fn payload_map(mut self, map: PayloadMap) -> Self {
        self.payload_map = map;
        self
    }

    /// Attaches a trained frame-rate model; ML engines include its
    /// prediction in every report.
    pub fn model(mut self, model: RandomForest) -> Self {
        self.model = Some(model);
        self
    }

    /// Number of flow-table shards (default 8). With worker threads
    /// configured, shards are distributed across the workers.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "zero shards");
        self.shards = n;
        self
    }

    /// Number of shard worker threads (default 1 = fully inline, no
    /// threads spawned). With `n ≥ 2` the monitor hashes each packet's
    /// flow to one of `n` dedicated shard workers over a bounded channel;
    /// each worker runs its flows' engines, windowing, probation, and
    /// idle eviction independently, and the merged event stream preserves
    /// per-flow ordering (a flow lives on exactly one worker).
    ///
    /// `n == 0` means *auto*: size the workers from
    /// [`std::thread::available_parallelism`] at [`MonitorBuilder::build`]
    /// time (1 worker per core, inline when only one core is visible).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Bound on the outgoing event queue, in events (default
    /// [`DEFAULT_QUEUE_CAPACITY`]). Also sizes the per-worker ingest
    /// channels of a threaded monitor, so one knob controls end-to-end
    /// buffering. What happens at the bound is the
    /// [`MonitorBuilder::overflow`] policy.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n >= 1, "zero queue capacity");
        self.queue_capacity = n;
        self
    }

    /// Overflow policy of the bounded event queue (default
    /// [`OverflowPolicy::Block`]): block producers until the consumer
    /// drains, or drop the oldest events and account for them with a
    /// [`QoeEvent::Dropped`] marker.
    pub fn overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Evicts flows with no packet for this long, sealing their final
    /// windows into a [`QoeEvent::FlowEvicted`] (default 60 s).
    pub fn idle_timeout(mut self, timeout: Timestamp) -> Self {
        assert!(timeout.as_micros() > 0, "non-positive idle timeout");
        self.idle_timeout = timeout;
        self
    }

    /// Max-lag flush: after `k` packets on a flow without a finalized
    /// window, emit provisional snapshots of its pending windows (marked
    /// `provisional`; a later final report supersedes them). Default off —
    /// exactness-first consumers see only final windows.
    pub fn flush_after_packets(mut self, k: u32) -> Self {
        assert!(k > 0, "zero flush threshold");
        self.flush_after = Some(k);
        self
    }

    /// Delivers events to a callback as they happen instead of queueing
    /// them for [`Monitor::drain_events`]. The callback borrows the
    /// event (events are shared on the delivery path); clone explicitly
    /// if the consumer needs ownership.
    pub fn sink(mut self, sink: impl FnMut(&QoeEvent) + Send + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Constructs the monitor, spawning its shard workers when
    /// [`MonitorBuilder::threads`] resolves to ≥ 2 (`threads(0)` sizes
    /// them from [`std::thread::available_parallelism`]).
    pub fn build(self) -> Monitor {
        let threads = match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        let inline = threads == 1;
        let stats = Arc::new(StatsCells::default());
        let control = Arc::new(ControlShared::new(if inline { 0 } else { threads }));
        // A single-threaded monitor must never park on its own queue
        // (the producer is the consumer), so Block only waits when shard
        // workers exist.
        let queue = Arc::new(EventQueue::new(self.queue_capacity, self.overflow, !inline));
        let deliver = match self.sink {
            Some(sink) => Deliver::Sink(Arc::new(Mutex::new(sink))),
            None => Deliver::Queue(Arc::clone(&queue)),
        };
        let shard_state = |n_shards: usize, worker: usize| ShardState {
            worker,
            method: self.method,
            config: self.config,
            payload_map: self.payload_map,
            model: self.model.clone(),
            idle_timeout_us: self.idle_timeout.as_micros(),
            flush_after: self.flush_after,
            window_us: i64::from(self.config.window_secs) * 1_000_000,
            // The facade always inserts engines explicitly (method
            // selection can depend on probation evidence, not just the
            // key), so the table's first-sight factory must never fire.
            table: FlowTable::new(n_shards, self.idle_timeout, |_: &FlowKey| {
                unreachable!("the facade inserts engines explicitly")
            }),
            pending: HashMap::new(),
            now: None,
            behind_streak: 0,
            last_evict_us: i64::MIN,
            stats: Arc::clone(&stats),
            control: Arc::clone(&control),
            seen_flush_epoch: 0,
            evict_cursor: 0,
            out: Vec::new(),
            reports: Vec::new(),
            snapshots: Vec::new(),
        };
        let dispatch = if inline {
            Dispatch::Inline(Box::new(shard_state(self.shards, 0)))
        } else {
            // Distribute the configured shards across the workers; the
            // ingest channels share the event queue's capacity knob
            // (counted in batches) so one bound governs the pipeline.
            let inner_shards = (self.shards / threads).max(1);
            let channel_batches = (self.queue_capacity / INGEST_BATCH).max(1);
            let mut senders = Vec::with_capacity(threads);
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let (tx, rx) = sync_channel::<ShardMsg>(channel_batches);
                let state = shard_state(inner_shards, worker);
                let deliver = deliver.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("vcaml-shard-{worker}"))
                    .spawn(move || worker_loop(state, rx, deliver, worker))
                    .expect("spawn shard worker"); // lint: allow(no-unwrap-in-lib) -- spawn fails only on OS thread exhaustion; no recovery at this layer
                senders.push(tx);
                handles.push(handle);
            }
            Dispatch::Threaded {
                batches: senders.iter().map(|_| Vec::new()).collect(),
                senders,
                handles,
            }
        };
        Monitor {
            wants_rtp: self.method.is_auto()
                || matches!(
                    self.method,
                    EstimationMethod::Fixed(Method::RtpHeuristic | Method::RtpMl)
                ),
            method: self.method,
            vca: self.vca,
            stats,
            stage_on_full: !inline
                && self.overflow == OverflowPolicy::Block
                && matches!(deliver, Deliver::Queue(_)),
            queue,
            control,
            deliver,
            dispatch,
            drained: VecDeque::new(),
        }
    }
}

impl std::fmt::Debug for MonitorBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorBuilder")
            .field("vca", &self.vca)
            .field("method", &self.method)
            .field("window_secs", &self.config.window_secs)
            .field("stats", &self.config.stats)
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .field("queue_capacity", &self.queue_capacity)
            .field("overflow", &self.overflow)
            .field("idle_timeout_us", &self.idle_timeout.as_micros())
            .field("flush_after", &self.flush_after)
            .finish_non_exhaustive()
    }
}

/// Takes an event out of its delivery `Arc`. On the `Monitor`-owned
/// drain paths the monitor holds the only reference, so this is a move,
/// not a copy; the clone fallback only runs when a caller has stashed
/// another handle to the same event (their copy, their cost).
fn unshare(event: Arc<QoeEvent>) -> QoeEvent {
    Arc::try_unwrap(event).unwrap_or_else(|shared| (*shared).clone())
}

/// Builds one per-flow engine for a resolved method — the single
/// construction point for the raw engines (the batch pipeline and the
/// monitor both come through here).
pub fn build_engine(
    method: Method,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<&RandomForest>,
) -> BoxedEngine {
    match method {
        Method::IpUdpHeuristic => Box::new(IpUdpHeuristicEngine::new(config)),
        Method::RtpHeuristic => Box::new(RtpHeuristicEngine::new(config, payload_map)),
        Method::IpUdpMl => {
            let engine = IpUdpMlEngine::new(config);
            Box::new(match model {
                Some(m) => engine.with_model(m.clone()),
                None => engine,
            })
        }
        Method::RtpMl => {
            let engine = RtpMlEngine::new(config, payload_map);
            Box::new(match model {
                Some(m) => engine.with_model(m.clone()),
                None => engine,
            })
        }
    }
}

/// A flow's engine plus the facade's per-flow bookkeeping, stored
/// together in the flow table's entry slab — the steady-state per-packet
/// path pays exactly one hash and one probe, with no side map to rehash
/// the key into.
struct TrackedEngine {
    engine: BoxedEngine,
    /// Packets pushed since the last finalized window (max-lag flush).
    since_report: u32,
    /// Post-probation RTP re-probe counters: `Some` only for auto-method
    /// flows that resolved to the IP/UDP fallback, which keep watching
    /// for late-blooming RTP (see [`RTP_REPROBE_PACKETS`]).
    reprobe: Option<Reprobe>,
}

impl TrackedEngine {
    fn new(engine: BoxedEngine) -> Self {
        TrackedEngine {
            engine,
            since_report: 0,
            reprobe: None,
        }
    }
}

/// Forwarding impl so the flow table can seal, flush, and account a
/// tracked entry exactly like a bare engine.
impl QoeEstimator for TrackedEngine {
    fn method(&self) -> Method {
        self.engine.method()
    }

    fn push_into(&mut self, pkt: &TracePacket, out: &mut Vec<WindowReport>) {
        self.engine.push_into(pkt, out);
    }

    fn finish_into(&mut self, out: &mut Vec<WindowReport>) {
        self.engine.finish_into(out);
    }

    fn empty_report(&self, window: u64) -> WindowReport {
        self.engine.empty_report(window)
    }

    fn provisional_into(&self, out: &mut Vec<WindowReport>) {
        self.engine.provisional_into(out);
    }

    fn state_bytes(&self) -> usize {
        // The entry slab already accounts for this struct's inline size.
        self.engine.state_bytes()
    }
}

/// Rolling RTP-confidence evidence over the current re-probe interval.
#[derive(Default)]
struct Reprobe {
    /// Packets seen this interval.
    seen: u32,
    /// Of those, how many parsed as RTP.
    rtp_ok: u32,
}

/// A flow still in RTP-confidence probation: packets buffered until the
/// method decision.
struct PendingFlow {
    packets: Vec<TracePacket>,
    rtp_ok: usize,
    last_seen: Timestamp,
}

impl PendingFlow {
    fn confident_rtp(&self) -> bool {
        !self.packets.is_empty() && self.rtp_ok as f64 / self.packets.len() as f64 >= RTP_CONFIDENCE
    }
}

/// A user event callback, shared across shard workers.
type SharedSink = Arc<Mutex<BuilderSink>>;

/// Where produced events go: the shared bounded queue (drained by the
/// caller) or a user callback sink. Cloned into every shard worker.
#[derive(Clone)]
enum Deliver {
    Queue(Arc<EventQueue>),
    Sink(SharedSink),
}

impl Deliver {
    fn send(&self, events: Vec<Arc<QoeEvent>>) {
        if events.is_empty() {
            return;
        }
        match self {
            Deliver::Queue(queue) => queue.push_batch(events),
            Deliver::Sink(sink) => {
                let mut sink = sink.lock().expect("sink poisoned"); // lint: allow(no-unwrap-in-lib) -- poisoned sink lock means a peer thread already panicked; escalate
                for event in events {
                    sink(&event);
                }
            }
        }
    }
}

/// One packet routed to a shard worker, carrying the
/// [`FlowKey::hash64`] the dispatcher already computed — workers reuse
/// it for the table probe, so a key is hashed exactly once per packet.
type RoutedPacket = (u64, FlowKey, TracePacket);

/// One message on a shard worker's bounded ingest channel.
enum ShardMsg {
    /// Packets for this worker's flows, in arrival order.
    Batch(Vec<RoutedPacket>),
    /// End of stream: seal every flow and exit.
    Finish,
}

/// How packets reach the per-flow engines: on the caller's thread, or
/// hashed across dedicated shard workers.
enum Dispatch {
    /// `threads == 1`: one shard state driven inline — no threads, no
    /// channels, identical to the pre-parallel monitor.
    Inline(Box<ShardState>),
    /// `threads ≥ 2`: per-worker bounded channels plus per-worker batch
    /// buffers that amortize the hand-off.
    Threaded {
        senders: Vec<SyncSender<ShardMsg>>,
        batches: Vec<Vec<RoutedPacket>>,
        handles: Vec<JoinHandle<()>>,
    },
    /// Placeholder after [`Monitor::finish`] has taken the dispatch
    /// state (so the monitor's `Drop` has nothing left to reap).
    Done,
}

/// Hands one batch to a shard worker without ever deadlocking on our own
/// pipeline. Under [`OverflowPolicy::Block`] (without a sink) a worker
/// can be parked on the full event queue while the dispatcher waits on
/// that worker's full channel — each waiting on the other — so there
/// (`stage_on_full`) a full channel is answered by draining the queue,
/// which wakes the worker, and staging the events for the caller's next
/// `drain_events`. Under `DropOldest` (or with a sink) workers never
/// park, so a plain blocking send is both safe and required: draining
/// would quietly turn the bounded queue into unbounded staging.
fn dispatch_batch(
    sender: &SyncSender<ShardMsg>,
    queue: &EventQueue,
    drained: &mut VecDeque<Arc<QoeEvent>>,
    stage_on_full: bool,
    control: &ControlShared,
    worker: usize,
    batch: Vec<RoutedPacket>,
) {
    control.depth_add(worker, batch.len() as u64);
    let mut msg = ShardMsg::Batch(batch);
    if !stage_on_full {
        sender.send(msg).expect("shard workers outlive dispatch"); // lint: allow(no-unwrap-in-lib) -- shard workers are owned by this struct and outlive dispatch by construction
        return;
    }
    loop {
        match sender.try_send(msg) {
            Ok(()) => return,
            Err(std::sync::mpsc::TrySendError::Full(back)) => {
                msg = back;
                let events = queue.drain();
                if events.is_empty() {
                    // Channel full, queue empty: the worker is mid-batch.
                    std::thread::yield_now();
                }
                drained.extend(events);
            }
            Err(std::sync::mpsc::TrySendError::Disconnected(_)) => {
                unreachable!("shard workers outlive dispatch")
            }
        }
    }
}

/// How often a freshly idle shard worker wakes to poll the control
/// plane — `force_flush` and `evict_flow` apply within one tick on a
/// quiet shard (a busy shard applies them after every batch).
const CONTROL_POLL: std::time::Duration = std::time::Duration::from_millis(20);

/// Idle-tick ceiling: a worker whose shard stays quiet backs its poll
/// interval off exponentially to this bound, so a long-idle threaded
/// monitor costs a couple of timer wakeups per second per worker
/// instead of fifty — at the price of control requests applying within
/// half a second (instead of one tick) on a long-quiet shard.
const CONTROL_POLL_MAX: std::time::Duration = std::time::Duration::from_millis(500);

/// A shard worker's main loop: ingest batches until told (or observed,
/// via channel disconnect) that the stream is over, applying pending
/// control-plane requests between batches (and on an idle tick, with
/// exponential backoff while the shard stays quiet), then seal every
/// flow and deliver the tail.
fn worker_loop(mut state: ShardState, rx: Receiver<ShardMsg>, deliver: Deliver, worker: usize) {
    use std::sync::mpsc::RecvTimeoutError;
    let mut poll = CONTROL_POLL;
    loop {
        match rx.recv_timeout(poll) {
            Ok(ShardMsg::Batch(batch)) => {
                poll = CONTROL_POLL;
                let n = batch.len() as u64;
                state.ingest_batch(batch);
                state.control.depth_sub(worker, n);
                state.apply_control();
                deliver.send(state.take_events());
            }
            Ok(ShardMsg::Finish) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {
                // Reset the backoff when a request actually arrived —
                // an operator steering an idle monitor gets ticks at
                // full rate again.
                if state.apply_control() {
                    poll = CONTROL_POLL;
                } else {
                    poll = (poll * 2).min(CONTROL_POLL_MAX);
                }
                deliver.send(state.take_events());
            }
        }
    }
    state.finish();
    deliver.send(state.take_events());
}

/// A passive QoE monitor: feed it raw packets, read typed [`QoeEvent`]s.
///
/// Owns the sharded flow table and one estimation engine per active flow;
/// flows idle past the configured timeout are evicted with their final
/// windows attached to the eviction event, so no tail report is ever
/// silently lost. With [`MonitorBuilder::threads`] ≥ 2 the flow table is
/// partitioned across dedicated worker threads behind bounded channels,
/// and the event stream is bounded by
/// [`MonitorBuilder::queue_capacity`] under an explicit
/// [`OverflowPolicy`]. See [`MonitorBuilder`] for configuration and the
/// [module docs](self) for a runnable example.
pub struct Monitor {
    method: EstimationMethod,
    /// Whether any configured method can consume an RTP header — gates
    /// the per-packet RTP parse-attempt on the raw ingestion path.
    wants_rtp: bool,
    vca: VcaKind,
    stats: Arc<StatsCells>,
    /// The bounded collector every shard pushes into (unused when a sink
    /// is configured, but kept so `pending_events` stays cheap).
    queue: Arc<EventQueue>,
    /// Control-plane cells shared with every [`MonitorHandle`].
    control: Arc<ControlShared>,
    deliver: Deliver,
    dispatch: Dispatch,
    /// Whether a full ingest channel must be answered by draining the
    /// event queue into staging (true only when workers can park on it:
    /// threaded + `Block` + no sink) — see [`dispatch_batch`].
    stage_on_full: bool,
    /// Staging buffer backing the `drain_events` iterator.
    drained: VecDeque<Arc<QoeEvent>>,
}

/// The per-worker slice of the monitor: a partition of the flow table
/// plus everything per-flow processing needs — probation buffers,
/// max-lag flush bookkeeping, the bounded-advance stream clock, and the
/// idle-eviction sweep. `Send`, so it runs inline or on a worker thread
/// unchanged; because a flow is hashed to exactly one shard, per-flow
/// results are identical either way (the tested parallel-vs-sequential
/// parity invariant).
struct ShardState {
    method: EstimationMethod,
    config: EngineConfig,
    payload_map: PayloadMap,
    model: Option<RandomForest>,
    idle_timeout_us: i64,
    flush_after: Option<u32>,
    /// Window length in µs, for anchoring method upgrades.
    window_us: i64,
    /// This shard's worker index (0 on an inline monitor) — the slot it
    /// publishes its flow footprint under.
    worker: usize,
    /// Per-flow engines *and* facade bookkeeping, together in the table's
    /// entry slab: one [`FlowKey::hash64`] and one probe per packet.
    table: FlowTable<TrackedEngine>,
    pending: HashMap<FlowKey, PendingFlow>,
    /// Stream clock: max ingest timestamp, bounded-advance so one corrupt
    /// far-future timestamp cannot mass-evict healthy flows. Per shard —
    /// a shard's clock advances only on its own flows' packets.
    now: Option<Timestamp>,
    /// Consecutive packets arriving more than one idle timeout behind
    /// `now` — corroboration that `now` itself came from a corrupt
    /// timestamp and must re-anchor backward.
    behind_streak: u32,
    last_evict_us: i64,
    stats: Arc<StatsCells>,
    /// Control-plane cells this shard polls between batches.
    control: Arc<ControlShared>,
    /// Last flush epoch applied (see [`MonitorHandle::force_flush`]).
    seen_flush_epoch: u64,
    /// Cursor into the shared eviction-request list.
    evict_cursor: usize,
    /// Events produced since the last `take_events` (per-flow order is
    /// append order). Wrapped at emission: the `Arc` is the unit of
    /// delivery everywhere downstream.
    out: Vec<Arc<QoeEvent>>,
    /// Scratch for finalized windows, drained after every engine borrow
    /// and kept warm — the per-packet path allocates no report buffer.
    reports: Vec<WindowReport>,
    /// Scratch for provisional (max-lag flush) snapshots, same lifecycle.
    snapshots: Vec<WindowReport>,
}

impl Monitor {
    /// Shorthand for [`MonitorBuilder::new`].
    pub fn builder(vca: VcaKind) -> MonitorBuilder {
        MonitorBuilder::new(vca)
    }

    /// A cloneable live [`MonitorHandle`]: snapshot counters, force a
    /// provisional flush, evict a flow, retune alert thresholds, or
    /// request a graceful stop — from any thread, without touching the
    /// monitor's `&mut` ingest surface. Shard workers apply control
    /// requests between batches (or within one poll tick when idle); an
    /// inline monitor applies them on its next `ingest`/`drain` call.
    /// The handle stays readable after [`Monitor::finish`].
    pub fn handle(&self) -> MonitorHandle {
        MonitorHandle {
            control: Arc::clone(&self.control),
            stats: Arc::clone(&self.stats),
            queue: Arc::clone(&self.queue),
        }
    }

    /// The VCA profile the monitor was configured for.
    pub fn vca(&self) -> VcaKind {
        self.vca
    }

    /// Running ingest/emit counters. On a threaded monitor the snapshot
    /// is eventually consistent: packets still queued on a shard channel
    /// are not yet counted ([`Monitor::finish`] settles everything).
    pub fn stats(&self) -> MonitorStats {
        self.stats
            .snapshot(self.queue.dropped_total(), self.queue.dropped_by_flow())
    }

    /// Flows currently tracked (probation included). Exact on an inline
    /// monitor; derived from the opened/evicted counters (and therefore
    /// eventually consistent) on a threaded one.
    pub fn active_flows(&self) -> usize {
        match &self.dispatch {
            Dispatch::Inline(shard) => shard.table.len() + shard.pending.len(),
            Dispatch::Done => 0,
            Dispatch::Threaded { .. } => {
                let opened = self.stats.flows_opened.load(Relaxed);
                let evicted = self.stats.flows_evicted.load(Relaxed);
                opened.saturating_sub(evicted) as usize
            }
        }
    }

    /// Queued events not yet drained (always 0 when a sink is set; on a
    /// threaded monitor, what the shard workers have delivered so far).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Drains every queued event, oldest first. Flushes any partially
    /// filled ingest batches first, so a threaded monitor's workers see
    /// every packet ingested before the drain; events for packets a
    /// worker has not yet processed arrive on a later drain (per-flow
    /// order is always preserved). When events were discarded under
    /// [`OverflowPolicy::DropOldest`], the batch leads with a
    /// [`QoeEvent::Dropped`] marker counting them.
    pub fn drain_events(&mut self) -> impl Iterator<Item = QoeEvent> + '_ {
        self.drain_pending();
        self.drained.drain(..).map(unshare)
    }

    /// [`Monitor::drain_events`] without unsharing: the events come out
    /// as the [`Arc`]s the delivery path carries, so a fan-out consumer
    /// (the runner's event bus) can hand the same allocation to any
    /// number of subscribers.
    pub fn drain_shared(&mut self) -> impl Iterator<Item = Arc<QoeEvent>> + '_ {
        self.drain_pending();
        self.drained.drain(..)
    }

    /// Flushes ingest batches, applies pending control requests on an
    /// inline monitor, and pulls everything queued into staging.
    fn drain_pending(&mut self) {
        self.flush_ingest();
        if let Dispatch::Inline(shard) = &mut self.dispatch {
            shard.apply_control();
            let events = shard.take_events();
            self.deliver.send(events);
        }
        let batch = self.queue.drain();
        self.drained.extend(batch);
    }

    // -- ingestion ---------------------------------------------------------

    /// Ingests one raw link-layer (Ethernet II) frame.
    pub fn ingest_frame(&mut self, ts: Timestamp, frame: &[u8]) {
        match parse_frame(ts, frame, self.wants_rtp) {
            Ok((flow, pkt)) => self.ingest_packet(flow, pkt),
            Err(reason) => self.drop_packet(ts, reason),
        }
    }

    /// Ingests one raw IP packet (pcap `LINKTYPE_RAW` and friends).
    pub fn ingest_ip(&mut self, ts: Timestamp, bytes: &[u8]) {
        match parse_ip(ts, bytes, self.wants_rtp) {
            Ok((flow, pkt)) => self.ingest_packet(flow, pkt),
            Err(reason) => self.drop_packet(ts, reason),
        }
    }

    /// Ingests one pcap record, dispatching on the file's link type.
    pub fn ingest_pcap_record(&mut self, link: LinkType, rec: &PcapRecord) {
        match parse_record(link, rec, self.wants_rtp) {
            Ok((flow, pkt)) => self.ingest_packet(flow, pkt),
            Err(reason) => self.drop_packet(rec.ts, reason),
        }
    }

    /// Ingests one decoded capture (timestamp + UDP datagram).
    pub fn ingest_captured(&mut self, cap: &CapturedPacket) {
        let (flow, pkt) = datagram_packet(cap.ts, &cap.datagram, self.wants_rtp);
        self.ingest_packet(flow, pkt);
    }

    /// Ingests one pre-parsed packet on an explicit flow — the entry point
    /// for simulated feeds and replays that never materialized wire bytes.
    ///
    /// On a threaded monitor this hashes the flow to its shard worker and
    /// enqueues the packet on that worker's bounded channel (batched);
    /// when the channel is full the call waits for the worker to catch
    /// up — ingest-side backpressure regardless of the event queue's
    /// overflow policy. While waiting it drains any ready events into
    /// the staging buffer (returned by the next
    /// [`Monitor::drain_events`]), so a worker parked on a full `Block`
    /// queue is always woken and the pipeline cannot deadlock on itself.
    pub fn ingest_packet(&mut self, flow: FlowKey, pkt: TracePacket) {
        if pkt.ts.as_micros() < 0 {
            self.drop_packet(pkt.ts, ParseDropReason::NegativeTimestamp);
            return;
        }
        let Monitor {
            dispatch,
            deliver,
            queue,
            control,
            drained,
            stage_on_full,
            ..
        } = self;
        match dispatch {
            Dispatch::Inline(shard) => {
                shard.ingest(flow, pkt);
                shard.apply_control();
                let events = shard.take_events();
                deliver.send(events);
            }
            Dispatch::Threaded {
                senders, batches, ..
            } => {
                let hash = flow.hash64();
                let worker = worker_of(hash, senders.len());
                batches[worker].push((hash, flow, pkt));
                if batches[worker].len() >= INGEST_BATCH {
                    let batch =
                        std::mem::replace(&mut batches[worker], Vec::with_capacity(INGEST_BATCH));
                    dispatch_batch(
                        &senders[worker],
                        queue,
                        drained,
                        *stage_on_full,
                        control,
                        worker,
                        batch,
                    );
                }
            }
            Dispatch::Done => unreachable!("monitor already finished"),
        }
    }

    /// Seals and reports every remaining flow, returning all queued
    /// events (when a sink is set they have already been delivered and
    /// the returned list holds only what the sink had not consumed —
    /// i.e. nothing). On a threaded monitor this flushes every pending
    /// ingest batch, signals end-of-stream to each shard worker, joins
    /// them, and drains whatever they delivered — the end-of-stream flush
    /// neither blocks on nor is dropped by the bounded queue.
    pub fn finish(self) -> Vec<QoeEvent> {
        self.finish_shared().into_iter().map(unshare).collect()
    }

    /// [`Monitor::finish`] without unsharing — the runner's event bus
    /// consumes this so end-of-stream tails fan out allocation-free.
    pub fn finish_shared(mut self) -> Vec<Arc<QoeEvent>> {
        // Lift the queue bound (and both overflow policies) first:
        // workers flushing their sealed tails must neither park against
        // a queue nobody is draining yet nor have those tails shed by
        // DropOldest — the end-of-stream flush is lossless by contract.
        self.queue.release();
        let mut out: Vec<Arc<QoeEvent>> = self.drained.drain(..).collect();
        match std::mem::replace(&mut self.dispatch, Dispatch::Done) {
            Dispatch::Inline(mut shard) => {
                shard.finish();
                self.deliver.send(shard.take_events());
            }
            Dispatch::Threaded {
                senders,
                mut batches,
                handles,
            } => {
                // Blocking sends are safe here: the released queue never
                // parks a worker, so every channel drains.
                for (worker, batch) in batches.drain(..).enumerate() {
                    if !batch.is_empty() {
                        self.control.depth_add(worker, batch.len() as u64);
                        senders[worker]
                            .send(ShardMsg::Batch(batch))
                            .expect("shard worker alive"); // lint: allow(no-unwrap-in-lib) -- shard worker channel lives until the join below
                    }
                }
                for tx in &senders {
                    tx.send(ShardMsg::Finish).expect("shard worker alive"); // lint: allow(no-unwrap-in-lib) -- shard worker channel lives until the join below
                }
                drop(senders);
                for handle in handles {
                    handle.join().expect("shard worker panicked"); // lint: allow(no-unwrap-in-lib) -- join re-raises a worker panic instead of hiding it
                }
            }
            Dispatch::Done => unreachable!("finish runs once"),
        }
        out.extend(self.queue.drain());
        out
    }

    // -- internals ---------------------------------------------------------

    /// Sends every partially filled ingest batch to its shard worker
    /// (no-op on an inline monitor).
    fn flush_ingest(&mut self) {
        let Monitor {
            dispatch,
            queue,
            control,
            drained,
            stage_on_full,
            ..
        } = self;
        if let Dispatch::Threaded {
            senders, batches, ..
        } = dispatch
        {
            for (worker, batch) in batches.iter_mut().enumerate() {
                if !batch.is_empty() {
                    let batch = std::mem::take(batch);
                    dispatch_batch(
                        &senders[worker],
                        queue,
                        drained,
                        *stage_on_full,
                        control,
                        worker,
                        batch,
                    );
                }
            }
        }
    }

    fn drop_packet(&mut self, ts: Timestamp, reason: ParseDropReason) {
        self.stats.parse_drops.fetch_add(1, Relaxed);
        let event = Arc::new(QoeEvent::ParseDrop { ts, reason });
        match &self.deliver {
            // The caller *is* the queue's consumer: parking here against
            // a full Block queue would be waiting on itself (workers only
            // widen the queue, they never drain it), so the drop marker
            // goes in without waiting.
            Deliver::Queue(queue) => queue.push_nowait(vec![event]),
            Deliver::Sink(_) => self.deliver.send(vec![event]),
        }
    }

    /// Opens an independent ingest port on a threaded monitor (`None`
    /// when the monitor is inline). Ports are how
    /// [`crate::runner::MonitorRunner`] runs one ingest thread per
    /// source: each port parses and flow-hashes its own packets and
    /// feeds the shard channels directly, so the serial dispatch section
    /// scales with the number of sources. See [`IngestPort`] for the
    /// concurrent-drainer requirement its holder takes on.
    pub(crate) fn ingest_port(&self) -> Option<IngestPort> {
        match &self.dispatch {
            Dispatch::Threaded { senders, .. } => Some(IngestPort {
                wants_rtp: self.wants_rtp,
                stats: Arc::clone(&self.stats),
                control: Arc::clone(&self.control),
                deliver: self.deliver.clone(),
                batches: senders.iter().map(|_| Vec::new()).collect(),
                senders: senders.clone(),
            }),
            Dispatch::Inline(_) | Dispatch::Done => None,
        }
    }
}

// -- stateless raw-bytes decode (Monitor + IngestPort share it) ------------

/// Decodes one Ethernet II frame into a flow-keyed [`TracePacket`],
/// attempting the RTP parse when any configured method consumes it.
pub(crate) fn parse_frame(
    ts: Timestamp,
    frame: &[u8],
    wants_rtp: bool,
) -> Result<(FlowKey, TracePacket), ParseDropReason> {
    match UdpDatagram::parse(frame) {
        Ok(Some(dg)) => Ok(datagram_packet(ts, &dg, wants_rtp)),
        Ok(None) => Err(ParseDropReason::NotUdp),
        Err(e) => Err(ParseDropReason::from(&e)),
    }
}

/// Decodes one raw IP packet (v4 or v6 by version nibble).
pub(crate) fn parse_ip(
    ts: Timestamp,
    bytes: &[u8],
    wants_rtp: bool,
) -> Result<(FlowKey, TracePacket), ParseDropReason> {
    let parsed = match bytes.first().map(|b| b >> 4) {
        Some(4) => UdpDatagram::parse_ipv4(bytes),
        Some(6) => UdpDatagram::parse_ipv6(bytes),
        Some(_) => Err(NetError::Malformed {
            layer: "ip",
            what: "version is neither 4 nor 6",
        }),
        None => Err(NetError::Truncated {
            layer: "ip",
            needed: 1,
            got: 0,
        }),
    };
    match parsed {
        Ok(Some(dg)) => Ok(datagram_packet(ts, &dg, wants_rtp)),
        Ok(None) => Err(ParseDropReason::NotUdp),
        Err(e) => Err(ParseDropReason::from(&e)),
    }
}

/// Decodes one pcap record, dispatching on the file's link type. The
/// record's buffer is `Bytes`-backed, so the decoded datagram's payload
/// is a zero-copy slice of it — no per-packet payload allocation.
pub(crate) fn parse_record(
    link: LinkType,
    rec: &PcapRecord,
    wants_rtp: bool,
) -> Result<(FlowKey, TracePacket), ParseDropReason> {
    let parsed = match link {
        LinkType::Ethernet => UdpDatagram::parse_shared(&rec.data),
        LinkType::RawIp => match rec.data.first().map(|b| b >> 4) {
            Some(4) => UdpDatagram::parse_ipv4_shared(&rec.data),
            Some(6) => UdpDatagram::parse_ipv6_shared(&rec.data),
            Some(_) => Err(NetError::Malformed {
                layer: "ip",
                what: "version is neither 4 nor 6",
            }),
            None => Err(NetError::Truncated {
                layer: "ip",
                needed: 1,
                got: 0,
            }),
        },
        LinkType::Other(_) => {
            return Err(ParseDropReason::Malformed {
                layer: "pcap",
                what: "unsupported link type",
            })
        }
    };
    match parsed {
        Ok(Some(dg)) => Ok(datagram_packet(rec.ts, &dg, wants_rtp)),
        Ok(None) => Err(ParseDropReason::NotUdp),
        Err(e) => Err(ParseDropReason::from(&e)),
    }
}

/// Flow-keys a decoded datagram and runs the RTP parse-attempt: the
/// attempt's confidence decides the method for auto-configured monitors,
/// and the header feeds the RTP engines. Non-RTP payloads simply leave
/// `rtp` empty; fixed IP/UDP monitors (the paper's no-RTP-access
/// deployment) skip the attempt entirely — nothing consumes it.
pub(crate) fn datagram_packet(
    ts: Timestamp,
    dg: &UdpDatagram,
    wants_rtp: bool,
) -> (FlowKey, TracePacket) {
    let (flow, _) = dg.flow_key();
    let rtp = if wants_rtp {
        RtpHeader::parse(&dg.payload).ok()
    } else {
        None
    };
    (
        flow,
        TracePacket {
            ts,
            size: dg.ip_total_len,
            rtp,
            truth_media: None,
        },
    )
}

/// One source's private lane into a threaded monitor's shard workers:
/// parse, flow-hash, batch, and send happen on the port holder's thread,
/// so N ports ingest in parallel without sharing the [`Monitor`]'s
/// `&mut self`. Per-flow packet order within one port is preserved
/// end-to-end (same hash, same channel, same worker); packets for one
/// flow split across ports interleave in channel-arrival order.
///
/// Sends block when a shard channel is full — ingest-side backpressure.
/// The holder must guarantee a concurrent drainer (the runner's event
/// loop), or a `Block` queue can park the pipeline; this is why ports
/// are crate-internal and only [`crate::runner::MonitorRunner`] hands
/// them out.
pub(crate) struct IngestPort {
    wants_rtp: bool,
    stats: Arc<StatsCells>,
    control: Arc<ControlShared>,
    deliver: Deliver,
    senders: Vec<SyncSender<ShardMsg>>,
    batches: Vec<Vec<RoutedPacket>>,
}

impl IngestPort {
    /// Ingests one pcap record, dispatching on the file's link type.
    pub(crate) fn ingest_pcap_record(&mut self, link: LinkType, rec: &PcapRecord) {
        match parse_record(link, rec, self.wants_rtp) {
            Ok((flow, pkt)) => self.ingest_packet(flow, pkt),
            Err(reason) => self.drop_packet(rec.ts, reason),
        }
    }

    /// Ingests one decoded capture (timestamp + UDP datagram).
    pub(crate) fn ingest_captured(&mut self, cap: &CapturedPacket) {
        let (flow, pkt) = datagram_packet(cap.ts, &cap.datagram, self.wants_rtp);
        self.ingest_packet(flow, pkt);
    }

    /// Ingests one pre-parsed packet on an explicit flow.
    pub(crate) fn ingest_packet(&mut self, flow: FlowKey, pkt: TracePacket) {
        if pkt.ts.as_micros() < 0 {
            self.drop_packet(pkt.ts, ParseDropReason::NegativeTimestamp);
            return;
        }
        let hash = flow.hash64();
        let worker = worker_of(hash, self.senders.len());
        self.batches[worker].push((hash, flow, pkt));
        if self.batches[worker].len() >= INGEST_BATCH {
            let batch =
                std::mem::replace(&mut self.batches[worker], Vec::with_capacity(INGEST_BATCH));
            self.control.depth_add(worker, batch.len() as u64);
            self.senders[worker]
                .send(ShardMsg::Batch(batch))
                .expect("shard workers outlive ingest ports"); // lint: allow(no-unwrap-in-lib) -- ingest ports are dropped before shard workers shut down
        }
    }

    /// Sends every partially filled batch to its shard worker. Call
    /// before dropping the port so no tail packet is left behind.
    pub(crate) fn flush(&mut self) {
        for (worker, batch) in self.batches.iter_mut().enumerate() {
            if !batch.is_empty() {
                let batch = std::mem::take(batch);
                self.control.depth_add(worker, batch.len() as u64);
                self.senders[worker]
                    .send(ShardMsg::Batch(batch))
                    .expect("shard workers outlive ingest ports"); // lint: allow(no-unwrap-in-lib) -- ingest ports are dropped before shard workers shut down
            }
        }
    }

    fn drop_packet(&mut self, ts: Timestamp, reason: ParseDropReason) {
        self.stats.parse_drops.fetch_add(1, Relaxed);
        // Unlike Monitor::drop_packet this may park against a full Block
        // queue: the port holder is an ingest thread, and the runner's
        // event loop is the concurrent drainer that frees it.
        self.deliver
            .send(vec![Arc::new(QoeEvent::ParseDrop { ts, reason })]);
    }
}

impl Drop for IngestPort {
    /// Best-effort tail flush for ports dropped without [`IngestPort::flush`]
    /// (ingest-thread panic): delivery is only guaranteed after an
    /// explicit flush, but don't silently strand full batches either.
    fn drop(&mut self) {
        for (worker, batch) in self.batches.iter_mut().enumerate() {
            if !batch.is_empty() {
                let batch = std::mem::take(batch);
                self.control.depth_add(worker, batch.len() as u64);
                let _ = self.senders[worker].send(ShardMsg::Batch(batch));
            }
        }
    }
}

/// Stable flow → worker routing: the low bits of the one
/// [`FlowKey::hash64`] computed per packet on the dispatching thread.
/// The hash rides the channel with the packet; inside a worker the
/// table's shard selection takes the top 16 bits and slot probing
/// starts from bits 16.., so the three routing layers stay uncorrelated
/// while the key is hashed exactly once (see [`FlowTable`]).
fn worker_of(hash: u64, n_workers: usize) -> usize {
    (hash % n_workers as u64) as usize
}

impl ShardState {
    /// Routes one packet through probation, re-probe, its flow engine,
    /// and the idle sweep. The caller has already rejected negative
    /// timestamps.
    fn ingest(&mut self, flow: FlowKey, pkt: TracePacket) {
        self.stats.packets.fetch_add(1, Relaxed);
        self.ingest_hashed(flow.hash64(), flow, pkt);
    }

    /// Batch form of [`Self::ingest`]: the packet counter is bumped once
    /// for the whole batch, and each packet reuses the route hash the
    /// dispatching thread already computed.
    fn ingest_batch(&mut self, batch: Vec<RoutedPacket>) {
        self.stats.packets.fetch_add(batch.len() as u64, Relaxed);
        for (hash, flow, pkt) in batch {
            self.ingest_hashed(hash, flow, pkt);
        }
    }

    fn ingest_hashed(&mut self, hash: u64, flow: FlowKey, pkt: TracePacket) {
        self.advance_clock(pkt.ts);
        if !self.push_established(hash, flow, &pkt) {
            self.ingest_cold(hash, flow, pkt);
        }
        self.maybe_evict();
    }

    /// The steady-state per-packet path: one table probe finds the flow's
    /// engine *and* its bookkeeping; finalized windows land in the warm
    /// scratch buffer and are emitted after the borrow ends. Returns
    /// `false` when the flow is not established (new or in probation).
    fn push_established(&mut self, hash: u64, flow: FlowKey, pkt: &TracePacket) -> bool {
        let mut reports = std::mem::take(&mut self.reports);
        let mut snapshots = std::mem::take(&mut self.snapshots);
        let flush_after = self.flush_after;
        let mut upgrade = false;
        let found = match self.table.get_mut_seen_hashed(hash, &flow, pkt.ts) {
            None => false,
            Some(tracked) => {
                // Post-probation RTP re-probe bookkeeping (auto-method
                // fallback flows only; `None` for everyone else).
                if let Some(reprobe) = tracked.reprobe.as_mut() {
                    reprobe.seen += 1;
                    reprobe.rtp_ok += u32::from(pkt.rtp.is_some());
                    if reprobe.seen >= RTP_REPROBE_PACKETS {
                        if reprobe.rtp_ok as f64 / reprobe.seen as f64 >= RTP_CONFIDENCE {
                            upgrade = true;
                        } else {
                            *reprobe = Reprobe::default();
                        }
                    }
                }
                if !upgrade {
                    tracked.engine.push_into(pkt, &mut reports);
                    if let Some(k) = flush_after {
                        tracked.since_report = if reports.is_empty() {
                            tracked.since_report + 1
                        } else {
                            0
                        };
                        if tracked.since_report >= k {
                            tracked.since_report = 0;
                            tracked.engine.provisional_into(&mut snapshots);
                        }
                    }
                }
                true
            }
        };
        for report in reports.drain(..) {
            self.stats.window_reports.fetch_add(1, Relaxed);
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional: false,
            });
        }
        for report in snapshots.drain(..) {
            self.stats.provisional_reports.fetch_add(1, Relaxed);
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional: true,
            });
        }
        self.reports = reports;
        self.snapshots = snapshots;
        if upgrade {
            self.upgrade_flow(hash, flow, pkt);
        }
        found
    }

    /// Off the fast path: the flow has no engine yet — it is brand new,
    /// or still buffering toward the RTP-confidence decision.
    fn ingest_cold(&mut self, hash: u64, flow: FlowKey, pkt: TracePacket) {
        let needs_probation = self.method.is_auto();
        let is_new = !self.pending.contains_key(&flow);
        if is_new {
            self.stats.flows_opened.fetch_add(1, Relaxed);
            self.emit(QoeEvent::FlowOpened { flow, ts: pkt.ts });
            if !needs_probation {
                let engine = build_engine(
                    self.method.fallback(),
                    self.config,
                    self.payload_map,
                    self.model.as_ref(),
                );
                self.table
                    .insert_hashed(hash, flow, TrackedEngine::new(engine), pkt.ts);
                self.push_established(hash, flow, &pkt);
                return;
            }
        }
        let pending = self.pending.entry(flow).or_insert_with(|| PendingFlow {
            packets: Vec::with_capacity(RTP_PROBATION_PACKETS),
            rtp_ok: 0,
            last_seen: pkt.ts,
        });
        pending.rtp_ok += usize::from(pkt.rtp.is_some());
        // Bounded advance, like FlowTable's last_seen: one corrupt
        // far-future timestamp must not exempt the flow from the
        // idle sweep forever.
        let bound = pending
            .last_seen
            .as_micros()
            .saturating_add(self.idle_timeout_us);
        pending.last_seen = pending
            .last_seen
            .max(Timestamp::from_micros(pkt.ts.as_micros().min(bound)));
        pending.packets.push(pkt);
        if pending.packets.len() >= RTP_PROBATION_PACKETS {
            self.resolve_pending(flow);
        }
    }

    /// Seals and reports every remaining flow (end of stream).
    fn finish(&mut self) {
        let keys: Vec<FlowKey> = self.pending.keys().copied().collect();
        for flow in keys {
            self.resolve_pending(flow);
        }
        for (flow, final_reports) in self.table.drain_finish_all() {
            self.seal_flow(flow, EvictReason::EndOfStream, final_reports);
        }
    }

    /// Takes the events produced since the last call, in emission order.
    fn take_events(&mut self) -> Vec<Arc<QoeEvent>> {
        std::mem::take(&mut self.out)
    }

    /// Applies pending control-plane requests ([`MonitorHandle`]): a
    /// forced provisional flush of every flow, and requested evictions
    /// of flows this shard owns. Cheap when nothing is pending — two
    /// relaxed atomic loads. Returns whether anything was applied (the
    /// idle workers' poll-backoff reset signal).
    fn apply_control(&mut self) -> bool {
        let mut applied = false;
        let epoch = self.control.flush_epoch();
        if epoch != self.seen_flush_epoch {
            self.seen_flush_epoch = epoch;
            self.flush_all_provisional();
            applied = true;
        }
        // Fast path first: the Arc clone below is only worth paying
        // when a request actually exists (it satisfies the borrow
        // checker across the &mut self eviction calls).
        if self.control.has_evictions_since(self.evict_cursor) {
            let control = Arc::clone(&self.control);
            for flow in control.evictions_since(&mut self.evict_cursor) {
                self.evict_requested(flow);
            }
            applied = true;
        }
        applied
    }

    /// Emits provisional snapshots of every tracked flow's pending
    /// windows — [`MonitorHandle::force_flush`], with the same
    /// supersede-later semantics as the builder's max-lag flush.
    fn flush_all_provisional(&mut self) {
        let mut snapshots: Vec<(FlowKey, Vec<WindowReport>)> = Vec::new();
        self.table.for_each_mut(|flow, engine| {
            let reports = engine.provisional();
            if !reports.is_empty() {
                snapshots.push((*flow, reports));
            }
        });
        for (flow, reports) in snapshots {
            for report in reports {
                self.stats.provisional_reports.fetch_add(1, Relaxed);
                self.emit(QoeEvent::WindowReport {
                    flow,
                    report,
                    provisional: true,
                });
            }
        }
    }

    /// Seals one flow on operator request, surfacing its tail windows —
    /// [`MonitorHandle::evict_flow`]. A flow still in probation is
    /// resolved first (its buffered packets replay through the decided
    /// engine), so even a young flow's windows surface. Flows this shard
    /// does not own are ignored (their owner processes the same
    /// request).
    fn evict_requested(&mut self, flow: FlowKey) {
        if self.pending.contains_key(&flow) {
            self.resolve_pending(flow);
        }
        if let Some(mut engine) = self.table.remove(&flow) {
            self.seal_flow(flow, EvictReason::Requested, engine.finish());
        }
    }

    /// Advances the stream clock by at most one idle timeout per packet,
    /// so a single corrupt far-future timestamp (which the engines
    /// quarantine) cannot fast-forward time and mass-evict healthy flows.
    /// The inverse corruption — the *first* packet carrying the bogus
    /// timestamp — would otherwise pin the clock forever (sane traffic is
    /// all "in the past", and a pinned clock never sweeps idle flows
    /// again); when enough consecutive packets agree the clock is more
    /// than one idle timeout ahead of reality, it re-anchors backward.
    fn advance_clock(&mut self, ts: Timestamp) {
        let Some(now) = self.now else {
            self.now = Some(ts);
            return;
        };
        if now.as_micros().saturating_sub(ts.as_micros()) > self.idle_timeout_us {
            self.behind_streak += 1;
            if self.behind_streak >= crate::engine::DISCONTINUITY_CORROBORATION {
                self.behind_streak = 0;
                self.now = Some(ts);
                self.last_evict_us = self.last_evict_us.min(ts.as_micros());
            }
            return;
        }
        self.behind_streak = 0;
        self.now = Some(
            now.max(Timestamp::from_micros(
                ts.as_micros()
                    .min(now.as_micros().saturating_add(self.idle_timeout_us)),
            )),
        );
    }

    /// Decides a probation flow's method from its RTP parse confidence,
    /// builds the engine, and replays the buffered packets through it.
    /// A flow resolved to the fallback keeps re-probing for RTP (see
    /// [`RTP_REPROBE_PACKETS`]); one resolved to the RTP variant is
    /// settled for good.
    fn resolve_pending(&mut self, flow: FlowKey) {
        let Some(pending) = self.pending.remove(&flow) else {
            return;
        };
        let confident = pending.confident_rtp();
        let method = if confident {
            self.method.preferred()
        } else {
            self.method.fallback()
        };
        let engine = build_engine(method, self.config, self.payload_map, self.model.as_ref());
        let first_seen = pending.packets.first().map_or(pending.last_seen, |p| p.ts);
        let hash = flow.hash64();
        self.table.insert_hashed(
            hash,
            flow,
            TrackedEngine {
                engine,
                since_report: 0,
                // A flow resolved to the fallback keeps watching for
                // late-blooming RTP; one resolved to the preferred
                // method is settled for good.
                reprobe: (!confident && self.method.preferred() != method).then(Reprobe::default),
            },
            first_seen,
        );
        // Replay the probation buffer through the decided engine; the
        // max-lag accounting sees the burst as one push of N packets.
        let mut reports = std::mem::take(&mut self.reports);
        let mut snapshots = std::mem::take(&mut self.snapshots);
        for pkt in &pending.packets {
            let tracked = self
                .table
                .get_mut_seen_hashed(hash, &flow, pkt.ts)
                .expect("just inserted"); // lint: allow(no-unwrap-in-lib) -- probation flow was inserted into the table just above
            tracked.engine.push_into(pkt, &mut reports);
        }
        if let Some(k) = self.flush_after {
            let tracked = self
                .table
                .get_mut_hashed(hash, &flow)
                .expect("just inserted"); // lint: allow(no-unwrap-in-lib) -- probation flow was inserted into the table just above
            tracked.since_report = if reports.is_empty() {
                pending.packets.len() as u32
            } else {
                0
            };
            if tracked.since_report >= k {
                tracked.since_report = 0;
                tracked.engine.provisional_into(&mut snapshots);
            }
        }
        for report in reports.drain(..) {
            self.stats.window_reports.fetch_add(1, Relaxed);
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional: false,
            });
        }
        for report in snapshots.drain(..) {
            self.stats.provisional_reports.fetch_add(1, Relaxed);
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional: true,
            });
        }
        self.reports = reports;
        self.snapshots = snapshots;
    }

    /// Post-probation RTP upgrade, reached when [`Self::push_established`]
    /// finds a fallback-resolved auto flow confidently RTP over the
    /// re-probe interval just seen (see [`RTP_REPROBE_PACKETS`]). The old
    /// engine's pending windows flush first — final up to the upgrade
    /// boundary, `provisional` for the boundary window itself, which the
    /// new engine (anchored at this packet) will finalize — so every
    /// window still appears in [`QoeEvent::final_reports`] exactly once.
    /// The seam is visible to consumers as the report's `method` changing
    /// mid-flow; the triggering packet replays into the new engine.
    fn upgrade_flow(&mut self, hash: u64, flow: FlowKey, pkt: &TracePacket) {
        let Some(mut old) = self.table.remove_hashed(hash, &flow) else {
            return;
        };
        // The new engine anchors at this packet's window; the old
        // engine's flush can reach at most that window (its packets are
        // all older), so exactly the boundary overlap is provisional.
        let anchor = (pkt.ts.as_micros().div_euclid(self.window_us)) as u64;
        for report in old.engine.finish() {
            let provisional = report.window >= anchor;
            if provisional {
                self.stats.provisional_reports.fetch_add(1, Relaxed);
            } else {
                self.stats.window_reports.fetch_add(1, Relaxed);
            }
            self.emit(QoeEvent::WindowReport {
                flow,
                report,
                provisional,
            });
        }
        let engine = build_engine(
            self.method.preferred(),
            self.config,
            self.payload_map,
            self.model.as_ref(),
        );
        self.table
            .insert_hashed(hash, flow, TrackedEngine::new(engine), pkt.ts);
        self.push_established(hash, flow, pkt);
    }

    /// Periodic idle sweep over both established and probation flows.
    fn maybe_evict(&mut self) {
        let Some(now) = self.now else { return };
        if now.as_micros().saturating_sub(self.last_evict_us) < EVICT_CHECK_US {
            return;
        }
        self.last_evict_us = now.as_micros();
        for (flow, final_reports) in self.table.evict_idle(now) {
            self.seal_flow(flow, EvictReason::Idle, final_reports);
        }
        // Like FlowTable::evict_idle: reclaim probation flows that went
        // idle, and ones whose last_seen claims to be from far in the
        // future (a corrupt timestamp that slipped in before clamping).
        let deadline = now.as_micros() - self.idle_timeout_us;
        let future_bound = now.as_micros().saturating_add(self.idle_timeout_us);
        let stale: Vec<FlowKey> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                p.last_seen.as_micros() < deadline || p.last_seen.as_micros() > future_bound
            })
            .map(|(k, _)| *k)
            .collect();
        for flow in stale {
            // Decide with whatever probation evidence exists, replay, and
            // seal immediately: short flows still get their windows.
            self.resolve_pending(flow);
            if let Some(mut engine) = self.table.remove(&flow) {
                self.seal_flow(flow, EvictReason::Idle, engine.finish());
            }
        }
        // Piggyback the bytes-per-flow gauge on the sweep cadence: the
        // survivors' engine state is what the monitor is resident for.
        self.control.set_flow_footprint(
            self.worker,
            self.table.state_bytes() as u64,
            self.table.len() as u64,
        );
    }

    fn seal_flow(&mut self, flow: FlowKey, reason: EvictReason, final_reports: Vec<WindowReport>) {
        self.stats.flows_evicted.fetch_add(1, Relaxed);
        self.stats
            .window_reports
            .fetch_add(final_reports.len() as u64, Relaxed);
        self.emit(QoeEvent::FlowEvicted {
            flow,
            reason,
            final_reports,
        });
    }

    fn emit(&mut self, event: QoeEvent) {
        self.out.push(Arc::new(event));
    }
}

impl Drop for Monitor {
    /// A monitor dropped without [`Monitor::finish`] (caller panic,
    /// early return) must not leak shard workers parked on the bounded
    /// queue: release the queue so nothing waits, disconnect the
    /// channels so the workers run their end-of-stream seal and exit,
    /// and reap the threads. The tail events land in the released queue
    /// and are dropped with it — only `finish` promises delivery.
    fn drop(&mut self) {
        if let Dispatch::Threaded {
            senders, handles, ..
        } = &mut self.dispatch
        {
            self.queue.release();
            senders.clear();
            for handle in handles.drain(..) {
                // Don't double-panic out of a Drop during unwinding.
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let threads = match &self.dispatch {
            Dispatch::Inline(_) => 1,
            Dispatch::Threaded { senders, .. } => senders.len(),
            Dispatch::Done => 0,
        };
        f.debug_struct("Monitor")
            .field("vca", &self.vca)
            .field("method", &self.method)
            .field("threads", &threads)
            .field("active_flows", &self.active_flows())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    fn flow_key(n: u8) -> FlowKey {
        let client = IpAddr::V4(Ipv4Addr::new(10, 0, 0, n));
        let server = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 1));
        FlowKey::canonical(server, 3478, client, 50_000 + u16::from(n), 17).0
    }

    fn pkt(us: i64, size: u16) -> TracePacket {
        TracePacket {
            ts: Timestamp::from_micros(us),
            size,
            rtp: None,
            truth_media: None,
        }
    }

    fn video_stream(secs: i64) -> Vec<TracePacket> {
        let mut out = Vec::new();
        for f in 0..secs * 30 {
            let t0 = f * 33_333;
            let size = 1000 + ((f % 9) * 13) as u16;
            out.push(pkt(t0, size));
            out.push(pkt(t0 + 300, size));
        }
        out
    }

    fn fixed(method: Method) -> MonitorBuilder {
        MonitorBuilder::new(VcaKind::Teams).method(EstimationMethod::Fixed(method))
    }

    fn window_reports(events: &[QoeEvent]) -> Vec<&WindowReport> {
        events
            .iter()
            .filter_map(|e| match e {
                QoeEvent::WindowReport {
                    report,
                    provisional: false,
                    ..
                } => Some(report),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn builder_defaults_are_paper_shaped() {
        let m = MonitorBuilder::new(VcaKind::Webex).build();
        assert_eq!(m.vca(), VcaKind::Webex);
        assert_eq!(m.active_flows(), 0);
        assert_eq!(m.stats().packets, 0);
        assert_eq!(m.pending_events(), 0);
    }

    #[test]
    fn threads_zero_sizes_workers_from_available_parallelism() {
        let want = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let mut m = fixed(Method::IpUdpHeuristic).threads(0).build();
        assert!(
            format!("{m:?}").contains(&format!("threads: {want}")),
            "auto thread count must match available parallelism"
        );
        let flow = flow_key(1);
        for p in video_stream(2) {
            m.ingest_packet(flow, p);
        }
        let events = m.finish();
        assert!(events
            .iter()
            .any(|e| matches!(e, QoeEvent::FlowEvicted { .. })));
    }

    #[test]
    fn single_flow_emits_open_windows_and_seal() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(4) {
            m.ingest_packet(flow, p);
        }
        let events = m.finish();
        assert!(matches!(events[0], QoeEvent::FlowOpened { .. }));
        // Mid-stream windows arrive as WindowReport events; the sealed
        // tail rides on the eviction event. Together: one per second.
        let (reason, final_reports) = events
            .iter()
            .find_map(|e| match e {
                QoeEvent::FlowEvicted {
                    reason,
                    final_reports,
                    ..
                } => Some((reason, final_reports)),
                _ => None,
            })
            .expect("finish seals the flow");
        assert_eq!(*reason, EvictReason::EndOfStream);
        let mut windows: Vec<u64> = window_reports(&events)
            .iter()
            .map(|r| r.window)
            .chain(final_reports.iter().map(|r| r.window))
            .collect();
        windows.sort_unstable();
        assert_eq!(windows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn idle_eviction_surfaces_tail_reports() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(5))
            .build();
        let a = flow_key(1);
        let b = flow_key(2);
        for p in video_stream(2) {
            m.ingest_packet(a, p);
        }
        // Flow B keeps the clock moving long after A went idle.
        for s in 0..10i64 {
            m.ingest_packet(b, pkt(2_000_000 + s * 1_000_000, 1100));
        }
        let events: Vec<QoeEvent> = m.drain_events().collect();
        let idle_evictions: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                QoeEvent::FlowEvicted {
                    flow,
                    reason: EvictReason::Idle,
                    final_reports,
                } => Some((flow, final_reports)),
                _ => None,
            })
            .collect();
        assert_eq!(idle_evictions.len(), 1);
        assert_eq!(*idle_evictions[0].0, a);
        assert!(
            !idle_evictions[0].1.is_empty(),
            "tail windows ride on the eviction event"
        );
    }

    #[test]
    fn auto_method_picks_rtp_for_rtp_flows() {
        use vcaml_rtp::RtpHeader;
        let mut m = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::AutoHeuristic)
            .build();
        let rtp_flow = flow_key(1);
        let plain_flow = flow_key(2);
        for f in 0..60i64 {
            let t0 = f * 33_333;
            for i in 0..2u16 {
                let mut p = pkt(t0 + i64::from(i) * 300, 1100);
                p.rtp = Some(RtpHeader::basic(
                    102,
                    (f * 2) as u16 + i,
                    (f * 3000) as u32,
                    1,
                    i == 1,
                ));
                m.ingest_packet(rtp_flow, p);
                m.ingest_packet(plain_flow, pkt(t0 + i64::from(i) * 300, 1100));
            }
        }
        let events = m.finish();
        let method_of = |flow: FlowKey| {
            events
                .iter()
                .find_map(|e| match e {
                    QoeEvent::WindowReport {
                        flow: f, report, ..
                    } if *f == flow => Some(report.method),
                    _ => None,
                })
                .expect("flow reported")
        };
        assert_eq!(method_of(rtp_flow), Method::RtpHeuristic);
        assert_eq!(method_of(plain_flow), Method::IpUdpHeuristic);
    }

    #[test]
    fn probation_replay_matches_direct_engine() {
        // Auto selection buffers the first packets; the replay must make
        // the flow's reports identical to a never-buffered run.
        let mut auto = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::AutoHeuristic)
            .build();
        let mut direct = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(3) {
            auto.ingest_packet(flow, p);
            direct.ingest_packet(flow, p);
        }
        let a = auto.finish();
        let d = direct.finish();
        let aw = window_reports(&a);
        let dw = window_reports(&d);
        assert_eq!(aw.len(), dw.len());
        for (x, y) in aw.iter().zip(&dw) {
            assert_eq!(x.window, y.window);
            assert_eq!(x.estimate.unwrap(), y.estimate.unwrap());
        }
    }

    #[test]
    fn flush_after_packets_emits_provisional_windows() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .flush_after_packets(16)
            .build();
        let flow = flow_key(1);
        // One frame per second: nothing finalizes for a long time, so the
        // max-lag flush is the only source of freshness.
        for s in 0..3i64 {
            for i in 0..20i64 {
                m.ingest_packet(flow, pkt(s * 1_000_000 + i * 40_000, 1100));
            }
        }
        let events: Vec<QoeEvent> = m.drain_events().collect();
        let provisional = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::WindowReport {
                        provisional: true,
                        ..
                    }
                )
            })
            .count();
        assert!(provisional > 0, "expected provisional snapshots");
        assert!(m.stats().provisional_reports as usize == provisional);
    }

    #[test]
    fn default_has_no_provisional_reports() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(5) {
            m.ingest_packet(flow, p);
        }
        let events = m.finish();
        assert!(events.iter().all(|e| !matches!(
            e,
            QoeEvent::WindowReport {
                provisional: true,
                ..
            }
        )));
    }

    #[test]
    fn sink_receives_events_instead_of_queue() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut m = fixed(Method::IpUdpHeuristic)
            .sink(move |e| seen2.lock().unwrap().push(e.tag()))
            .build();
        let flow = flow_key(1);
        for p in video_stream(2) {
            m.ingest_packet(flow, p);
        }
        assert_eq!(m.pending_events(), 0);
        let leftover = m.finish();
        assert!(leftover.is_empty());
        let tags = seen.lock().unwrap();
        assert!(tags.contains(&"flow_opened"));
        assert!(tags.contains(&"window_report"));
        assert!(tags.contains(&"flow_evicted"));
    }

    #[test]
    fn negative_timestamps_classified() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        m.ingest_packet(flow_key(1), pkt(-5, 1100));
        let events: Vec<QoeEvent> = m.drain_events().collect();
        assert!(matches!(
            events[0],
            QoeEvent::ParseDrop {
                reason: ParseDropReason::NegativeTimestamp,
                ..
            }
        ));
        assert_eq!(m.stats().parse_drops, 1);
        assert_eq!(m.active_flows(), 0);
    }

    #[test]
    fn raw_frame_ingestion_parses_and_routes() {
        use vcaml_netpkt::{EtherType, EthernetRepr, Ipv4Repr, MacAddr, UdpRepr};
        let payload = [0x16u8; 40]; // DTLS-looking, not RTP
        let eth = EthernetRepr {
            src: MacAddr([2, 0, 0, 0, 0, 1]),
            dst: MacAddr([2, 0, 0, 0, 0, 2]),
            ethertype: EtherType::Ipv4,
        };
        let mut frame = vec![0u8; 14 + 20 + 8 + payload.len()];
        eth.emit(&mut frame);
        Ipv4Repr {
            src: [10, 0, 0, 1],
            dst: [10, 0, 0, 2],
            protocol: vcaml_netpkt::IP_PROTO_UDP,
            payload_len: 8 + payload.len(),
            ttl: 64,
            ident: 7,
        }
        .emit(&mut frame[14..]);
        frame[42..].copy_from_slice(&payload);
        UdpRepr {
            src_port: 40000,
            dst_port: 50000,
        }
        .emit_v4(
            &mut frame[34..],
            payload.len(),
            [10, 0, 0, 1],
            [10, 0, 0, 2],
        );

        let mut m = fixed(Method::IpUdpHeuristic).build();
        m.ingest_frame(Timestamp::from_millis(1), &frame);
        assert_eq!(m.stats().packets, 1);
        assert_eq!(m.active_flows(), 1);

        // Truncating below the Ethernet header classifies as truncated.
        m.ingest_frame(Timestamp::from_millis(2), &frame[..10]);
        assert_eq!(m.stats().parse_drops, 1);
        let events: Vec<QoeEvent> = m.drain_events().collect();
        assert!(events.iter().any(|e| matches!(
            e,
            QoeEvent::ParseDrop {
                reason: ParseDropReason::Truncated { .. },
                ..
            }
        )));
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(2) {
            m.ingest_packet(flow, p);
        }
        m.ingest_packet(flow, pkt(-1, 100));
        for e in m.finish() {
            let line = e.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'), "single line: {line}");
            assert!(line.contains("\"type\""), "{line}");
        }
    }

    #[test]
    fn corrupt_first_timestamp_does_not_pin_the_clock() {
        // A corrupt far-future timestamp on the very first packet must
        // not anchor the stream clock a year ahead: sane traffic "in the
        // past" re-anchors it backward, so idle sweeps keep working.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(5))
            .build();
        let a = flow_key(1);
        let b = flow_key(2);
        m.ingest_packet(a, pkt(year_us, 1100));
        for p in video_stream(2) {
            m.ingest_packet(a, p);
        }
        // Flow B keeps the (re-anchored) clock moving after A goes idle.
        for s in 0..10i64 {
            m.ingest_packet(b, pkt(2_000_000 + s * 1_000_000, 1100));
        }
        let idle_evictions = m
            .drain_events()
            .filter(|e| {
                matches!(
                    e,
                    QoeEvent::FlowEvicted {
                        reason: EvictReason::Idle,
                        ..
                    }
                )
            })
            .count();
        assert!(
            idle_evictions >= 1,
            "idle sweeps must survive the corruption"
        );
        assert_eq!(m.active_flows(), 1, "only the live flow remains");
    }

    /// Finalized windows per flow, from a finished monitor's events.
    fn windows_by_flow(events: &[QoeEvent]) -> HashMap<FlowKey, Vec<WindowReport>> {
        let mut out: HashMap<FlowKey, Vec<WindowReport>> = HashMap::new();
        for e in events {
            if let Some(flow) = e.flow() {
                out.entry(flow)
                    .or_default()
                    .extend_from_slice(e.final_reports());
            }
        }
        for reports in out.values_mut() {
            reports.sort_by_key(|r| r.window);
        }
        out
    }

    #[test]
    fn threaded_monitor_matches_inline_windows() {
        let feed: Vec<(FlowKey, TracePacket)> = {
            let mut feed = Vec::new();
            for n in 1..=8u8 {
                for p in video_stream(3) {
                    let mut q = p;
                    q.size = q.size.saturating_add(u16::from(n) * 10);
                    feed.push((flow_key(n), q));
                }
            }
            feed.sort_by_key(|(_, p)| p.ts);
            feed
        };
        let run = |threads: usize| {
            let mut m = fixed(Method::IpUdpHeuristic).threads(threads).build();
            for (flow, p) in &feed {
                m.ingest_packet(*flow, *p);
            }
            m.finish()
        };
        let inline = windows_by_flow(&run(1));
        let threaded = windows_by_flow(&run(4));
        assert_eq!(inline.len(), 8);
        assert_eq!(threaded.len(), 8);
        for (flow, want) in &inline {
            let got = &threaded[flow];
            assert_eq!(got.len(), want.len(), "flow {flow}");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.window, w.window, "flow {flow}");
                assert_eq!(g.estimate, w.estimate, "flow {flow} window {}", g.window);
            }
        }
    }

    #[test]
    fn threaded_monitor_preserves_per_flow_event_order() {
        let mut m = fixed(Method::IpUdpHeuristic).threads(3).build();
        let flows: Vec<FlowKey> = (1..=6).map(flow_key).collect();
        for p in video_stream(3) {
            for flow in &flows {
                m.ingest_packet(*flow, p);
            }
        }
        let mut seen_open: HashMap<FlowKey, bool> = HashMap::new();
        let mut last_window: HashMap<FlowKey, u64> = HashMap::new();
        let mut sealed: HashMap<FlowKey, bool> = HashMap::new();
        for e in m.finish() {
            match &e {
                QoeEvent::FlowOpened { flow, .. } => {
                    assert!(!seen_open.contains_key(flow), "duplicate open");
                    seen_open.insert(*flow, true);
                }
                QoeEvent::WindowReport { flow, report, .. } => {
                    assert!(seen_open[flow], "report before open");
                    assert!(!sealed.contains_key(flow), "report after seal");
                    if let Some(prev) = last_window.get(flow) {
                        assert!(report.window > *prev, "windows out of order");
                    }
                    last_window.insert(*flow, report.window);
                }
                QoeEvent::FlowEvicted { flow, .. } => {
                    assert!(seen_open[flow], "evict before open");
                    sealed.insert(*flow, true);
                }
                _ => {}
            }
        }
        assert_eq!(sealed.len(), 6, "every flow sealed exactly once");
    }

    #[test]
    fn drop_oldest_bounds_queue_and_accounts_drops() {
        // Reference: unbounded run counts every event the feed produces.
        let mut reference = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(5) {
            reference.ingest_packet(flow, p);
        }
        let total = reference.drain_events().count();
        assert!(total > 4, "feed produces enough events to overflow");

        let mut m = fixed(Method::IpUdpHeuristic)
            .queue_capacity(3)
            .overflow(OverflowPolicy::DropOldest)
            .build();
        for p in video_stream(5) {
            m.ingest_packet(flow, p);
        }
        let drained: Vec<QoeEvent> = m.drain_events().collect();
        let QoeEvent::Dropped {
            count,
            ref per_flow,
        } = drained[0]
        else {
            panic!("drain must lead with the drop marker");
        };
        assert_eq!(drained.len() - 1, 3, "queue stayed at capacity");
        assert_eq!(
            count as usize + (drained.len() - 1),
            total,
            "dropped + kept == every event emitted"
        );
        let stats = m.stats();
        assert_eq!(stats.events_dropped, count);
        // Every shed event belonged to the one flow in the feed, so the
        // per-flow breakdown accounts for the full count in both the
        // marker and the stats snapshot.
        assert_eq!(per_flow.len(), 1);
        assert_eq!(per_flow[0], (flow, count));
        assert_eq!(stats.dropped_by_flow, *per_flow);
    }

    #[test]
    fn inline_block_policy_never_loses_events() {
        // The single-threaded producer cannot park on its own queue:
        // Block grows past the bound instead, so nothing is lost.
        let mut bounded = fixed(Method::IpUdpHeuristic).queue_capacity(2).build();
        let mut unbounded = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for p in video_stream(4) {
            bounded.ingest_packet(flow, p);
            unbounded.ingest_packet(flow, p);
        }
        assert_eq!(bounded.finish().len(), unbounded.finish().len());
    }

    #[test]
    fn reprobe_upgrades_late_rtp_flow() {
        use vcaml_rtp::RtpHeader;
        let mut m = MonitorBuilder::new(VcaKind::Teams)
            .method(EstimationMethod::AutoHeuristic)
            .build();
        let flow = flow_key(1);
        // A DTLS-style handshake long enough to flunk probation…
        for i in 0..RTP_PROBATION_PACKETS as i64 {
            m.ingest_packet(flow, pkt(i * 10_000, 900));
        }
        // …then real RTP media at 30 fps, two packets per frame, for
        // comfortably more than one re-probe interval.
        let frames = (RTP_REPROBE_PACKETS as i64) * 2;
        for f in 0..frames {
            let t0 = 200_000 + f * 33_333;
            for i in 0..2i64 {
                let mut p = pkt(t0 + i * 300, 1100);
                p.rtp = Some(RtpHeader::basic(
                    102,
                    (f * 2 + i) as u16,
                    (f * 3000) as u32,
                    1,
                    i == 1,
                ));
                m.ingest_packet(flow, p);
            }
        }
        let events = m.finish();
        let methods: Vec<Method> = events
            .iter()
            .flat_map(|e| e.final_reports())
            .map(|r| r.method)
            .collect();
        assert!(
            methods.contains(&Method::IpUdpHeuristic),
            "early windows use the fallback: {methods:?}"
        );
        assert!(
            methods.contains(&Method::RtpHeuristic),
            "re-probe upgrades to the RTP engine: {methods:?}"
        );
        // The upgrade seam must not double-report: every finalized
        // window index appears exactly once.
        let mut windows: Vec<u64> = events
            .iter()
            .flat_map(|e| e.final_reports())
            .map(|r| r.window)
            .collect();
        let n = windows.len();
        windows.sort_unstable();
        windows.dedup();
        assert_eq!(windows.len(), n, "no duplicate final windows at the seam");
        // Once upgraded, the flow stays upgraded.
        let last_fallback = methods.iter().rposition(|m| *m == Method::IpUdpHeuristic);
        let first_rtp = methods.iter().position(|m| *m == Method::RtpHeuristic);
        assert!(last_fallback.unwrap() < first_rtp.unwrap());
    }

    #[test]
    fn fixed_methods_never_reprobe() {
        // A fixed IP/UDP monitor must keep its engine even on pure RTP
        // traffic (the paper's no-RTP-access deployment).
        use vcaml_rtp::RtpHeader;
        let mut m = fixed(Method::IpUdpHeuristic).build();
        let flow = flow_key(1);
        for f in 0..(RTP_REPROBE_PACKETS as i64 * 2) {
            let mut p = pkt(f * 16_000, 1100);
            p.rtp = Some(RtpHeader::basic(102, f as u16, (f * 1500) as u32, 1, true));
            m.ingest_packet(flow, p);
        }
        for e in m.finish() {
            for r in e.final_reports() {
                assert_eq!(r.method, Method::IpUdpHeuristic);
            }
        }
    }

    #[test]
    fn threaded_sink_receives_all_events() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut m = fixed(Method::IpUdpHeuristic)
            .threads(2)
            .sink(move |e| seen2.lock().unwrap().push(e.tag()))
            .build();
        for n in 1..=4u8 {
            for p in video_stream(2) {
                m.ingest_packet(flow_key(n), p);
            }
        }
        let leftover = m.finish();
        assert!(leftover.is_empty());
        let tags = seen.lock().unwrap();
        assert_eq!(tags.iter().filter(|t| **t == "flow_opened").count(), 4);
        assert_eq!(tags.iter().filter(|t| **t == "flow_evicted").count(), 4);
    }

    #[test]
    fn corrupt_future_timestamp_does_not_mass_evict() {
        let mut m = fixed(Method::IpUdpHeuristic)
            .idle_timeout(Timestamp::from_secs(30))
            .build();
        let flow = flow_key(1);
        m.ingest_packet(flow, pkt(0, 1100));
        // A year-ahead corrupt timestamp advances the clock by at most one
        // idle timeout, so the healthy flow survives the next sweep.
        let year_us = 365 * 24 * 3_600i64 * 1_000_000;
        m.ingest_packet(flow, pkt(year_us, 1100));
        m.ingest_packet(flow, pkt(1_000_000, 1100));
        assert_eq!(m.active_flows(), 1);
        let evicted = m
            .drain_events()
            .filter(|e| matches!(e, QoeEvent::FlowEvicted { .. }))
            .count();
        assert_eq!(evicted, 0);
    }
}
